"""The query service: a stream of queries on one engine and clock.

:class:`QueryService` is the front door the ROADMAP's "system serving
heavy traffic" needs on top of the one-shot engine.  Queries — SQL
text, Table I workload ids, logical plans, or plan-builder callables —
are submitted with virtual arrival times; the service forms concurrent
batches with a pluggable scheduler, packs each batch under the
admission controller's intermediate-state budget, and executes it via
:func:`~repro.harness.concurrent.run_concurrent` so every batch shares
one clock and one aggregate metric store.  Two caches persist across
queries: the cross-query AIP-set cache (inter-query sideways
information passing) and a result cache keyed by plan fingerprint.

The service model is *batch-sequential*: one engine machine runs one
concurrent batch at a time; queries arriving mid-batch wait in the
queue and their wait shows up in the per-query report.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.common.errors import ExecutionError
from repro.data.catalog import Catalog
from repro.exec.context import ExecutionContext
from repro.exec.engine import QueryResult
from repro.exec.metrics import Metrics, seconds_to_ticks
from repro.harness.concurrent import run_concurrent
from repro.harness.strategies import make_strategy, uses_magic_plan
from repro.obs.eventlog import open_event_log
from repro.obs.feedback import FeedbackStore
from repro.obs.profiles import ProfileRing, QueryProfile, operator_table
from repro.obs.registry import RATIO_BUCKETS, MetricsRegistry, percentile
from repro.optimizer.cost import PlanCoster
from repro.optimizer.estimator import CardinalityEstimator
from repro.plan.logical import LogicalNode
from repro.service.admission import (
    ADMIT, SHED, AdmissionController, estimate_query_state_bytes,
)
from repro.service.aip_cache import AIPSetCache
from repro.service.config import ServiceConfig, TenantQuota, coerce_config
from repro.service.fingerprint import plan_signature
from repro.service.result import result_from_outcome
from repro.service.result_cache import ResultCache
from repro.service.schedulers import Scheduler, make_scheduler
from repro.service.workload import WorkloadItem
from repro.workloads.registry import QUERIES, get_query

#: Statuses a submitted query can end in.
OK = "ok"
CACHED = "cached"
SHED_STATUS = "shed"
#: Parallel mode only: the worker carrying this query died or raised.
ERROR = "error"

QuerySpec = Union[str, LogicalNode, Callable[[Catalog], LogicalNode]]

#: Per-batch engine counters the service accumulates for one run's
#: report (everything :meth:`Metrics.summary` reports that is additive
#: across batches rather than a clock or a peak).
_ENGINE_TOTAL_KEYS = (
    "tuples_pruned", "aip_sets_created", "aip_sets_declined",
    "aip_bytes_shipped", "network_bytes", "spill_bytes", "spill_events",
    "pages_pushed", "rows_selected",
)


class _PendingQuery:
    """A submitted query waiting for dispatch."""

    __slots__ = (
        "seq", "label", "plan", "signature", "arrival", "strategy_name",
        "state_estimate", "cost_estimate", "tenant", "miss_counted",
    )

    def __init__(self, seq, label, plan, signature, arrival, strategy_name,
                 state_estimate, cost_estimate, tenant=None):
        self.seq = seq
        self.label = label
        self.plan = plan
        self.signature = signature
        self.arrival = arrival
        self.strategy_name = strategy_name
        self.state_estimate = state_estimate
        self.cost_estimate = cost_estimate
        #: Fair-share scheduling class (None = the anonymous tenant).
        self.tenant = tenant
        #: Whether this query's first result-cache miss was recorded
        #: (re-probes while queued must not inflate the miss count).
        self.miss_counted = False


def _fair_interleave(ordered: List["_PendingQuery"]) -> List["_PendingQuery"]:
    """Round-robin the scheduler's ordering across tenants.

    Within one tenant the scheduler's relative order is preserved;
    across tenants, admission slots alternate so one tenant's burst
    cannot starve another's single query out of a packed batch.
    Tenants rotate in first-appearance order, so the result is
    deterministic for a given input ordering.
    """
    by_tenant: Dict[Optional[str], List[_PendingQuery]] = {}
    for entry in ordered:
        by_tenant.setdefault(entry.tenant, []).append(entry)
    if len(by_tenant) <= 1:
        return ordered
    out: List[_PendingQuery] = []
    queues = list(by_tenant.values())
    while queues:
        still_live = []
        for queue in queues:
            out.append(queue.pop(0))
            if queue:
                still_live.append(queue)
        queues = still_live
    return out


class QueryOutcome:
    """Everything the service reports about one submitted query."""

    __slots__ = (
        "seq", "label", "status", "strategy", "arrival", "start", "finish",
        "result", "batch", "state_estimate", "aip_filters_injected",
        "aip_tuples_pruned", "tenant", "reason",
    )

    def __init__(self, seq: int, label: str, status: str, strategy: str,
                 arrival: float, start: float, finish: float,
                 result: Optional[QueryResult], batch: int,
                 state_estimate: float, tenant: Optional[str] = None,
                 reason: Optional[str] = None):
        self.seq = seq
        self.label = label
        self.status = status
        self.strategy = strategy
        self.arrival = arrival
        self.start = start
        self.finish = finish
        self.result = result
        #: Index of the concurrent batch this query ran in (-1 if none).
        self.batch = batch
        self.state_estimate = state_estimate
        #: Fair-share / quota class the query was submitted under.
        self.tenant = tenant
        #: Why a non-ok outcome ended: ``admission``, ``slo``,
        #: ``quota:concurrent``, ``quota:state`` or an error message.
        self.reason = reason
        #: Filters re-injected from the cross-query AIP cache, and the
        #: tuples they pruned in this query.
        self.aip_filters_injected = 0
        self.aip_tuples_pruned = 0

    @property
    def queue_wait(self) -> float:
        return self.start - self.arrival

    @property
    def latency(self) -> float:
        return self.finish - self.arrival

    @property
    def rows(self) -> int:
        return len(self.result) if self.result is not None else 0

    def to_result(self):
        """The public transport-independent view of this outcome (one
        :class:`repro.service.result.QueryResult`); the shape both the
        socket server and the in-process client hand to callers."""
        return result_from_outcome(self, tenant=self.tenant)

    def __repr__(self) -> str:
        return "QueryOutcome(%s %s: wait=%.4f latency=%.4f)" % (
            self.label, self.status, self.queue_wait, self.latency,
        )


def _stats_delta(before: Optional[Dict], after: Optional[Dict]) -> Optional[Dict]:
    """Run-scope cumulative counters; point-in-time gauges stay as-is."""
    if after is None:
        return None
    if before is None:
        return dict(after)
    return {
        key: value if key in ("entries", "bytes") else value - before[key]
        for key, value in after.items()
    }


class ServiceReport:
    """Aggregate throughput report over one service run.

    ``elapsed``, ``peak`` and the cache stats all describe *this* run's
    window; a reused service keeps its cumulative clock, peak and cache
    counters separately (``admission`` remains the service-lifetime
    controller object).
    """

    def __init__(self, service: "QueryService", outcomes: List[QueryOutcome],
                 elapsed: float, peak: int,
                 aip_cache_stats: Optional[Dict],
                 result_cache_stats: Optional[Dict],
                 engine: Optional[Dict] = None,
                 storage: Optional[Dict] = None):
        self.outcomes = outcomes
        self.total_virtual_seconds = elapsed
        self.peak_state_bytes = peak
        #: None when the corresponding cache is disabled.
        self.aip_cache_stats = aip_cache_stats
        self.result_cache_stats = result_cache_stats
        self.admission = service.admission
        #: Engine counters summed across this run's batches (pruning,
        #: AIP set construction/shipping, network and spill traffic).
        self.engine = dict(engine or {})
        #: Governor observations for this run, or None un-governed.
        self.storage = storage

    @property
    def results(self) -> List:
        """Per-query public :class:`~repro.service.result.QueryResult`
        views — the same objects a client (socket or in-process) would
        have been handed for this stream."""
        return [o.to_result() for o in self.outcomes]

    @property
    def completed(self) -> List[QueryOutcome]:
        return [o for o in self.outcomes if o.status in (OK, CACHED)]

    @property
    def shed(self) -> List[QueryOutcome]:
        return [o for o in self.outcomes if o.status == SHED_STATUS]

    @property
    def failed(self) -> List[QueryOutcome]:
        """Parallel mode only: queries lost to worker faults."""
        return [o for o in self.outcomes if o.status == ERROR]

    @property
    def queries_per_second(self) -> float:
        if self.total_virtual_seconds <= 0:
            return 0.0
        return len(self.completed) / self.total_virtual_seconds

    def mean_latency(self) -> float:
        done = self.completed
        if not done:
            return 0.0
        return sum(o.latency for o in done) / len(done)

    def mean_queue_wait(self) -> float:
        done = self.completed
        if not done:
            return 0.0
        return sum(o.queue_wait for o in done) / len(done)

    def latency_percentile(self, q: float) -> float:
        """Exact interpolated latency percentile over completed queries
        (deterministic virtual latencies, so baselineable in CI)."""
        return percentile([o.latency for o in self.completed], q)

    def _hit_rate(self, stats) -> float:
        if not stats:
            return 0.0
        probes = stats["hits"] + stats["misses"]
        return stats["hits"] / probes if probes else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "queries": len(self.outcomes),
            "completed": len(self.completed),
            "shed": len(self.shed),
            "failed": len(self.failed),
            "total_virtual_seconds": self.total_virtual_seconds,
            "queries_per_second": self.queries_per_second,
            "mean_latency": self.mean_latency(),
            "mean_queue_wait": self.mean_queue_wait(),
            "latency_p50": self.latency_percentile(50),
            "latency_p95": self.latency_percentile(95),
            "latency_p99": self.latency_percentile(99),
            "peak_state_mb": self.peak_state_bytes / 1e6,
            "result_cache_hit_rate": self._hit_rate(self.result_cache_stats),
            "aip_cache_hit_rate": self._hit_rate(self.aip_cache_stats),
            "aip_cache_mb": (
                self.aip_cache_stats["bytes"] / 1e6
                if self.aip_cache_stats else 0.0
            ),
            "tuples_pruned": self.engine.get("tuples_pruned", 0),
            "aip_sets_created": self.engine.get("aip_sets_created", 0),
            "aip_bytes_shipped": self.engine.get("aip_bytes_shipped", 0),
            "network_bytes": self.engine.get("network_bytes", 0),
            "spill_bytes": self.engine.get("spill_bytes", 0),
            "spill_events": self.engine.get("spill_events", 0),
            "over_budget_events": (
                self.storage["over_budget_events"]
                if self.storage is not None else 0
            ),
        }

    def render(self) -> str:
        """Human-readable per-query table plus the aggregate summary."""
        lines = ["%-4s %-10s %-7s %8s %10s %10s %10s %7s" % (
            "#", "query", "status", "rows", "wait (vs)", "latency",
            "finish", "xq-cut",
        )]
        # The per-query columns come from the unified public view, so
        # this table can never drift from what a client was handed.
        for o in self.outcomes:
            view = o.to_result()
            lines.append("%-4d %-10s %-7s %8d %10.4f %10.4f %10.4f %7d" % (
                view.seq, view.label[:10], view.status, len(view),
                view.queue_wait, view.latency, o.finish,
                o.aip_tuples_pruned,
            ))
        s = self.summary()
        lines.append(
            "-- %d queries (%d completed, %d shed%s) in %.4f virtual s "
            "= %.2f q/s" % (
                s["queries"], s["completed"], s["shed"],
                ", %d failed" % s["failed"] if s["failed"] else "",
                s["total_virtual_seconds"], s["queries_per_second"],
            )
        )
        lines.append(
            "-- mean latency %.4f s; mean queue wait %.4f s; "
            "peak aggregate state %.3f MB" % (
                s["mean_latency"], s["mean_queue_wait"], s["peak_state_mb"],
            )
        )
        lines.append(
            "-- latency p50 %.4f s; p95 %.4f s; p99 %.4f s" % (
                s["latency_p50"], s["latency_p95"], s["latency_p99"],
            )
        )
        lines.append(
            "-- engine: %d tuples pruned; %d AIP sets built "
            "(%d declined); %d AIP bytes shipped; %d network bytes" % (
                s["tuples_pruned"], s["aip_sets_created"],
                self.engine.get("aip_sets_declined", 0),
                s["aip_bytes_shipped"], s["network_bytes"],
            )
        )
        if self.storage is not None:
            lines.append(
                "-- governor: peak resident %d bytes (budget %s); "
                "%d spill bytes in %d spill events; %d over-budget; "
                "%d evictions, %d reloads" % (
                    self.storage["peak_resident_bytes"],
                    self.storage["budget"],
                    s["spill_bytes"], s["spill_events"],
                    s["over_budget_events"],
                    self.storage["evictions"], self.storage["reloads"],
                )
            )
        elif s["spill_bytes"] or s["spill_events"]:
            lines.append(
                "-- spill: %d bytes in %d events" % (
                    s["spill_bytes"], s["spill_events"],
                )
            )
        if self.result_cache_stats is not None:
            lines.append(
                "-- result cache: %.0f%% hit rate (%d/%d), "
                "<= %.4f vs avoided" % (
                    100 * self._hit_rate(self.result_cache_stats),
                    self.result_cache_stats["hits"],
                    self.result_cache_stats["hits"]
                    + self.result_cache_stats["misses"],
                    self.result_cache_stats["seconds_saved"],
                )
            )
        if self.aip_cache_stats is not None:
            lines.append(
                "-- AIP cache: %d sets (%.3f MB), %.0f%% hit rate, "
                "%d filters re-injected" % (
                    self.aip_cache_stats["entries"],
                    self.aip_cache_stats["bytes"] / 1e6,
                    100 * self._hit_rate(self.aip_cache_stats),
                    self.aip_cache_stats["filters_injected"],
                )
            )
        return "\n".join(lines)


class QueryService:
    """Runs a stream of queries against one catalog on one clock."""

    def __init__(self, catalog: Catalog, config=None, **kwargs):
        """``config`` is a :class:`ServiceConfig` (the redesigned API);
        the historical loose kwargs — ``QueryService(catalog,
        strategy=..., max_concurrent=...)`` — are still accepted and
        folded into a config by the compatibility shim, as is the old
        positional-strategy form.  Kwargs passed *alongside* a config
        override its fields."""
        config = coerce_config(config, kwargs)
        #: The resolved configuration; every knob below reads from it.
        self.config = config
        strategy = config.strategy
        scheduler = config.scheduler
        memory_budget = config.memory_budget
        parallel = config.parallel
        pool = config.pool
        tracer = config.tracer
        self.catalog = catalog
        self.default_strategy = strategy
        #: Worker-pool size for real wall-clock parallel batches; None
        #: keeps the serial shared-clock loop.  ``pool`` supplies an
        #: already-warm :class:`~repro.parallel.pool.WorkerPool` to
        #: reuse (the service then never closes it); otherwise the pool
        #: is started lazily on the first parallel batch, warm-loading
        #: ``catalog_spec`` (or shipping the catalog object itself).
        self.parallel = (
            parallel if parallel is not None
            else (pool.n_workers if pool is not None else None)
        )
        self._pool = pool
        self._owns_pool = False
        self._catalog_spec = config.catalog_spec
        #: Latency objective in virtual seconds: at dispatch, a query
        #: whose projected latency (wait so far + the forming batch's
        #: cost spread over the pool) exceeds it is shed immediately —
        #: serving a doomed query late helps nobody.
        self.slo_seconds = config.slo_seconds
        #: Hard per-tenant caps (concurrent queries, estimated state
        #: bytes) enforced during dispatch; over-quota queries are shed
        #: with a ``quota:*`` reason while other tenants proceed.
        self.quotas: Dict[Optional[str], TenantQuota] = dict(
            config.quotas or {}
        )
        #: Enforced engine budget: a service-lifetime
        #: :class:`~repro.storage.governor.MemoryGovernor` every batch
        #: context shares, so scans stream buffer-pool pages and
        #: stateful operators spill under pressure.  Distinct from
        #: ``memory_budget_bytes``, the admission controller's
        #: *estimate* budget: admission decides who runs, the governor
        #: bounds what running queries actually hold.  Call
        #: :meth:`close` (or use the service as a context manager) to
        #: remove the spill directory.
        self.governor = None
        if memory_budget is not None:
            from repro.storage.governor import MemoryGovernor
            self.governor = MemoryGovernor(memory_budget)
        #: Structured trace collector shared by every batch context
        #: (and the governor), or None for untraced serving.
        self.tracer = tracer
        if self.governor is not None:
            self.governor.tracer = tracer
        #: Service-lifetime metrics registry: latency distributions,
        #: cache hit counters, AIP selectivity, spill traffic.
        self.registry = MetricsRegistry()
        #: Observed per-fingerprint cardinalities, recorded for every
        #: completed plan — the recording half of the runtime-feedback
        #: loop.
        self.feedback = FeedbackStore()
        #: Retained profiles of the last-N finished queries (the
        #: ``profile`` admin frame's backing store; shares its
        #: est-vs-actual walk with the feedback store).
        self.profiles = ProfileRing(config.profile_retention)
        #: Latency threshold (ms) for slow-query entries; None = off.
        self.slow_query_ms = config.slow_query_ms
        #: Structured JSONL lifecycle log, or None (disabled — the
        #: hook everywhere is one ``is None`` check, like the tracer).
        self.eventlog = open_event_log(
            config.event_log, config.event_log_max_bytes
        )
        #: Service-wide table placement: when set, every submitted plan
        #: is marked against it (whole-site and partitioned tables
        #: alike), overriding workload-built-in placements, and the
        #: broadcast/co-partitioning join analysis is applied.  The
        #: optional network model supplies per-site links for arrival
        #: pacing and per-partition AIP shipping accounting.
        self.placement = config.placement
        from repro.distributed.network import NetworkModel
        self.network = config.network or NetworkModel()
        self.scheduler = (
            scheduler if isinstance(scheduler, Scheduler)
            else make_scheduler(scheduler)
        )
        self.admission = AdmissionController(
            config.memory_budget_bytes, config.max_concurrent
        )
        self.aip_cache = AIPSetCache() if config.aip_cache else None
        self.result_cache = ResultCache() if config.result_cache else None
        self.strategy_kwargs = dict(config.strategy_kwargs or {})
        self.short_circuit = config.short_circuit
        #: Batch-vectorized engine loop for every dispatched batch
        #: (observably identical to tuple-at-a-time; on by default).
        self.batch_execution = config.batch_execution
        #: Column-page kernels on top of batching (observably identical
        #: to row-list batches; on by default).
        self.page_execution = config.page_execution
        self.coster = PlanCoster(catalog)
        #: The service's virtual clock, advanced batch by batch.
        self.clock = 0.0
        #: Highest aggregate intermediate state any batch reached.
        self.peak_state_bytes = 0
        self._run_peak = 0
        self.batches_run = 0
        self._pending: List[_PendingQuery] = []
        self._seq = 0
        self._run_engine: Dict[str, int] = dict.fromkeys(
            _ENGINE_TOTAL_KEYS, 0
        )

    # -- submission --------------------------------------------------------

    def submit(
        self,
        query: QuerySpec,
        arrival: float = 0.0,
        strategy: Optional[str] = None,
        label: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> int:
        """Enqueue one query; returns its sequence number.

        ``query`` may be SQL text, a Table I workload id, a logical
        plan, or a builder callable ``fn(catalog) -> LogicalNode``.
        ``arrival`` is relative to the service's *current* clock, so a
        reused service replays a stream's spacing rather than dating
        arrivals into its past.  ``tenant`` names the query's
        fair-share class: a parallel service interleaves admission
        across tenants so no tenant's burst monopolises a batch.
        """
        strategy_name = strategy or self.default_strategy
        # Fail fast on a bad strategy name: raising later, mid-batch,
        # would leak acquired admission slots and wedge the service.
        make_strategy(strategy_name, **self.strategy_kwargs)
        plan, label = self._build_plan(query, strategy_name, label)
        if self.placement is not None:
            from repro.distributed.coordinator import (
                apply_broadcast_fanouts, mark_remote_scans,
            )
            mark_remote_scans(plan, self.placement)
            apply_broadcast_fanouts(plan, self.catalog)
        self._seq += 1
        self._pending.append(_PendingQuery(
            self._seq, label, plan, plan_signature(plan),
            self.clock + arrival, strategy_name,
            estimate_query_state_bytes(plan, self.coster),
            self.coster.total_cost(plan),
            tenant=tenant,
        ))
        return self._seq

    def submit_item(self, item: WorkloadItem) -> int:
        query = item.text
        return self.submit(
            query, arrival=item.arrival, strategy=item.strategy,
            label=item.label, tenant=getattr(item, "tenant", None),
        )

    def _build_plan(
        self, query: QuerySpec, strategy_name: str, label: Optional[str]
    ):
        if isinstance(query, LogicalNode):
            return query, label or "plan"
        if callable(query):
            return query(self.catalog), label or getattr(
                query, "__name__", "builder"
            )
        if query in QUERIES:
            workload = get_query(query)
            if uses_magic_plan(strategy_name) and workload.has_magic:
                plan = workload.build_magic(self.catalog)
            else:
                plan = workload.build_baseline(self.catalog)
            if workload.is_distributed:
                # Same placement the runner builds for `repro run`.
                from repro.distributed.coordinator import mark_remote_scans
                from repro.distributed.site import Placement, Site
                mark_remote_scans(plan, Placement(
                    [Site("remote-1", workload.remote_tables)]
                ))
            return plan, label or query
        from repro.sql import sql_to_plan
        return sql_to_plan(self.catalog, query), label or "sql"

    # -- execution ---------------------------------------------------------

    def run_workload(self, items: Sequence[WorkloadItem]) -> ServiceReport:
        """Submit a parsed stream and drain it."""
        for item in items:
            self.submit_item(item)
        return self.run()

    def _storage_snapshot(self) -> Optional[Dict]:
        if self.governor is None:
            return None
        return {
            "budget": self.governor.budget,
            "peak_resident_bytes": self.governor.peak_resident_bytes,
            "over_budget_events": self.governor.over_budget_events,
            "spilled_bytes": self.governor.backend.bytes_written,
            "evictions": self.governor.buffer.evictions,
            "reloads": self.governor.buffer.reloads,
        }

    @staticmethod
    def _storage_delta(before, after) -> Optional[Dict]:
        """Run-scope counter deltas; budget and lifetime peak as-is."""
        if after is None:
            return None
        if before is None:
            return dict(after)
        keep = ("budget", "peak_resident_bytes")
        return {
            key: value if key in keep else value - before[key]
            for key, value in after.items()
        }

    def run(self) -> ServiceReport:
        """Drain the queue, batch by batch, and report on this run."""
        outcomes: List[QueryOutcome] = []
        started = self.clock
        self._run_peak = 0
        self._run_engine = dict.fromkeys(_ENGINE_TOTAL_KEYS, 0)
        storage_before = self._storage_snapshot()
        aip_before = (
            self.aip_cache.stats() if self.aip_cache is not None else None
        )
        result_before = (
            self.result_cache.stats()
            if self.result_cache is not None else None
        )
        while self._pending:
            ready = [p for p in self._pending if p.arrival <= self.clock]
            if not ready:
                self.clock = min(p.arrival for p in self._pending)
                continue
            outcomes.extend(self._dispatch(self.scheduler.order(ready)))
        outcomes.sort(key=lambda o: o.seq)
        return ServiceReport(
            self, outcomes,
            elapsed=self.clock - started, peak=self._run_peak,
            aip_cache_stats=_stats_delta(
                aip_before,
                self.aip_cache.stats()
                if self.aip_cache is not None else None,
            ),
            result_cache_stats=_stats_delta(
                result_before,
                self.result_cache.stats()
                if self.result_cache is not None else None,
            ),
            engine=dict(self._run_engine),
            storage=self._storage_delta(
                storage_before, self._storage_snapshot()
            ),
        )

    def _dispatch(self, ordered: List[_PendingQuery]) -> List[QueryOutcome]:
        """Resolve cache hits and sheds, pack one batch, and run it."""
        from repro.harness.strategies import BASELINE, MAGIC

        tracer = self.tracer
        if self._parallel_mode():
            ordered = _fair_interleave(ordered)
        if tracer is not None:
            tracer.instant(
                "sched.pick", "service", seconds_to_ticks(self.clock),
                {
                    "ready": len(ordered),
                    "pending": len(self._pending),
                    "scheduler": self.scheduler.describe(),
                },
            )
        self.registry.gauge("admission.queue_depth").set(len(self._pending))
        outcomes: List[QueryOutcome] = []
        batch: List[_PendingQuery] = []
        #: Estimated cost already packed, for SLO latency projection.
        packed_cost = 0.0
        #: Per-tenant packed load this round, for hard-quota checks
        #: (batch-sequential service: nothing else is in flight).
        tenant_packed: Dict[Optional[str], int] = {}
        tenant_bytes: Dict[Optional[str], float] = {}
        #: signature -> strategy name of the twin already in the batch.
        batch_signatures: Dict[str, str] = {}
        consumed: set = set()
        for entry in ordered:
            twin_strategy = batch_signatures.get(entry.signature)
            if twin_strategy is not None and (
                self.result_cache is not None
                or (self.aip_cache is not None
                    and twin_strategy not in (BASELINE, MAGIC)
                    and entry.strategy_name not in (BASELINE, MAGIC))
            ):
                # A twin of this query is already in the forming batch
                # and will leave something to reap — a cached result, or
                # (if its strategy publishes AIP sets) cross-query
                # filters.  Hold this one back one batch rather than
                # redundantly recomputing alongside it.  A twin that
                # leaves nothing behind (baseline/magic with no result
                # cache) packs concurrently as usual.
                continue
            if self.result_cache is not None:
                cached = self.result_cache.lookup(
                    entry.signature, count_miss=not entry.miss_counted
                )
                if cached is not None:
                    consumed.add(entry.seq)
                    # Serve a copy — cache rows are shared across hits —
                    # and charge the lookup to the service clock so an
                    # all-cached run still has finite throughput.
                    result = QueryResult(
                        list(cached.rows), cached.schema, Metrics()
                    )
                    start = self.clock
                    self.clock += self.coster.cost_model.manager_invocation
                    if tracer is not None:
                        tracer.instant(
                            "cache.result.hit", "cache",
                            seconds_to_ticks(start),
                            {"query": entry.label, "rows": len(result)},
                        )
                    self.registry.counter("cache.result.hits").inc()
                    outcome = QueryOutcome(
                        entry.seq, entry.label, CACHED, entry.strategy_name,
                        entry.arrival, start, self.clock, result, -1,
                        entry.state_estimate, tenant=entry.tenant,
                    )
                    self._observe_latency(outcome)
                    self._finish_query(outcome, entry.signature)
                    outcomes.append(outcome)
                    continue
                if not entry.miss_counted:
                    if tracer is not None:
                        tracer.instant(
                            "cache.result.miss", "cache",
                            seconds_to_ticks(self.clock),
                            {"query": entry.label},
                        )
                    self.registry.counter("cache.result.misses").inc()
                entry.miss_counted = True
            quota_reason = self._quota_violation(
                entry, tenant_packed, tenant_bytes
            )
            if quota_reason is not None:
                # A hard cap, not fair interleaving: the over-quota
                # tenant's query is shed outright (the front door turns
                # this into a `shed` frame with a retry hint) while
                # other tenants in this very round keep packing.
                if tracer is not None:
                    tracer.instant(
                        "admission.quota_shed", "service",
                        seconds_to_ticks(self.clock),
                        {
                            "query": entry.label,
                            "tenant": entry.tenant,
                            "reason": quota_reason,
                        },
                    )
                consumed.add(entry.seq)
                outcomes.append(
                    self._shed(entry, quota_reason, "quota.shed")
                )
                continue
            if self.slo_seconds is not None:
                # Project this query's latency were it packed now: the
                # wait it has already accrued plus the forming batch's
                # estimated cost spread across the engine slots.  A
                # query that cannot meet its objective is shed *now* —
                # finishing it late would only steal capacity from
                # queries that can still make theirs.
                slots = max(1, self.parallel or 1)
                projected = (self.clock - entry.arrival) + (
                    packed_cost + entry.cost_estimate
                ) / slots
                if projected > self.slo_seconds:
                    if tracer is not None:
                        tracer.instant(
                            "admission.slo_shed", "service",
                            seconds_to_ticks(self.clock),
                            {
                                "query": entry.label,
                                "projected_latency": projected,
                                "slo_seconds": self.slo_seconds,
                            },
                        )
                    consumed.add(entry.seq)
                    outcomes.append(self._shed(entry, "slo", "slo.shed"))
                    continue
            decision = self.admission.decide(entry.state_estimate)
            if tracer is not None:
                tracer.instant(
                    "admission.%s" % decision, "service",
                    seconds_to_ticks(self.clock),
                    {
                        "query": entry.label,
                        "state_estimate": entry.state_estimate,
                    },
                )
            if decision == SHED:
                consumed.add(entry.seq)
                outcomes.append(
                    self._shed(entry, "admission", "admission.shed")
                )
                continue
            if decision != ADMIT:
                # Queued: stop packing so dispatch order is respected;
                # the rest of the queue waits for the next batch.
                self.registry.counter("admission.queued").inc()
                break
            self.registry.counter("admission.admitted").inc()
            self._emit_event(
                "admit", seq=entry.seq, label=entry.label,
                tenant=entry.tenant, state_estimate=entry.state_estimate,
            )
            self.admission.acquire(entry.state_estimate)
            consumed.add(entry.seq)
            batch.append(entry)
            packed_cost += entry.cost_estimate
            tenant_packed[entry.tenant] = (
                tenant_packed.get(entry.tenant, 0) + 1
            )
            tenant_bytes[entry.tenant] = (
                tenant_bytes.get(entry.tenant, 0.0) + entry.state_estimate
            )
            batch_signatures.setdefault(entry.signature, entry.strategy_name)
        if consumed:
            # One filter pass instead of per-entry list.remove scans.
            self._pending = [
                p for p in self._pending if p.seq not in consumed
            ]
        if batch:
            outcomes.extend(
                self._run_batch_parallel(batch)
                if self._parallel_mode() else self._run_batch(batch)
            )
        return outcomes

    def _quota_violation(
        self,
        entry: _PendingQuery,
        tenant_packed: Dict[Optional[str], int],
        tenant_bytes: Dict[Optional[str], float],
    ) -> Optional[str]:
        """The ``quota:*`` reason this entry must be shed for, or None.

        Checked against the tenant's load already packed this dispatch
        round (the service is batch-sequential, so the packing round
        *is* the concurrent set).  Result-cache hits never get here —
        serving a cached copy consumes no engine capacity.
        """
        quota = self.quotas.get(entry.tenant)
        if quota is None:
            return None
        if (
            quota.max_concurrent is not None
            and tenant_packed.get(entry.tenant, 0) >= quota.max_concurrent
        ):
            return "quota:concurrent"
        if (
            quota.max_state_bytes is not None
            and tenant_bytes.get(entry.tenant, 0.0) + entry.state_estimate
            > quota.max_state_bytes
        ):
            return "quota:state"
        return None

    # -- telemetry plumbing ------------------------------------------------

    @staticmethod
    def _tenant_label(tenant: Optional[str]) -> str:
        """Label value for per-tenant metric series (queries submitted
        with no tenant share the ``anonymous`` series)."""
        return tenant if tenant is not None else "anonymous"

    def _emit_event(self, event: str, **fields) -> None:
        if self.eventlog is not None:
            self.eventlog.emit(event, clock=self.clock, **fields)

    def _shed(self, entry: _PendingQuery, reason: str,
              counter_name: str) -> QueryOutcome:
        """One shed decision: labeled counter, event-log entry,
        retained profile, and the outcome itself."""
        self.registry.counter(counter_name).labels(
            tenant=self._tenant_label(entry.tenant)
        ).inc()
        self._emit_event(
            "shed", seq=entry.seq, label=entry.label,
            tenant=entry.tenant, reason=reason,
        )
        outcome = QueryOutcome(
            entry.seq, entry.label, SHED_STATUS, entry.strategy_name,
            entry.arrival, self.clock, self.clock, None, -1,
            entry.state_estimate, tenant=entry.tenant, reason=reason,
        )
        self._finish_query(outcome, entry.signature)
        return outcome

    def _observe_latency(self, outcome: QueryOutcome) -> None:
        """Fold one finished query into the latency distributions:
        the per-tenant labeled series feeds the unlabeled aggregate
        via the registry's roll-up."""
        self.registry.histogram("query.latency_s").labels(
            tenant=self._tenant_label(outcome.tenant)
        ).observe(outcome.latency)

    def _finish_query(self, outcome: QueryOutcome, signature: str,
                      operators=None) -> QueryProfile:
        """Retain one finished query's profile and, past the slow-query
        threshold, log the profile with its EXPLAIN-ANALYZE rendering."""
        profile = QueryProfile.from_outcome(
            outcome, signature, operators=operators
        )
        self.profiles.record(profile)
        if (
            self.slow_query_ms is not None
            and outcome.status in (OK, CACHED)
            and profile.latency * 1000.0 >= self.slow_query_ms
        ):
            self.registry.counter("queries.slow").labels(
                tenant=self._tenant_label(outcome.tenant)
            ).inc()
            self._emit_event(
                "slow_query", seq=outcome.seq, label=outcome.label,
                tenant=outcome.tenant,
                latency_ms=profile.latency * 1000.0,
                threshold_ms=self.slow_query_ms,
                profile=profile.as_dict(), explain=profile.render(),
            )
        return profile

    def _arrival_resolver(self):
        """Remote scans pace on the service's network links via the
        coordinator's shared resolver (no predicate pushdown, matching
        the runner's `repro run` defaults)."""
        from repro.distributed.coordinator import remote_arrival_resolver

        return remote_arrival_resolver(self.network)

    def _run_batch(self, batch: List[_PendingQuery]) -> List[QueryOutcome]:
        # Everything from here until the release must sit inside the
        # try: an acquired entry whose batch dies during *setup* (bad
        # network link, hook registration) must release its reserved
        # bytes exactly like one that dies mid-execution, or the
        # controller leaks budget and later queries queue forever.
        # The governor epoch gives a failed batch the same guarantee
        # for *enforced* bytes: dead operators' leases, spill handlers
        # and buffer frames all roll back.
        epoch = (
            self.governor.begin_epoch()
            if self.governor is not None else None
        )
        finish_times: Dict[int, float] = {}
        tracer = self.tracer
        try:
            ctx = ExecutionContext(
                self.catalog,
                short_circuit=self.short_circuit,
                batch_execution=self.batch_execution,
                page_execution=self.page_execution,
                governor=self.governor,
            )
            ctx.tracer = tracer
            if tracer is not None:
                # Each batch's engine clock restarts at zero; offset its
                # events onto the service timeline.
                tracer.offset = seconds_to_ticks(self.clock)
            # Align the batch context with the service's network,
            # exactly as the coordinator does for one-shot distributed
            # runs.
            default_link = self.network.link_to("__default__")
            ctx.cost_model.network_bandwidth = default_link.bandwidth
            ctx.cost_model.network_latency = default_link.latency
            ctx.network = self.network
            if self.aip_cache is not None:
                ctx.aip_publish_hooks.append(self.aip_cache.recorder(ctx))

            registry = self.registry

            def observe_publish(op, port, aip_set):
                registry.counter("aip.sets_published").inc()
                # Bloom summaries expose fill_fraction as a property on
                # some implementations and a method on others.
                fill = getattr(aip_set.summary, "fill_fraction", None)
                if callable(fill):
                    fill = fill()
                if fill is not None:
                    registry.histogram(
                        "aip.bloom_fill_fraction", RATIO_BUCKETS
                    ).observe(fill)

            ctx.aip_publish_hooks.append(observe_publish)

            injected: Dict[int, List] = {}
            physicals: Dict[int, object] = {}
            strategies_made: List = []

            def on_translated(index, physical):
                # Keep the translated plan: the feedback store pairs
                # its logical nodes' estimates with the executed
                # operators' counters at completion.
                physicals[index] = physical
                if self.aip_cache is None:
                    return
                # Baseline/magic queries are the paper's no-AIP
                # comparison points; leave them untouched (mirroring
                # the twin-hold exclusion) so service-level strategy
                # comparisons stay honest.  Cached-set consumers are
                # the AIP strategies.
                from repro.harness.strategies import BASELINE, MAGIC
                if batch[index].strategy_name in (BASELINE, MAGIC):
                    return
                # The strategy attached just before this callback;
                # reuse its predicate graph / candidate index when it
                # has them.
                strategy = strategies_made[index]
                graph = getattr(strategy, "graph", None)
                if graph is None:
                    registry = getattr(strategy, "registry", None)
                    graph = getattr(registry, "graph", None)
                injected[index] = self.aip_cache.inject(
                    physical, ctx,
                    graph=graph, candidates=getattr(strategy, "index", None),
                )

            strategies = [
                make_strategy(p.strategy_name, **self.strategy_kwargs)
                for p in batch
            ]
            strategies_made.extend(strategies)
            results = run_concurrent(
                [p.plan for p in batch], ctx,
                strategies=strategies,
                arrival_resolver=self._arrival_resolver(),
                on_plan_finished=lambda i, t: finish_times.setdefault(i, t),
                on_plan_translated=on_translated,
            )
        except BaseException:
            if epoch is not None:
                self.governor.abort_epoch(epoch)
            raise
        finally:
            if tracer is not None:
                tracer.offset = 0
            for entry in batch:
                self.admission.release(entry.state_estimate)

        # Reconcile what admission believed against what the batch
        # actually held: the governor's observed *operator-state* peak
        # when a budget is enforced (its total peak includes base-table
        # buffer pages, which the estimates never model), the metric
        # store's peak otherwise.  Success path only — a batch that
        # raised reported nothing trustworthy.
        observed = (
            self.governor.take_window_state_peak()
            if self.governor is not None
            else ctx.metrics.peak_state_bytes
        )
        self.admission.observe(
            sum(entry.state_estimate for entry in batch), observed
        )

        batch_seconds = ctx.metrics.clock
        self.peak_state_bytes = max(
            self.peak_state_bytes, ctx.metrics.peak_state_bytes
        )
        self._run_peak = max(self._run_peak, ctx.metrics.peak_state_bytes)
        batch_index = self.batches_run
        self.batches_run += 1
        start = self.clock
        self.clock += batch_seconds

        spill_before = (
            self._run_engine["spill_bytes"], self._run_engine["spill_events"]
        )
        self._fold_batch_metrics(ctx, physicals)
        spilled_events = self._run_engine["spill_events"] - spill_before[1]
        if spilled_events:
            self._emit_event(
                "spill", batch=batch_index,
                spill_bytes=(
                    self._run_engine["spill_bytes"] - spill_before[0]
                ),
                spill_events=spilled_events,
            )
        estimator = CardinalityEstimator(self.catalog)
        for physical in physicals.values():
            self.feedback.record_plan(physical, ctx.metrics, estimator)
        if tracer is not None:
            tracer.complete(
                "service.batch", "service", seconds_to_ticks(start),
                seconds_to_ticks(batch_seconds),
                {"batch": batch_index, "queries": len(batch)},
            )
        self._emit_event(
            "batch_complete", batch=batch_index, queries=len(batch),
            virtual_seconds=batch_seconds,
        )

        outcomes = []
        for index, (entry, result) in enumerate(zip(batch, results)):
            finish = start + finish_times.get(index, batch_seconds)
            if self.result_cache is not None:
                self.result_cache.store(
                    entry.signature, result.rows, result.schema,
                    finish_times.get(index, batch_seconds),
                )
            outcome = QueryOutcome(
                entry.seq, entry.label, OK, entry.strategy_name,
                entry.arrival, start, finish, result, batch_index,
                entry.state_estimate, tenant=entry.tenant,
            )
            filters = injected.get(index, ())
            outcome.aip_filters_injected = len(filters)
            outcome.aip_tuples_pruned = sum(f.pruned for f in filters)
            self.registry.counter("queries.completed").inc()
            self._observe_latency(outcome)
            self.registry.histogram("query.queue_wait_s").observe(
                outcome.queue_wait
            )
            physical = physicals.get(index)
            self._finish_query(
                outcome, entry.signature,
                operators=(
                    operator_table(physical, ctx.metrics, estimator)
                    if physical is not None else None
                ),
            )
            outcomes.append(outcome)
        return outcomes

    # -- parallel execution ------------------------------------------------

    def _parallel_mode(self) -> bool:
        return self._pool is not None or bool(self.parallel)

    def _ensure_pool(self):
        """The service's worker pool, started lazily on the first
        parallel batch so a parallel-configured service that only ever
        serves cache hits never pays the spawn cost."""
        if self._pool is None:
            from repro.parallel import CatalogSpec, WorkerPool
            spec = self._catalog_spec
            if spec is None:
                spec = CatalogSpec.from_object(self.catalog)
            self._pool = WorkerPool(
                self.parallel, spec,
                registry=self.registry, tracer=self.tracer,
            ).start()
            self._owns_pool = True
        return self._pool

    def _run_batch_parallel(
        self, batch: List[_PendingQuery]
    ) -> List[QueryOutcome]:
        """Dispatch one admitted batch onto the worker pool.

        Each admitted query runs start-to-finish in its own worker
        process — real wall-clock concurrency, where the serial loop
        interleaves one engine on one shared clock.  Virtual
        accounting: every query keeps its *own* engine clock; the
        service clock advances by the slowest member (the workers
        genuinely overlap) and each query's finish uses its own clock.
        A worker that dies or raises fails only the queries it carried
        (status ``error``); admission is released exactly once per
        entry either way.  Worker trace events and engine counters are
        folded back onto the service timeline and registry.

        Trade-off (DESIGN.md section 11): worker processes share no
        AIP state, so cross-query AIP-cache injection/harvest and
        feedback recording are unavailable in this mode.
        """
        import pickle

        from repro.parallel.tasks import CatalogSpec, QueryTask

        pool = self._ensure_pool()
        tracer = self.tracer
        # Warm workers resolve their init catalog once; tasks then name
        # it symbolically instead of re-shipping it per query.
        task_spec = (
            CatalogSpec.warm() if pool.catalog_spec is not None
            else CatalogSpec.from_object(self.catalog)
        )
        errors: Dict[int, str] = {}
        payloads: Dict[int, dict] = {}
        try:
            task_ids: Dict[int, int] = {}
            for index, entry in enumerate(batch):
                task = QueryTask(
                    task_spec, entry.plan, entry.strategy_name,
                    strategy_kwargs=self.strategy_kwargs,
                    short_circuit=self.short_circuit,
                    batch_execution=self.batch_execution,
                    page_execution=self.page_execution,
                    network=self.network,
                    trace=tracer is not None,
                    label=entry.label,
                )
                try:
                    # Validate before the queue's feeder thread would
                    # turn an unpicklable plan into a silent hang.
                    pickle.dumps(task)
                except Exception as exc:
                    errors[index] = (
                        "query task is not picklable: %r" % (exc,)
                    )
                    continue
                task_ids[index] = pool.submit(task)
            for index, result in zip(
                task_ids, pool.gather(list(task_ids.values()))
            ):
                if result.error is not None:
                    errors[index] = result.error
                else:
                    payloads[index] = result.payload
        finally:
            for entry in batch:
                self.admission.release(entry.state_estimate)

        batch_seconds = 0.0
        peak_total = 0
        for payload in payloads.values():
            metrics = payload["result"].metrics
            batch_seconds = max(batch_seconds, metrics.clock)
            peak_total += metrics.peak_state_bytes
        # The concurrent aggregate the estimates tried to predict is
        # the sum of per-worker peaks: the queries genuinely overlap.
        self.admission.observe(
            sum(entry.state_estimate for entry in batch), peak_total
        )
        self.peak_state_bytes = max(self.peak_state_bytes, peak_total)
        self._run_peak = max(self._run_peak, peak_total)
        batch_index = self.batches_run
        self.batches_run += 1
        start = self.clock
        self.clock += batch_seconds

        self._fold_parallel_metrics(
            [payloads[i]["result"].metrics.summary()
             for i in sorted(payloads)],
            peak_total,
        )
        if tracer is not None:
            offset = seconds_to_ticks(start)
            for index in sorted(payloads):
                tracer.replay(payloads[index]["trace_events"], offset)
            tracer.complete(
                "service.batch", "service", seconds_to_ticks(start),
                seconds_to_ticks(batch_seconds),
                {
                    "batch": batch_index, "queries": len(batch),
                    "parallel": pool.n_workers,
                },
            )
        pool.record_busy_fractions()
        self._emit_event(
            "batch_complete", batch=batch_index, queries=len(batch),
            virtual_seconds=batch_seconds, parallel=pool.n_workers,
        )

        outcomes = []
        for index, entry in enumerate(batch):
            if index in errors:
                self.registry.counter("queries.failed").inc()
                if tracer is not None:
                    tracer.instant(
                        "service.query_error", "service",
                        seconds_to_ticks(start),
                        {"query": entry.label, "error": errors[index]},
                    )
                self._emit_event(
                    "crash", seq=entry.seq, label=entry.label,
                    tenant=entry.tenant, error=errors[index],
                )
                outcome = QueryOutcome(
                    entry.seq, entry.label, ERROR, entry.strategy_name,
                    entry.arrival, start, start, None, batch_index,
                    entry.state_estimate, tenant=entry.tenant,
                    reason=errors[index],
                )
                self._finish_query(outcome, entry.signature)
                outcomes.append(outcome)
                continue
            result = payloads[index]["result"]
            q_seconds = result.metrics.clock
            if self.result_cache is not None:
                self.result_cache.store(
                    entry.signature, result.rows, result.schema, q_seconds,
                )
            outcome = QueryOutcome(
                entry.seq, entry.label, OK, entry.strategy_name,
                entry.arrival, start, start + q_seconds, result,
                batch_index, entry.state_estimate, tenant=entry.tenant,
            )
            self.registry.counter("queries.completed").inc()
            self._observe_latency(outcome)
            self.registry.histogram("query.queue_wait_s").observe(
                outcome.queue_wait
            )
            # Pool workers run their own metric stores without operator
            # attribution, so parallel profiles carry the flat summary
            # but no est-vs-actual operator table.
            self._finish_query(outcome, entry.signature)
            outcomes.append(outcome)
        return outcomes

    def _fold_parallel_metrics(self, summaries, peak_total) -> None:
        """Parallel-mode counterpart of :meth:`_fold_batch_metrics`:
        every worker ran its own metric store, so fold each returned
        summary into the run totals and the lifetime registry."""
        registry = self.registry
        for summary in summaries:
            for key in self._run_engine:
                self._run_engine[key] += summary[key]
            for key in _ENGINE_TOTAL_KEYS:
                registry.counter("engine.%s" % key).inc(summary[key])
        registry.gauge("engine.peak_state_bytes").set(peak_total)

    def _fold_batch_metrics(self, ctx, physicals) -> None:
        """Accumulate one finished batch's engine counters into the
        run totals and the service-lifetime registry."""
        summary = ctx.metrics.summary()
        for key in self._run_engine:
            self._run_engine[key] += summary[key]
        registry = self.registry
        for key in _ENGINE_TOTAL_KEYS:
            registry.counter("engine.%s" % key).inc(summary[key])
        registry.gauge("engine.peak_state_bytes").set(
            ctx.metrics.peak_state_bytes
        )
        if self.governor is not None:
            registry.gauge("governor.resident_bytes").set(
                self.governor.resident_bytes
            )
            registry.gauge("governor.peak_resident_bytes").set(
                self.governor.peak_resident_bytes
            )
        scanned = 0
        for physical in physicals.values():
            for scan in physical.scans:
                counters = ctx.metrics.operators.get(scan.op_id)
                if counters is not None:
                    scanned += counters.tuples_out
        if scanned:
            registry.histogram(
                "aip.pruned_row_ratio", RATIO_BUCKETS
            ).observe(min(1.0, summary["tuples_pruned"] / scanned))

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Tear down the storage governor's spill directory, any worker
        pool the service started itself (a pool passed in stays up —
        its owner closes it), and the event log."""
        if self.governor is not None:
            self.governor.close()
        if self._owns_pool and self._pool is not None:
            self._pool.close()
            self._pool = None
            self._owns_pool = False
        if self.eventlog is not None:
            self.eventlog.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- convenience -------------------------------------------------------

    def execute(self, query: QuerySpec, **kwargs) -> QueryResult:
        """Submit one query, drain the queue, return its result."""
        seq = self.submit(query, **kwargs)
        report = self.run()
        for outcome in report.outcomes:
            if outcome.seq == seq:
                if outcome.result is None:
                    raise ExecutionError(
                        "query %s was %s" % (outcome.label, outcome.status)
                    )
                return outcome.result
        raise ExecutionError("query %d vanished from the service" % seq)
