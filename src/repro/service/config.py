"""Service configuration: one typed object instead of ~15 loose kwargs.

:class:`QueryService` grew one keyword argument per PR until callers
had to thread fifteen loose knobs through every layer.  The
:class:`ServiceConfig` dataclass is now the single source of service
configuration: the CLI builds one, the socket front door embeds one,
and tests can construct/`replace()` them without re-listing defaults.
``QueryService(catalog, **old_kwargs)`` still works — the constructor
folds loose kwargs into a config via a compatibility shim — so every
pre-config call site keeps running unchanged.

Per-tenant **quotas** live here too.  Unlike the fair interleaving the
parallel service already does (which only reorders admission), a
:class:`TenantQuota` is a *hard cap*: a tenant at its concurrent-query
cap, or whose aggregate estimated state would exceed its byte cap, has
the overflow query **shed** — while other tenants' queries in the same
dispatch round proceed.  The socket front door translates those sheds
into ``shed`` frames carrying retry hints.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Optional, Union

#: Sentinel tenant key applying a quota to queries submitted with no
#: tenant tag (the anonymous tenant).
ANONYMOUS = None


@dataclass(frozen=True)
class TenantQuota:
    """Hard per-tenant caps, enforced at admission.

    ``max_concurrent`` bounds how many of the tenant's queries may run
    concurrently (be packed into one dispatch round); ``None`` leaves
    the axis uncapped.  ``max_state_bytes`` bounds the tenant's
    aggregate *estimated* intermediate state in flight — the same
    estimate the admission controller budgets globally.  Queries over
    either cap are shed (status ``shed``, reason ``quota:*``), never
    queued: a hard quota that silently queued would be fair
    interleaving with extra steps.
    """

    max_concurrent: Optional[int] = None
    max_state_bytes: Optional[float] = None

    def __post_init__(self):
        if self.max_concurrent is not None and self.max_concurrent < 0:
            raise ValueError("max_concurrent must be >= 0")
        if self.max_state_bytes is not None and self.max_state_bytes < 0:
            raise ValueError("max_state_bytes must be >= 0")


@dataclass
class ServiceConfig:
    """Everything a :class:`~repro.service.QueryService` can be told.

    Field meanings are documented on the service attributes they feed;
    defaults here are *the* defaults (the service holds none of its
    own).  ``scheduler`` accepts a name or a Scheduler instance;
    ``quotas`` maps tenant name (or ``None`` for the anonymous tenant)
    to :class:`TenantQuota`.
    """

    strategy: str = "feedforward"
    scheduler: Union[str, Any] = "fifo"
    #: Admission controller's intermediate-state *estimate* budget.
    memory_budget_bytes: Optional[float] = None
    max_concurrent: int = 4
    aip_cache: bool = True
    result_cache: bool = True
    strategy_kwargs: Optional[dict] = None
    short_circuit: bool = True
    batch_execution: bool = True
    page_execution: bool = True
    placement: Any = None
    network: Any = None
    #: Enforced engine budget (memory governor; spills under pressure).
    memory_budget: Optional[int] = None
    tracer: Any = None
    parallel: Optional[int] = None
    pool: Any = None
    catalog_spec: Any = None
    slo_seconds: Optional[float] = None
    #: Hard per-tenant caps (see :class:`TenantQuota`).
    quotas: Dict[Optional[str], TenantQuota] = field(default_factory=dict)
    #: How many completed query profiles the service retains for the
    #: ``profile`` admin frame and the slow-query log.
    profile_retention: int = 128
    #: Latency threshold (milliseconds, service virtual clock) above
    #: which a completed query gets a ``slow_query`` event-log entry
    #: embedding its profile; None disables the slow-query log.
    slow_query_ms: Optional[float] = None
    #: Structured JSONL event log: a path, an
    #: :class:`~repro.obs.eventlog.EventLog`, or None (disabled).
    event_log: Any = None
    #: Size-rotation threshold for a path-configured event log.
    event_log_max_bytes: int = 4 * 1024 * 1024

    def validate(self) -> "ServiceConfig":
        """Fail fast on contradictory settings; returns self."""
        if (
            (self.parallel or self.pool is not None)
            and self.memory_budget is not None
        ):
            raise ValueError(
                "parallel service execution cannot share one enforced "
                "memory governor across worker processes; drop "
                "memory_budget or parallel"
            )
        if self.parallel is not None and self.parallel < 1:
            raise ValueError(
                "parallel must be >= 1; got %r" % (self.parallel,)
            )
        for tenant, quota in (self.quotas or {}).items():
            if not isinstance(quota, TenantQuota):
                raise ValueError(
                    "quota for tenant %r must be a TenantQuota; got %r"
                    % (tenant, quota)
                )
        if self.profile_retention < 1:
            raise ValueError(
                "profile_retention must be >= 1; got %r"
                % (self.profile_retention,)
            )
        if self.slow_query_ms is not None and self.slow_query_ms < 0:
            raise ValueError(
                "slow_query_ms must be >= 0; got %r" % (self.slow_query_ms,)
            )
        return self

    def evolve(self, **overrides) -> "ServiceConfig":
        """A copy with ``overrides`` applied (kwargs-shim helper)."""
        return replace(self, **overrides)


#: The exact kwarg names the pre-config QueryService accepted; the shim
#: routes them (and only them) into ServiceConfig fields.
CONFIG_FIELDS = tuple(f.name for f in fields(ServiceConfig))


def coerce_config(config, kwargs: Dict[str, Any]) -> ServiceConfig:
    """The compatibility shim behind ``QueryService.__init__``.

    Accepts any of the historical calling conventions:

    * ``QueryService(catalog)`` — all defaults;
    * ``QueryService(catalog, "costbased")`` — positional strategy;
    * ``QueryService(catalog, strategy=..., max_concurrent=...)`` —
      loose kwargs, the pre-config surface;
    * ``QueryService(catalog, ServiceConfig(...))`` — the config
      object, optionally with kwarg overrides on top.
    """
    if isinstance(config, str):
        # Old positional-strategy convention.
        if "strategy" in kwargs:
            raise TypeError("strategy given positionally and by keyword")
        kwargs = dict(kwargs, strategy=config)
        config = None
    unknown = set(kwargs) - set(CONFIG_FIELDS)
    if unknown:
        raise TypeError(
            "unknown QueryService option(s): %s"
            % ", ".join(sorted(unknown))
        )
    if config is None:
        config = ServiceConfig(**kwargs)
    elif isinstance(config, ServiceConfig):
        if kwargs:
            config = config.evolve(**kwargs)
    else:
        raise TypeError(
            "config must be a ServiceConfig (or legacy strategy string); "
            "got %r" % (config,)
        )
    return config.validate()
