"""Admission control: bound aggregate intermediate-state memory.

The paper's Section VI-D argument — "the memory savings may be
particularly important in a system that executes multiple queries
simultaneously" — only matters if the system actually limits how much
intermediate state concurrent queries may pin.  The controller holds a
byte budget; each query's demand is estimated *before* execution from
the optimizer's cardinality model (the buffered inputs of every
stateful operator), and a query is

* **admitted** while the estimated in-flight total stays within budget,
* **queued** when it would push the total past the budget, and
* **shed** outright when its own estimate exceeds the whole budget —
  it could never run, so keeping it queued would stall the stream.

Estimates drift from reality (short-circuiting, AIP pruning, skew), so
the controller also *reconciles*: after each batch the service reports
the bytes actually observed — the memory governor's resident peak when
one is attached, the metric store's peak otherwise — and an EWMA of
the observed/estimated ratio corrects every later admission decision.
"""

from __future__ import annotations

from typing import Optional

from repro.optimizer.cost import PlanCoster
from repro.plan.logical import GroupBy, LogicalNode

ADMIT = "admit"
QUEUE = "queue"
SHED = "shed"


def estimate_query_state_bytes(root: LogicalNode, coster: PlanCoster) -> float:
    """Estimated peak intermediate state of one query, in bytes.

    Every stateful operator buffers its inputs (symmetric hash joins
    buffer both sides; semijoins buffer probe rows until the source
    completes); a group-by additionally materialises its groups.  This
    ignores short-circuiting and AIP pruning, so it is a conservative
    (admission-safe) overestimate.
    """
    total = 0.0
    for node in root.walk():
        if not node.is_stateful:
            continue
        for child in node.children:
            total += coster.state_bytes(child)
        if isinstance(node, GroupBy):
            total += coster.state_bytes(node)
    return total


class AdmissionController:
    """Tracks estimated in-flight state against a byte budget."""

    def __init__(
        self,
        memory_budget_bytes: Optional[float] = None,
        max_concurrent: int = 4,
        correction_alpha: float = 0.3,
    ):
        if max_concurrent < 1:
            raise ValueError("need max_concurrent >= 1")
        if not 0.0 <= correction_alpha <= 1.0:
            raise ValueError("need 0 <= correction_alpha <= 1")
        self.memory_budget_bytes = memory_budget_bytes
        self.max_concurrent = max_concurrent
        self.in_flight_bytes = 0.0
        self.in_flight_queries = 0
        self.admitted = 0
        #: Queue *decisions*, not distinct queries — one query waiting
        #: through several batch formations counts once per attempt.
        self.queue_events = 0
        self.shed = 0
        #: EWMA of observed/estimated state bytes; scales every budget
        #: comparison.  Starts at 1.0 (trust the estimator) and is fed
        #: by :meth:`observe` after each finished batch.
        self.correction = 1.0
        self.correction_alpha = correction_alpha
        self.observations = 0

    def effective_estimate(self, estimate_bytes: float) -> float:
        """An estimate scaled by what reconciliation has learned."""
        return estimate_bytes * self.correction

    def observe(self, estimated_bytes: float, actual_bytes: float) -> None:
        """Fold one batch's observed state bytes into the correction.

        ``estimated_bytes`` is the batch's summed admission estimate;
        ``actual_bytes`` the peak the run actually reached (governor
        resident peak when enforcement is on).  Called exactly once per
        executed batch — error paths skip it, so a failed batch never
        poisons the ratio.
        """
        if estimated_bytes <= 0 or actual_bytes < 0:
            return
        ratio = actual_bytes / estimated_bytes
        alpha = self.correction_alpha
        correction = (1.0 - alpha) * self.correction + alpha * ratio
        # Clamp: one aberrant batch must never push the controller into
        # shedding everything or admitting unboundedly.
        self.correction = min(max(correction, 0.05), 20.0)
        self.observations += 1

    def decide(self, estimate_bytes: float) -> str:
        """Classify one query given the current in-flight load."""
        budget = self.memory_budget_bytes
        if (
            budget is not None
            and self.effective_estimate(estimate_bytes) > budget
        ):
            self.shed += 1
            return SHED
        if self.in_flight_queries >= self.max_concurrent:
            self.queue_events += 1
            return QUEUE
        if (
            budget is not None
            and self.in_flight_queries > 0
            and self.effective_estimate(
                self.in_flight_bytes + estimate_bytes
            ) > budget
        ):
            self.queue_events += 1
            return QUEUE
        self.admitted += 1
        return ADMIT

    def acquire(self, estimate_bytes: float) -> None:
        self.in_flight_bytes += estimate_bytes
        self.in_flight_queries += 1

    def release(self, estimate_bytes: float) -> None:
        self.in_flight_bytes = max(0.0, self.in_flight_bytes - estimate_bytes)
        self.in_flight_queries = max(0, self.in_flight_queries - 1)
