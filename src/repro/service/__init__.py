"""The multi-query service layer.

The paper motivates AIP with multi-query settings — "a reduction in
both CPU cost and memory can be very useful in improving throughput if
multiple queries are running concurrently" (Section VI-B) — and this
package turns the one-shot engine into that system: a
:class:`~repro.service.service.QueryService` front door accepts a
*stream* of queries (SQL text, workload ids, or plan builders) against
one catalog on the shared virtual clock, with

* **admission control** bounding aggregate intermediate-state memory
  (queries past the budget queue; queries that could never fit shed);
* **pluggable schedulers** (FIFO, shortest-cost-first) choosing which
  queued queries form the next concurrent batch;
* a **cross-query AIP-set cache** — inter-query sideways information
  passing: completed AIP sets published by one query are fingerprinted
  by the subexpression that produced them and re-injected, from time
  zero, into later queries containing the same subexpression;
* a **result cache** keyed by plan fingerprint.
"""

from repro.service.admission import (
    AdmissionController, estimate_query_state_bytes,
)
from repro.service.aip_cache import AIPSetCache
from repro.service.config import ServiceConfig, TenantQuota
from repro.service.fingerprint import plan_signature
from repro.service.result import (
    QueryResult, result_from_outcome, results_from_report,
)
from repro.service.result_cache import ResultCache
from repro.service.schedulers import (
    FifoScheduler, Scheduler, ShortestCostFirstScheduler, make_scheduler,
    SCHEDULERS,
)
from repro.service.service import (
    CACHED, ERROR, OK, SHED_STATUS, QueryOutcome, QueryService,
    ServiceReport,
)
from repro.service.workload import WorkloadItem, parse_workload

__all__ = [
    "AdmissionController", "estimate_query_state_bytes",
    "AIPSetCache", "ResultCache",
    "ServiceConfig", "TenantQuota",
    "QueryResult", "result_from_outcome", "results_from_report",
    "plan_signature",
    "Scheduler", "FifoScheduler", "ShortestCostFirstScheduler",
    "make_scheduler", "SCHEDULERS",
    "QueryService", "QueryOutcome", "ServiceReport",
    "OK", "CACHED", "SHED_STATUS", "ERROR",
    "WorkloadItem", "parse_workload",
]
