"""Pluggable batch schedulers for the query service.

A scheduler orders the ready queue each time the service forms a new
concurrent batch.  Ordering is the whole interface: admission control
then packs the prefix that fits the memory budget.

* ``fifo`` — arrival order; fair, predictable queue waits.
* ``sjf`` — shortest-cost-first using the optimizer's cost estimate
  (:class:`~repro.optimizer.cost.PlanCoster` totals, the same virtual
  seconds the engine charges), which minimises mean latency on mixed
  streams at the price of possible starvation of expensive queries.
"""

from __future__ import annotations

from typing import List

FIFO = "fifo"
SJF = "sjf"

#: Scheduler names accepted by :func:`make_scheduler` and the CLI.
SCHEDULERS = (FIFO, SJF)


class Scheduler:
    """Orders pending entries; subclasses override :meth:`order`."""

    name = "scheduler"

    def order(self, pending: List) -> List:
        """Return ``pending`` in dispatch order (a new list).

        Entries are :class:`~repro.service.service._PendingQuery`
        objects exposing ``arrival``, ``seq`` and ``cost_estimate``.
        """
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class FifoScheduler(Scheduler):
    """Dispatch in arrival order (ties broken by submission sequence)."""

    name = FIFO

    def order(self, pending: List) -> List:
        return sorted(pending, key=lambda e: (e.arrival, e.seq))


class ShortestCostFirstScheduler(Scheduler):
    """Dispatch cheapest-estimated-cost first."""

    name = SJF

    def order(self, pending: List) -> List:
        return sorted(pending, key=lambda e: (e.cost_estimate, e.seq))


def make_scheduler(name: str) -> Scheduler:
    if name == FIFO:
        return FifoScheduler()
    if name == SJF:
        return ShortestCostFirstScheduler()
    raise ValueError(
        "unknown scheduler %r; expected one of %s" % (name, SCHEDULERS)
    )
