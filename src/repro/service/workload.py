"""Scripted query streams for the service layer.

A workload stream is a list of :class:`WorkloadItem`\\ s — each a query
(a Table I workload id or SQL text), a virtual arrival time, and an
optional per-query strategy override.  Streams come from text scripts
(one query per line) or inline comma-separated id lists, so the CLI's
``workload`` command and the benchmarks replay identical traffic.

Script grammar, one item per line::

    # comment                      blank lines and comments are skipped
    Q1A                            workload id, arrives at t=0
    Q2A *3                         repeat: three arrivals of Q2A
    @0.5 Q3A                       arrival time in virtual seconds
    @1.0 select count(*) as n from part       anything else is SQL
    Q1A !costbased                 per-query strategy override
    Q1A %acme                      fair-share tenant tag (parallel
                                   services interleave admission
                                   across tenants)
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.workloads.registry import QUERIES

QID = "qid"
SQL = "sql"

_QID_LINE = re.compile(
    r"^(?P<qid>[A-Za-z]\w*)"
    r"(?:\s*\*\s*(?P<repeat>\d+))?"
    r"(?:\s+!(?P<strategy>[\w-]+))?"
    r"(?:\s+%(?P<tenant>[\w-]+))?$"
)
_ARRIVAL = re.compile(r"^@(?P<t>\d+(?:\.\d+)?)\s+(?P<body>.+)$")


class WorkloadItem:
    """One query arrival in a stream."""

    __slots__ = ("kind", "text", "arrival", "strategy", "label", "tenant")

    def __init__(
        self,
        kind: str,
        text: str,
        arrival: float = 0.0,
        strategy: Optional[str] = None,
        label: Optional[str] = None,
        tenant: Optional[str] = None,
    ):
        if kind not in (QID, SQL):
            raise ValueError("kind must be %r or %r" % (QID, SQL))
        self.kind = kind
        self.text = text
        self.arrival = arrival
        #: Per-item strategy override (None = the service default).
        self.strategy = strategy
        self.label = label or (text if kind == QID else "sql")
        #: Fair-share class a parallel service interleaves admission by.
        self.tenant = tenant

    def __repr__(self) -> str:
        return "WorkloadItem(%s %r @%g)" % (self.kind, self.text, self.arrival)


def _parse_line(line: str) -> List[WorkloadItem]:
    arrival = 0.0
    m = _ARRIVAL.match(line)
    if m:
        arrival = float(m.group("t"))
        line = m.group("body").strip()
    m = _QID_LINE.match(line)
    if m and m.group("qid") in QUERIES:
        qid = m.group("qid")
        repeat = int(m.group("repeat") or 1)
        strategy = m.group("strategy")
        tenant = m.group("tenant")
        return [
            WorkloadItem(QID, qid, arrival, strategy, tenant=tenant)
            for _ in range(repeat)
        ]
    return [WorkloadItem(SQL, line, arrival)]


def parse_workload(text: str) -> List[WorkloadItem]:
    """Parse a workload script into a stream of items."""
    items: List[WorkloadItem] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        items.extend(_parse_line(line))
    return items


def parse_inline(spec: str) -> List[WorkloadItem]:
    """Parse an inline stream: either comma-separated workload-id terms
    (``"Q1A,Q2A*3"``) or, failing that, a single SQL query."""
    parts = [p.strip() for p in spec.split(",") if p.strip()]
    if parts and all(
        _QID_LINE.match(p) and _QID_LINE.match(p).group("qid") in QUERIES
        for p in parts
    ):
        items: List[WorkloadItem] = []
        for part in parts:
            items.extend(_parse_line(part))
        return items
    return [WorkloadItem(SQL, spec.strip())]
