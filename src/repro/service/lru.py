"""A small LRU mapping shared by the service caches.

Python dicts preserve insertion order, so recency is maintained by
popping and re-inserting on access; eviction drops the oldest entry.
Capacity is bounded two ways: an entry count, and (optionally) a
resident-byte cap measured through a caller-supplied sizer — the
service's whole point is bounding memory, so its caches must not grow
without limit themselves.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional


class LruDict:
    """Insertion-ordered mapping with count- and byte-bounded eviction."""

    def __init__(
        self,
        max_entries: int,
        byte_size_of: Optional[Callable] = None,
        max_bytes: Optional[int] = None,
    ):
        if max_entries < 1:
            raise ValueError("need max_entries >= 1")
        if max_bytes is not None and byte_size_of is None:
            raise ValueError("a byte cap needs a byte_size_of sizer")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._byte_size_of = byte_size_of
        self._entries: Dict = {}
        #: Running byte total, maintained on put/evict so over-cap puts
        #: and stats reads stay O(1) instead of re-summing every entry.
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def __iter__(self):
        return iter(self._entries)

    def get(self, key):
        """Return the value (refreshing its recency), or None."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.pop(key)
            self._entries[key] = entry
        return entry

    def put(self, key, value) -> bool:
        """Insert ``value``, evicting oldest entries to fit the caps;
        returns whether it was stored.

        A value that alone exceeds the byte cap is not stored at all —
        pinning it would violate the cap for the cache's lifetime — and
        any existing entry under the key is left in place."""
        if (
            self.max_bytes is not None
            and self._byte_size_of(value) > self.max_bytes
        ):
            return False
        existing = self._entries.pop(key, None)
        if existing is not None and self._byte_size_of is not None:
            self._bytes -= self._byte_size_of(existing)
        self._entries[key] = value
        if self._byte_size_of is not None:
            self._bytes += self._byte_size_of(value)
        while len(self._entries) > self.max_entries or (
            self.max_bytes is not None and self._bytes > self.max_bytes
        ):
            victim = self._entries.pop(next(iter(self._entries)))
            if self._byte_size_of is not None:
                self._bytes -= self._byte_size_of(victim)
        return True

    def values(self) -> Iterable:
        return self._entries.values()

    def keys(self) -> Iterable:
        return self._entries.keys()

    def byte_size(self) -> int:
        return self._bytes

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0
