"""Structural plan fingerprints.

Logical nodes carry process-unique ``node_id``\\ s and plans must be
rebuilt per execution, so object identity cannot relate queries across
a stream.  This module renders a plan (or subplan) into a canonical
signature string — table names, renames, predicate text, join keys,
aggregate specs, but never node ids — so two independently built plans
with the same semantics produce the same signature.  The result cache
keys whole plans by it; the cross-query AIP cache keys the
*subexpression feeding one stateful-operator input* by it.

Signatures are exact-match: two queries only share a fingerprint when
they were built the same way (same tables, aliases, predicates).  That
is deliberately conservative — a false split only costs a cache miss,
while a false merge would corrupt results.
"""

from __future__ import annotations

from repro.common.errors import PlanError
from repro.common.hashing import stable_label_seed
from repro.plan.logical import (
    Distinct, Filter, GroupBy, Join, LogicalNode, Project, Scan, SemiJoin,
)


def plan_signature(node: LogicalNode) -> str:
    """Canonical, node-id-free rendering of the subtree at ``node``.

    Memoised per node object: the service computes the same root
    signature for admission, the result-cache probe and the result-cache
    store, and the AIP cache re-renders child subtrees per stateful
    input, so a single submission used to recompute overlapping subtree
    signatures several times over.  Nodes are immutable after planning
    with one exception — :func:`repro.distributed.coordinator.
    mark_remote_scans` restamps scan sites — so that mutation point
    calls :func:`invalidate_signatures` on the plan.
    """
    cached = node.__dict__.get("_signature_memo")
    if cached is None:
        cached = node.__dict__["_signature_memo"] = _render_signature(node)
    return cached


def invalidate_signatures(root: LogicalNode) -> None:
    """Drop memoised signatures for every node under ``root``.

    Called by the one code path that mutates signature-relevant node
    fields after construction (scan-site stamping); an ancestor's
    signature embeds its children's, so the whole walk is cleared.
    """
    for node in root.walk():
        node.__dict__.pop("_signature_memo", None)


def _render_signature(node: LogicalNode) -> str:
    if isinstance(node, Scan):
        renames = ",".join(
            "%s->%s" % (k, v) for k, v in sorted(node.renames.items())
        )
        return "scan(%s;renames=%s;site=%s)" % (
            node.table_name, renames, node.site,
        )
    if isinstance(node, Filter):
        return "filter(%r)[%s]" % (node.predicate, plan_signature(node.child))
    if isinstance(node, Project):
        outputs = ",".join(
            "%s:=%r" % (name, expr) for name, expr in node.outputs
        )
        return "project(%s)[%s]" % (outputs, plan_signature(node.child))
    if isinstance(node, Join):
        keys = ",".join("%s=%s" % pair for pair in node.key_pairs())
        return "join(%s;residual=%r)[%s][%s]" % (
            keys, node.residual,
            plan_signature(node.left), plan_signature(node.right),
        )
    if isinstance(node, SemiJoin):
        keys = ",".join(
            "%s=%s" % pair for pair in zip(node.probe_keys, node.source_keys)
        )
        return "semijoin(%s)[%s][%s]" % (
            keys, plan_signature(node.probe), plan_signature(node.source),
        )
    if isinstance(node, GroupBy):
        aggs = ",".join(
            "%s(%r):=%s" % (s.func, s.input, s.output_name)
            for s in node.aggregates
        )
        return "groupby(%s;%s)[%s]" % (
            ",".join(node.keys), aggs, plan_signature(node.child),
        )
    if isinstance(node, Distinct):
        return "distinct[%s]" % plan_signature(node.child)
    raise PlanError("cannot fingerprint node %r" % node)


def plan_fingerprint(node: LogicalNode) -> int:
    """A stable 63-bit integer fingerprint of ``node``'s signature."""
    return stable_label_seed(0, plan_signature(node))


def party_state_signature(logical: LogicalNode, port: int, attr: str) -> str:
    """Signature identifying the *state* a stateful operator buffers for
    one input, from which an AIP set over ``attr`` is built.

    For an attribute flowing through from the input, the buffered
    values of ``attr`` are exactly the input subexpression's output
    values, so the key is the child subtree's signature.  For a
    computed attribute (a group-by aggregate output, only known at
    completion), the values depend on the aggregation itself, so the
    key is the operator's own signature — decided by *being* an
    aggregate output, not by absence from the child schema: an
    aggregate aliased to a child column name (``sum(x) as x``) must
    never be keyed as the raw column's values.
    """
    computed = set()
    if isinstance(logical, GroupBy):
        computed = {spec.output_name for spec in logical.aggregates}
    child = logical.children[port]
    if attr not in computed and attr in child.schema:
        return "%s::%s" % (plan_signature(child), attr)
    return "%s::%s" % (plan_signature(logical), attr)
