"""Result cache keyed by plan fingerprint.

The engine is deterministic over a fixed catalog — the same logical
plan always yields the same rows regardless of execution strategy — so
a completed query's rows can be replayed for any later plan with the
same structural signature (:mod:`repro.service.fingerprint`).  The
cache belongs to one :class:`~repro.service.service.QueryService` and
therefore to one catalog; it never outlives the data it summarises.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.sizing import rows_nbytes
from repro.data.schema import Schema
from repro.service.lru import LruDict

#: Default resident-byte cap on cached result rows (64 MB).
DEFAULT_MAX_BYTES = 64 << 20


class CachedResult:
    """Rows plus the schema and original cost of producing them."""

    __slots__ = ("rows", "schema", "produced_in_seconds")

    def __init__(
        self, rows: List[Tuple], schema: Schema, produced_in_seconds: float
    ):
        self.rows = rows
        self.schema = schema
        #: Virtual seconds until the original execution finished on its
        #: batch clock.  In a concurrent batch this includes co-running
        #: queries' interleaved work, so it is an *upper bound* on the
        #: solo cost a hit avoids.
        self.produced_in_seconds = produced_in_seconds

    def byte_size(self) -> int:
        """Rough resident bytes of the cached rows."""
        return rows_nbytes(self.schema, len(self.rows))


class ResultCache:
    """Maps plan signatures to completed results."""

    def __init__(
        self,
        max_entries: int = 128,
        max_bytes: Optional[int] = DEFAULT_MAX_BYTES,
    ):
        self._entries = LruDict(
            max_entries,
            byte_size_of=lambda entry: entry.byte_size(),
            max_bytes=max_bytes,
        )
        self.hits = 0
        self.misses = 0
        self.seconds_saved = 0.0

    def lookup(
        self, signature: str, count_miss: bool = True
    ) -> Optional[CachedResult]:
        """Find a cached result (refreshing LRU recency on a hit).
        ``count_miss=False`` suppresses miss accounting for re-probes
        of a query already counted once (the service re-probes queued
        queries every dispatch round)."""
        entry = self._entries.get(signature)
        if entry is None:
            if count_miss:
                self.misses += 1
            return None
        self.hits += 1
        self.seconds_saved += entry.produced_in_seconds
        return entry

    def store(
        self, signature: str, rows: List[Tuple], schema: Schema,
        produced_in_seconds: float,
    ) -> None:
        if signature in self._entries:
            return
        # Copy: callers may mutate their result's row list; the cache
        # must never serve (or suffer) those mutations.
        self._entries.put(
            signature, CachedResult(list(rows), schema, produced_in_seconds)
        )

    def __len__(self) -> int:
        return len(self._entries)

    def byte_size(self) -> int:
        """Rough resident bytes of all cached result rows."""
        return self._entries.byte_size()

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> Dict[str, float]:
        return {
            "entries": len(self._entries),
            "bytes": self.byte_size(),
            "hits": self.hits,
            "misses": self.misses,
            "seconds_saved": self.seconds_saved,
        }
