"""The one public result shape every transport returns.

Before the front door, callers saw three different result shapes:
:class:`~repro.exec.engine.QueryResult` (rows + schema + raw engine
metrics) from ``execute_plan``, :class:`QueryOutcome` from the service,
and ad-hoc runner dicts from the harness.  The socket client would have
added a fourth.  This module defines the single client-facing
:class:`QueryResult`: rows, column names, terminal status, latency and
queue wait on the service's virtual clock, and a flat engine-metrics
snapshot — the same object whether it came from an in-process call or
across the wire.

Bit-identity across transports is a design invariant, not an accident:
:meth:`QueryResult.to_payload` / :meth:`QueryResult.from_payload`
define the wire representation, every value in it is JSON-exact
(str/int/float/bool/None round-trip bit-identically through ``json``),
and ``from_payload`` restores rows to tuples — so a socket client and
an :class:`~repro.client.InProcessClient` running the same stream hand
back equal objects.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ExecutionError

Row = Tuple

#: Terminal statuses (mirrors repro.service.service — re-declared here
#: to keep this module import-light for the client side).
OK = "ok"
CACHED = "cached"
SHED = "shed"
ERROR = "error"


class QueryResult:
    """What one submitted query came back as, transport-independent."""

    __slots__ = (
        "label", "status", "rows", "columns", "latency", "queue_wait",
        "seq", "tenant", "reason", "metrics",
    )

    def __init__(
        self,
        label: str,
        status: str,
        rows: List[Row],
        columns: Tuple[str, ...],
        latency: float,
        queue_wait: float,
        seq: int = -1,
        tenant: Optional[str] = None,
        reason: Optional[str] = None,
        metrics: Optional[Dict] = None,
    ):
        self.label = label
        self.status = status
        self.rows = rows
        self.columns = columns
        #: Virtual seconds from arrival to finish / shed decision.
        self.latency = latency
        self.queue_wait = queue_wait
        self.seq = seq
        self.tenant = tenant
        #: Why a non-ok query ended: ``admission``, ``slo``,
        #: ``quota:concurrent``, ``quota:state``, or an error message.
        self.reason = reason
        #: Flat engine-counter snapshot (``virtual_seconds``,
        #: ``peak_state_mb``, ``tuples_pruned``, ...); empty for sheds.
        self.metrics = metrics or {}

    # -- predicates --------------------------------------------------------

    @property
    def ok(self) -> bool:
        return self.status in (OK, CACHED)

    @property
    def cached(self) -> bool:
        return self.status == CACHED

    def require(self) -> "QueryResult":
        """Return self, or raise if the query did not produce rows."""
        if not self.ok:
            raise ExecutionError(
                "query %s was %s%s" % (
                    self.label, self.status,
                    " (%s)" % self.reason if self.reason else "",
                )
            )
        return self

    # -- row access --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def sorted_rows(self) -> List[Row]:
        """Rows in a canonical order, for equivalence checks."""
        return sorted(self.rows, key=repr)

    def __repr__(self) -> str:
        return "QueryResult(%s %s: %d rows, latency=%.4fs)" % (
            self.label, self.status, len(self.rows), self.latency,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryResult):
            return NotImplemented
        return self.to_payload() == other.to_payload()

    # -- the wire shape ----------------------------------------------------

    def to_payload(self) -> Dict:
        """JSON-safe dict; the socket server's summary/rows source."""
        return {
            "label": self.label,
            "status": self.status,
            "rows": [list(row) for row in self.rows],
            "columns": list(self.columns),
            "latency": self.latency,
            "queue_wait": self.queue_wait,
            "seq": self.seq,
            "tenant": self.tenant,
            "reason": self.reason,
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "QueryResult":
        return cls(
            label=payload["label"],
            status=payload["status"],
            rows=[tuple(row) for row in payload["rows"]],
            columns=tuple(payload["columns"]),
            latency=payload["latency"],
            queue_wait=payload["queue_wait"],
            seq=payload.get("seq", -1),
            tenant=payload.get("tenant"),
            reason=payload.get("reason"),
            metrics=dict(payload.get("metrics") or {}),
        )


def columns_of(schema) -> Tuple[str, ...]:
    """Column names of an engine schema (tolerates None for sheds)."""
    if schema is None:
        return ()
    return tuple(attr.name for attr in schema.attributes)


def result_from_outcome(outcome, tenant: Optional[str] = None) -> QueryResult:
    """Build the public result from a service :class:`QueryOutcome`.

    The single construction point both transports share: the
    in-process client returns this object directly; the socket server
    serialises it with :meth:`QueryResult.to_payload`.
    """
    engine_result = outcome.result
    if engine_result is None:
        rows: List[Row] = []
        columns: Tuple[str, ...] = ()
        metrics: Dict = {}
    else:
        rows = list(engine_result.rows)
        columns = columns_of(engine_result.schema)
        metrics = engine_result.metrics.summary()
    return QueryResult(
        label=outcome.label,
        status=outcome.status,
        rows=rows,
        columns=columns,
        latency=outcome.latency,
        queue_wait=outcome.queue_wait,
        seq=outcome.seq,
        tenant=tenant,
        reason=getattr(outcome, "reason", None),
        metrics=metrics,
    )


def results_from_report(report, tenants: Optional[Dict[int, str]] = None,
                        ) -> List[QueryResult]:
    """Per-query public results for one :class:`ServiceReport`."""
    tenants = tenants or {}
    return [
        result_from_outcome(outcome, tenant=tenants.get(outcome.seq))
        for outcome in report.outcomes
    ]


def percentile(values: Sequence[float], q: float) -> float:
    """Re-exported exact percentile (see :mod:`repro.obs.registry`)."""
    from repro.obs.registry import percentile as _percentile

    return _percentile(values, q)
