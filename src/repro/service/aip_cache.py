"""Cross-query AIP-set cache: inter-query sideways information passing.

The paper's AIP algorithms pass information *sideways within one
query*: an AIP set summarising a completed subexpression filters other
parts of the same plan.  Across a workload stream the same
subexpressions recur — TPC-H 17 always aggregates the same LINEITEM
subtree, every Q1 variant scans the same filtered PART — so a set built
by one query is exactly the set a later query would rebuild.  This
cache extends the paper's algorithms across query boundaries:

* **harvest** — it subscribes to the execution context's AIP publish
  hook; every set a strategy publishes is keyed by the
  :func:`~repro.service.fingerprint.party_state_signature` of the state
  it summarises (the producing subexpression and attribute, never node
  ids, so independently built plans match);
* **soundness gate** — a set is cached only if the state it was built
  from is *pristine*: the full subexpression result, with no tuple
  pruned anywhere in the producing subtree by this query's own injected
  or source-side filters.  A pruned state is still sound inside its own
  query (the pruned tuples could not contribute *there*) but may lack
  values another query needs;
* **re-injection** — before a new plan runs, every party whose state
  signature hits the cache gets its remembered set injected into all
  interested parties of the new plan (computed from the new plan's own
  source-predicate graph and candidate index, i.e. exactly where an
  intra-query publish from that party would inject) — but from virtual
  time zero, before a single tuple flows.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.aip.candidates import aip_candidates
from repro.aip.sets import AIPSet
from repro.exec.context import ExecutionContext
from repro.exec.operators.base import InjectedFilter, Operator
from repro.exec.operators.scan import PScan
from repro.exec.translate import PhysicalPlan
from repro.optimizer.predicate_graph import SourcePredicateGraph
from repro.service.fingerprint import party_state_signature
from repro.service.lru import LruDict


#: Default resident-byte cap on cached summaries (16 MB).
DEFAULT_MAX_BYTES = 16 << 20


class AIPSetCache:
    """Completed AIP sets keyed by producing-state signature."""

    def __init__(
        self,
        max_entries: int = 256,
        max_bytes: Optional[int] = DEFAULT_MAX_BYTES,
    ):
        self._entries = LruDict(
            max_entries,
            byte_size_of=lambda aip_set: aip_set.byte_size(),
            max_bytes=max_bytes,
        )
        self.hits = 0
        self.misses = 0
        self.stored = 0
        self.rejected_tainted = 0
        self.filters_injected = 0

    # -- producer side ----------------------------------------------------

    def record(
        self, op: Operator, port: int, aip_set: AIPSet,
        ctx: ExecutionContext,
    ) -> bool:
        """Harvest one published set; returns True if it was cached.

        Intended as an ``aip_publish_hooks`` subscriber via
        :meth:`recorder`.
        """
        logical = getattr(op, "logical", None)
        if logical is None or port >= len(logical.children):
            return False
        if not self._state_pristine(op, port, ctx):
            self.rejected_tainted += 1
            return False
        key = party_state_signature(logical, port, aip_set.attr)
        existing = self._entries.get(key)  # refreshes recency
        if existing is not None and (
            self._degradation(aip_set) >= self._degradation(existing)
        ):
            return False
        # First set for this state, or a higher-precision replacement
        # for one that was budget-shrunk (discarded buckets pass
        # everything through, so less degradation prunes more).
        if not self._entries.put(key, aip_set):
            return False  # over the byte cap; existing entry kept
        self.stored += 1
        return True

    @staticmethod
    def _degradation(aip_set: AIPSet) -> int:
        """How lossy a set's summary is (0 = full precision)."""
        return getattr(aip_set.summary, "discarded_buckets", 0)

    def recorder(self, ctx: ExecutionContext):
        """A publish hook bound to one execution context."""
        return lambda op, port, aip_set: self.record(op, port, aip_set, ctx)

    def _state_pristine(
        self, op: Operator, port: int, ctx: ExecutionContext
    ) -> bool:
        """True when the state at ``(op, port)`` is the untouched
        subexpression result: nothing pruned at the operator's own
        inputs nor anywhere in the subtree feeding ``port``."""
        counters = ctx.metrics.operators.get(op.op_id)
        if counters is not None and counters.tuples_pruned:
            return False
        child = op.children[port]
        if child is None:
            return False
        for node in child.walk():
            counters = ctx.metrics.operators.get(node.op_id)
            if counters is not None and counters.tuples_pruned:
                return False
            if isinstance(node, PScan) and node.arrival.rows_filtered_at_source:
                return False
        return True

    # -- consumer side ----------------------------------------------------

    def lookup(self, logical, port: int, attr: str) -> Optional[AIPSet]:
        """Lookup with LRU recency refresh; hit/miss accounting is per
        *plan* (see :meth:`inject`), since one plan probes many
        party-attributes."""
        return self._entries.get(party_state_signature(logical, port, attr))

    def inject(
        self,
        physical: PhysicalPlan,
        ctx: ExecutionContext,
        graph: Optional[SourcePredicateGraph] = None,
        candidates=None,
    ) -> List[InjectedFilter]:
        """Inject every cached set matching one of ``physical``'s
        producible parties into that plan's interested parties.

        Targets come from the plan's own candidate index, so injection
        sites are exactly those an intra-query publish from the matched
        party would have reached — just earlier.  Returns the injected
        filters (their ``pruned`` counters give per-query reuse stats).
        One hit or miss is recorded per plan: the hit rate reads as
        "fraction of plans that found something reusable".

        ``graph``/``candidates`` accept the plan's already-built
        source-predicate graph and candidate index (the attached AIP
        strategy constructs the same ones) to avoid rebuilding them.
        """
        if not self._entries:
            # Nothing cached yet; skip building the graph and index.
            self.misses += 1
            if ctx.tracer is not None:
                ctx.tracer.instant(
                    "cache.aip.miss", "cache", ctx.metrics.clock_ticks,
                    {"filters_injected": 0},
                )
            return []
        if graph is None:
            graph = SourcePredicateGraph.from_plan(physical.logical_root)
        index = (
            candidates if candidates is not None
            else aip_candidates(physical, graph)
        )
        injected: List[InjectedFilter] = []
        seen: set = set()
        charged = False
        for party, attrs in index.producible.items():
            node_id, port = party
            op = physical.by_node_id.get(node_id)
            logical = getattr(op, "logical", None)
            if logical is None:
                continue
            for attr in attrs:
                cached = self.lookup(logical, port, attr)
                if cached is None:
                    continue
                if not charged:
                    # One manager-style consultation per plan with hits.
                    ctx.charge(ctx.cost_model.manager_invocation)
                    charged = True
                root = graph.eq.find(attr)
                for target_party in index.interested_in(graph, attr):
                    if target_party == party:
                        continue
                    dedup = (target_party, root)
                    if dedup in seen:
                        continue
                    target = physical.by_node_id.get(target_party[0])
                    if target is None:
                        continue
                    target_attr = index.attr_at(graph, target_party, attr)
                    if target_attr is None:
                        continue
                    seen.add(dedup)
                    injected.append(target.register_filter(
                        target_party[1], target_attr, cached.summary,
                        label="XQ:%s" % cached.source_label,
                    ))
                    self.filters_injected += 1
        if injected:
            self.hits += 1
        else:
            self.misses += 1
        if ctx.tracer is not None:
            ctx.tracer.instant(
                "cache.aip.%s" % ("hit" if injected else "miss"),
                "cache", ctx.metrics.clock_ticks,
                {"filters_injected": len(injected)},
            )
        return injected

    # -- bookkeeping -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def byte_size(self) -> int:
        """Resident bytes of all cached summaries."""
        return self._entries.byte_size()

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "bytes": self.byte_size(),
            "hits": self.hits,
            "misses": self.misses,
            "stored": self.stored,
            "rejected_tainted": self.rejected_tainted,
            "filters_injected": self.filters_injected,
        }
