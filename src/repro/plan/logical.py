"""Logical plan nodes.

Plans are *bushy* operator trees — the paper stresses that push-style
engines join intermediate results with intermediate results, which is
what creates the sideways-information-passing opportunities a linear
plan lacks.  Nodes are immutable after construction; each carries its
output schema and, where derivable, the base-table origin of every
output column (``column_origins``), which both the optimizer's
selectivity estimation and the AIP candidate analysis rely on.

Every node gets a process-unique ``node_id``, used by the AIP Registry
and Manager to address operators in a running plan.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import PlanError
from repro.data.schema import Schema
from repro.expr.aggregates import AggregateSpec
from repro.expr.expressions import Expr

_NODE_IDS = itertools.count(1)


def fresh_node_id() -> int:
    """Allocate a node id outside plan construction (e.g. for physical
    operators that have no logical counterpart, such as result sinks)."""
    return next(_NODE_IDS)


def ensure_node_ids_above(floor: int) -> None:
    """Advance the process-wide node-id counter past ``floor``.

    A plan pickled in one process and unpickled in another carries the
    *originating* process's node ids; before translating it, the
    receiving process must push its own counter past the largest
    imported id, or a ``fresh_node_id()`` (result sinks, partition
    scans) could collide with an imported node and corrupt the
    ``by_node_id`` map.  Worker processes call this on every received
    plan; it never moves the counter backwards.
    """
    global _NODE_IDS
    current = next(_NODE_IDS)
    _NODE_IDS = itertools.count(max(current, floor) + 1)

#: Maps an output column name to its base ``(table, column)`` when the
#: value flows through unchanged from a scan.
Origins = Dict[str, Tuple[str, str]]


class LogicalNode:
    """Base class for logical plan operators."""

    def __init__(self, children: Sequence["LogicalNode"], schema: Schema,
                 column_origins: Origins):
        self.node_id: int = next(_NODE_IDS)
        self.children: Tuple["LogicalNode", ...] = tuple(children)
        self.schema = schema
        self.column_origins = dict(column_origins)

    @property
    def is_stateful(self) -> bool:
        """Joins and group-bys buffer state usable as AIP sets."""
        return False

    def walk(self) -> Iterator["LogicalNode"]:
        """Every node in the DAG rooted here, each exactly once.

        Plans are usually trees, but shared subexpressions (the magic
        sets rewriting shares the outer query between the final join
        and the filter-set computation) make them DAGs.
        """
        seen = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if node.node_id in seen:
                continue
            seen.add(node.node_id)
            yield node
            stack.extend(node.children)

    def find(self, node_id: int) -> Optional["LogicalNode"]:
        for node in self.walk():
            if node.node_id == node_id:
                return node
        return None

    def describe(self, indent: int = 0) -> str:
        """Multi-line, indented rendering of the subtree."""
        lines = ["  " * indent + self._label()]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return "%s(id=%d)" % (type(self).__name__, self.node_id)


class Scan(LogicalNode):
    """Stream a base table, optionally renaming attributes.

    Renaming serves table aliases: the paper's running example scans
    PARTSUPP twice (PS1, PS2), and the Q2 variants scan LINEITEM twice.
    ``site`` marks which simulated site owns the data (None = local);
    the distributed experiments place PARTSUPP remotely.  ``partition``
    (a :class:`~repro.distributed.site.PartitionSpec`) marks the table
    as hash/range partitioned across several sites instead; translation
    then fans the scan out into one physical scan per partition, and
    ``broadcast_fanout`` (set by the coordinator's join analysis) is the
    number of partition destinations each row must additionally reach
    when this side of a non-co-partitioned join is broadcast.
    """

    def __init__(
        self,
        table_name: str,
        schema: Schema,
        renames: Optional[Dict[str, str]] = None,
        site: Optional[str] = None,
        partition=None,
    ):
        renames = dict(renames or {})
        out_schema = schema.renamed(renames) if renames else schema
        origins: Origins = {}
        for attr in schema:
            out_name = renames.get(attr.name, attr.name)
            origins[out_name] = (table_name, attr.name)
        super().__init__((), out_schema, origins)
        self.table_name = table_name
        self.renames = renames
        self.site = site
        self.partition = partition
        self.broadcast_fanout = 1

    def _label(self) -> str:
        alias = " renames=%s" % self.renames if self.renames else ""
        site = " @%s" % self.site if self.site else ""
        if self.partition is not None:
            site = " @%s[%d]" % (
                "|".join(self.partition.sites), self.partition.n_partitions,
            )
        return "Scan(%s%s%s) #%d" % (self.table_name, alias, site, self.node_id)


class Filter(LogicalNode):
    """Select rows satisfying a predicate."""

    def __init__(self, child: LogicalNode, predicate: Expr):
        missing = predicate.columns() - set(child.schema.names)
        if missing:
            raise PlanError(
                "filter references columns %s absent from input %s"
                % (sorted(missing), child.schema.names)
            )
        super().__init__((child,), child.schema, child.column_origins)
        self.predicate = predicate

    @property
    def child(self) -> LogicalNode:
        return self.children[0]

    def _label(self) -> str:
        return "Filter(%r) #%d" % (self.predicate, self.node_id)


class Project(LogicalNode):
    """Compute output columns ``name := expr`` from the input.

    Plain column passthroughs keep their base-table origin; computed
    columns do not (their distinct counts are estimated, not traced).
    """

    def __init__(self, child: LogicalNode, outputs: Sequence[Tuple[str, Expr]]):
        if not outputs:
            raise PlanError("projection must produce at least one column")
        from repro.data.schema import Attribute
        from repro.expr.expressions import Col

        attrs = []
        origins: Origins = {}
        for name, expr in outputs:
            missing = expr.columns() - set(child.schema.names)
            if missing:
                raise PlanError(
                    "projection of %r references missing columns %s"
                    % (name, sorted(missing))
                )
            attrs.append(Attribute(name, expr.result_type(child.schema)))
            if isinstance(expr, Col) and expr.name in child.column_origins:
                origins[name] = child.column_origins[expr.name]
        super().__init__((child,), Schema(attrs), origins)
        self.outputs: Tuple[Tuple[str, Expr], ...] = tuple(outputs)

    @property
    def child(self) -> LogicalNode:
        return self.children[0]

    def _label(self) -> str:
        return "Project(%s) #%d" % (
            ", ".join(name for name, _ in self.outputs), self.node_id,
        )


class Join(LogicalNode):
    """Pipelined (symmetric) hash equi-join with optional residual.

    ``left_keys[i]`` is matched with ``right_keys[i]``; ``residual`` is
    any extra predicate evaluated over the concatenated row after a hash
    match (this is where Table I conditions like
    ``2 * ps_supplycost < p_retailprice`` live when they span inputs).
    """

    def __init__(
        self,
        left: LogicalNode,
        right: LogicalNode,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        residual: Optional[Expr] = None,
    ):
        if len(left_keys) != len(right_keys) or not left_keys:
            raise PlanError("join needs equal, non-empty key lists")
        for k in left_keys:
            if k not in left.schema:
                raise PlanError("join key %r missing from left input" % k)
        for k in right_keys:
            if k not in right.schema:
                raise PlanError("join key %r missing from right input" % k)
        overlap = set(left.schema.names) & set(right.schema.names)
        if overlap:
            raise PlanError(
                "join inputs share column names %s; rename at scan time"
                % sorted(overlap)
            )
        schema = left.schema.concat(right.schema)
        if residual is not None:
            missing = residual.columns() - set(schema.names)
            if missing:
                raise PlanError(
                    "join residual references missing columns %s"
                    % sorted(missing)
                )
        origins: Origins = {}
        origins.update(left.column_origins)
        origins.update(right.column_origins)
        super().__init__((left, right), schema, origins)
        self.left_keys: Tuple[str, ...] = tuple(left_keys)
        self.right_keys: Tuple[str, ...] = tuple(right_keys)
        self.residual = residual

    @property
    def left(self) -> LogicalNode:
        return self.children[0]

    @property
    def right(self) -> LogicalNode:
        return self.children[1]

    @property
    def is_stateful(self) -> bool:
        return True

    def key_pairs(self) -> List[Tuple[str, str]]:
        return list(zip(self.left_keys, self.right_keys))

    def _label(self) -> str:
        pairs = ", ".join("%s=%s" % p for p in self.key_pairs())
        res = " residual=%r" % self.residual if self.residual is not None else ""
        return "Join(%s%s) #%d" % (pairs, res, self.node_id)


class GroupBy(LogicalNode):
    """Hash aggregation: blocking, stateful.

    Output schema is the key columns followed by aggregate columns.
    """

    def __init__(
        self,
        child: LogicalNode,
        keys: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ):
        if not aggregates and not keys:
            raise PlanError("group-by needs keys or aggregates")
        from repro.data.schema import Attribute

        attrs = []
        origins: Origins = {}
        for k in keys:
            if k not in child.schema:
                raise PlanError("group-by key %r missing from input" % k)
            attrs.append(child.schema.attribute(k))
            if k in child.column_origins:
                origins[k] = child.column_origins[k]
        seen = {a.name for a in attrs}
        for spec in aggregates:
            if spec.input is not None:
                missing = spec.input.columns() - set(child.schema.names)
                if missing:
                    raise PlanError(
                        "aggregate %r references missing columns %s"
                        % (spec.output_name, sorted(missing))
                    )
            if spec.output_name in seen:
                raise PlanError("duplicate output column %r" % spec.output_name)
            seen.add(spec.output_name)
            attrs.append(Attribute(spec.output_name, spec.result_type(child.schema)))
        super().__init__((child,), Schema(attrs), origins)
        self.keys: Tuple[str, ...] = tuple(keys)
        self.aggregates: Tuple[AggregateSpec, ...] = tuple(aggregates)

    @property
    def child(self) -> LogicalNode:
        return self.children[0]

    @property
    def is_stateful(self) -> bool:
        return True

    def _label(self) -> str:
        aggs = ", ".join(
            "%s(%s)" % (s.func, s.output_name) for s in self.aggregates
        )
        return "GroupBy(keys=%s; %s) #%d" % (list(self.keys), aggs, self.node_id)


class SemiJoin(LogicalNode):
    """Emit probe-side rows having a key match in the source side.

    Output schema is the probe side's schema only — the source exists
    purely as a filter.  This is the building block of the magic-sets
    baseline ("the subquery performs a logical semijoin ... between the
    subquery and the magic set", Section II) and of explicit Bloomjoin-
    style plans.
    """

    def __init__(
        self,
        probe: LogicalNode,
        source: LogicalNode,
        probe_keys: Sequence[str],
        source_keys: Sequence[str],
    ):
        if len(probe_keys) != len(source_keys) or not probe_keys:
            raise PlanError("semijoin needs equal, non-empty key lists")
        for k in probe_keys:
            if k not in probe.schema:
                raise PlanError("semijoin key %r missing from probe input" % k)
        for k in source_keys:
            if k not in source.schema:
                raise PlanError("semijoin key %r missing from source input" % k)
        super().__init__((probe, source), probe.schema, probe.column_origins)
        self.probe_keys: Tuple[str, ...] = tuple(probe_keys)
        self.source_keys: Tuple[str, ...] = tuple(source_keys)

    @property
    def probe(self) -> LogicalNode:
        return self.children[0]

    @property
    def source(self) -> LogicalNode:
        return self.children[1]

    @property
    def is_stateful(self) -> bool:
        return True

    def _label(self) -> str:
        pairs = ", ".join(
            "%s=%s" % p for p in zip(self.probe_keys, self.source_keys)
        )
        return "SemiJoin(%s) #%d" % (pairs, self.node_id)


class Distinct(LogicalNode):
    """Duplicate elimination over full rows; stateful (hash set of rows)."""

    def __init__(self, child: LogicalNode):
        super().__init__((child,), child.schema, child.column_origins)

    @property
    def child(self) -> LogicalNode:
        return self.children[0]

    @property
    def is_stateful(self) -> bool:
        return True

    def _label(self) -> str:
        return "Distinct #%d" % self.node_id
