"""Structural validation of logical plans.

Most invariants are enforced at node construction; :func:`validate_plan`
re-checks the whole plan (useful after rewrites such as magic sets) and
verifies global properties construction cannot check locally: plans may
be DAGs (shared subexpressions are how the magic-sets rewriting shares
the outer query) but must be acyclic.
"""

from __future__ import annotations

from repro.common.errors import PlanError
from repro.data.catalog import Catalog
from repro.plan.logical import (
    Distinct, Filter, GroupBy, Join, LogicalNode, Project, Scan, SemiJoin,
)


def validate_plan(root: LogicalNode, catalog: Catalog = None) -> None:
    """Raise :class:`PlanError` if the plan is malformed.

    With a catalog, scans are additionally checked against registered
    tables and their schemas.
    """
    _check_acyclic(root)
    for node in root.walk():
        _validate_node(node, catalog)


def _check_acyclic(root: LogicalNode) -> None:
    """DFS cycle detection over the plan DAG."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {}

    def visit(node: LogicalNode) -> None:
        state = colour.get(node.node_id, WHITE)
        if state == GREY:
            raise PlanError("plan contains a cycle through node #%d" % node.node_id)
        if state == BLACK:
            return
        colour[node.node_id] = GREY
        for child in node.children:
            visit(child)
        colour[node.node_id] = BLACK

    visit(root)


def _validate_node(node: LogicalNode, catalog) -> None:
    if isinstance(node, Scan):
        if catalog is not None:
            if not catalog.has_table(node.table_name):
                raise PlanError("scan of unknown table %r" % node.table_name)
            base = catalog.table(node.table_name).schema
            expected = base.renamed(node.renames) if node.renames else base
            if expected != node.schema:
                raise PlanError(
                    "scan schema for %r does not match catalog" % node.table_name
                )
        return

    if isinstance(node, Filter):
        missing = node.predicate.columns() - set(node.child.schema.names)
        if missing:
            raise PlanError("filter references %s" % sorted(missing))
        return

    if isinstance(node, Project):
        for name, expr in node.outputs:
            missing = expr.columns() - set(node.child.schema.names)
            if missing:
                raise PlanError(
                    "projection %r references %s" % (name, sorted(missing))
                )
        return

    if isinstance(node, Join):
        for k in node.left_keys:
            if k not in node.left.schema:
                raise PlanError("join key %r missing from left input" % k)
        for k in node.right_keys:
            if k not in node.right.schema:
                raise PlanError("join key %r missing from right input" % k)
        overlap = set(node.left.schema.names) & set(node.right.schema.names)
        if overlap:
            raise PlanError(
                "join inputs share column names %s; rename at scan time"
                % sorted(overlap)
            )
        return

    if isinstance(node, SemiJoin):
        for k in node.probe_keys:
            if k not in node.probe.schema:
                raise PlanError("semijoin key %r missing from probe input" % k)
        for k in node.source_keys:
            if k not in node.source.schema:
                raise PlanError("semijoin key %r missing from source input" % k)
        return

    if isinstance(node, GroupBy):
        for k in node.keys:
            if k not in node.child.schema:
                raise PlanError("group-by key %r missing from input" % k)
        return

    if isinstance(node, Distinct):
        return

    raise PlanError("unknown plan node type %s" % type(node).__name__)
