"""Logical query plans: bushy trees of scans, filters, joins, group-bys."""

from repro.plan.logical import (
    LogicalNode,
    Scan,
    Filter,
    Project,
    Join,
    GroupBy,
    Distinct,
)
from repro.plan.builder import PlanBuilder, scan
from repro.plan.validate import validate_plan

__all__ = [
    "LogicalNode", "Scan", "Filter", "Project", "Join", "GroupBy", "Distinct",
    "PlanBuilder", "scan", "validate_plan",
]
