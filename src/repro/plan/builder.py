"""Fluent construction of bushy logical plans.

The workload queries (Table I of the paper) are written against this
API; it reads approximately like the relational algebra in the paper's
Figure 1::

    avail = (
        scan(catalog, "partsupp", prefix="ps2_")
        .group_by(["ps2_ps_partkey"],
                  [AggregateSpec(SUM, col("ps2_ps_availqty"), "avail")])
    )
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

from repro.common.errors import PlanError
from repro.data.catalog import Catalog
from repro.expr.aggregates import AggregateSpec
from repro.expr.expressions import Col, Expr
from repro.plan.logical import (
    Distinct, Filter, GroupBy, Join, LogicalNode, Project, Scan, SemiJoin,
)


class PlanBuilder:
    """Wraps a logical node and offers chainable operator constructors."""

    __slots__ = ("node",)

    def __init__(self, node: LogicalNode):
        self.node = node

    def filter(self, predicate: Expr) -> "PlanBuilder":
        return PlanBuilder(Filter(self.node, predicate))

    def project(
        self, outputs: Sequence[Union[str, Tuple[str, Expr]]]
    ) -> "PlanBuilder":
        """Project to named columns; strings are passthroughs."""
        normalised = []
        for out in outputs:
            if isinstance(out, str):
                normalised.append((out, Col(out)))
            else:
                normalised.append(out)
        return PlanBuilder(Project(self.node, normalised))

    def join(
        self,
        other: Union["PlanBuilder", LogicalNode],
        on: Sequence[Tuple[str, str]],
        residual: Optional[Expr] = None,
    ) -> "PlanBuilder":
        """Equi-join with ``on`` = [(left_col, right_col), ...]."""
        right = other.node if isinstance(other, PlanBuilder) else other
        if not on:
            raise PlanError("join requires at least one key pair")
        left_keys = [lk for lk, _ in on]
        right_keys = [rk for _, rk in on]
        return PlanBuilder(
            Join(self.node, right, left_keys, right_keys, residual)
        )

    def semijoin(
        self,
        source: Union["PlanBuilder", LogicalNode],
        on: Sequence[Tuple[str, str]],
    ) -> "PlanBuilder":
        """Keep rows whose keys appear in ``source``;
        ``on`` = [(probe_col, source_col), ...]."""
        src = source.node if isinstance(source, PlanBuilder) else source
        if not on:
            raise PlanError("semijoin requires at least one key pair")
        probe_keys = [p for p, _ in on]
        source_keys = [s for _, s in on]
        return PlanBuilder(SemiJoin(self.node, src, probe_keys, source_keys))

    def group_by(
        self, keys: Sequence[str], aggregates: Sequence[AggregateSpec]
    ) -> "PlanBuilder":
        return PlanBuilder(GroupBy(self.node, keys, aggregates))

    def distinct(self) -> "PlanBuilder":
        return PlanBuilder(Distinct(self.node))

    def build(self) -> LogicalNode:
        return self.node


def scan(
    catalog: Catalog,
    table_name: str,
    renames: Optional[Dict[str, str]] = None,
    prefix: Optional[str] = None,
    site: Optional[str] = None,
) -> PlanBuilder:
    """Start a plan from a base-table scan.

    ``prefix`` renames *every* column with a prefix (a table alias);
    ``renames`` renames selected columns.  They may not be combined.
    """
    if prefix is not None and renames is not None:
        raise PlanError("use either prefix or renames, not both")
    schema = catalog.table(table_name).schema
    if prefix is not None:
        renames = {name: prefix + name for name in schema.names}
    return PlanBuilder(Scan(table_name, schema, renames=renames, site=site))
