"""Bloom filters.

The paper's implementation "only employs Bloom filters ... our Bloom
filters use one hash function and are sized for a 5% false positive
rate" (Section VI).  We default to the same configuration but support
multiple hash functions for the ablation benchmarks.

Filters of equal geometry (bit count, hash count, seed) can be merged:
bitwise **intersection** tightens two filters over the same key to
their common values (used by the AIP Registry when several completed
subexpressions constrain the same attribute), and **union** combines
filters built over partitions of the same relation.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Optional

from repro.summaries.base import Summary

#: Paper configuration: one hash function, 5% target false positives.
DEFAULT_FP_RATE = 0.05
DEFAULT_HASH_COUNT = 1

_MIN_BITS = 64


def bits_for(expected_items: int, fp_rate: float, hash_count: int) -> int:
    """Bit-array size for ``expected_items`` at ``fp_rate``.

    For ``k`` hash functions the false-positive probability after
    inserting ``n`` items into ``m`` bits is ``(1 - e^(-kn/m))^k``;
    solving for ``m`` with ``k`` fixed gives the formula below.  With
    the paper's ``k = 1`` this reduces to ``m ≈ n / fp_rate``.
    """
    if expected_items <= 0:
        return _MIN_BITS
    if not 0 < fp_rate < 1:
        raise ValueError("fp_rate must be in (0, 1), got %r" % fp_rate)
    per_hash = fp_rate ** (1.0 / hash_count)
    m = -hash_count * expected_items / math.log(1.0 - per_hash)
    return max(_MIN_BITS, int(math.ceil(m)))


class BloomFilter(Summary):
    """A classic Bloom filter over hashable values.

    The bit array is a Python ``int`` used as a bitset; bitwise AND/OR
    give constant-simplicity intersection and union.
    """

    __slots__ = ("n_bits", "n_hashes", "seed", "_bits", "n_added")

    def __init__(
        self,
        expected_items: int,
        fp_rate: float = DEFAULT_FP_RATE,
        n_hashes: int = DEFAULT_HASH_COUNT,
        seed: int = 0,
        n_bits: Optional[int] = None,
    ):
        """Size for ``expected_items`` at ``fp_rate``, or use an explicit
        ``n_bits`` geometry (needed when two filters built from different
        cardinalities must be merge-compatible)."""
        if n_hashes < 1:
            raise ValueError("need at least one hash function")
        self.n_bits = (
            n_bits if n_bits is not None
            else bits_for(expected_items, fp_rate, n_hashes)
        )
        if self.n_bits < 1:
            raise ValueError("n_bits must be positive")
        self.n_hashes = n_hashes
        self.seed = seed
        self._bits = 0
        self.n_added = 0

    @classmethod
    def from_values(
        cls,
        values: Iterable[Hashable],
        fp_rate: float = DEFAULT_FP_RATE,
        n_hashes: int = DEFAULT_HASH_COUNT,
        seed: int = 0,
        expected_items: Optional[int] = None,
    ) -> "BloomFilter":
        values = list(values) if expected_items is None else values
        n = expected_items if expected_items is not None else len(values)
        bloom = cls(n, fp_rate=fp_rate, n_hashes=n_hashes, seed=seed)
        for v in values:
            bloom.add(v)
        return bloom

    def _positions(self, value: Hashable):
        from repro.common.hashing import stable_key

        key = stable_key(value)
        for i in range(self.n_hashes):
            yield hash((self.seed, i, key)) % self.n_bits

    def add(self, value: Hashable) -> None:
        for pos in self._positions(value):
            self._bits |= 1 << pos
        self.n_added += 1

    def might_contain(self, value: Hashable) -> bool:
        for pos in self._positions(value):
            if not (self._bits >> pos) & 1:
                return False
        return True

    def byte_size(self) -> int:
        return self.n_bits // 8 + 1

    @property
    def fill_fraction(self) -> float:
        """Fraction of bits set; the expected FP rate with one hash."""
        return bin(self._bits).count("1") / self.n_bits

    def compatible_with(self, other: "BloomFilter") -> bool:
        """True when the two filters share geometry and hash family,
        the precondition the paper states for bitwise merging."""
        return (
            self.n_bits == other.n_bits
            and self.n_hashes == other.n_hashes
            and self.seed == other.seed
        )

    def intersect(self, other: "BloomFilter") -> "BloomFilter":
        """Bitwise intersection: superset of the true value intersection."""
        if not self.compatible_with(other):
            raise ValueError("cannot intersect incompatible Bloom filters")
        merged = BloomFilter.__new__(BloomFilter)
        merged.n_bits = self.n_bits
        merged.n_hashes = self.n_hashes
        merged.seed = self.seed
        merged._bits = self._bits & other._bits
        merged.n_added = min(self.n_added, other.n_added)
        return merged

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Bitwise union: exactly the filter of the value union."""
        if not self.compatible_with(other):
            raise ValueError("cannot union incompatible Bloom filters")
        merged = BloomFilter.__new__(BloomFilter)
        merged.n_bits = self.n_bits
        merged.n_hashes = self.n_hashes
        merged.seed = self.seed
        merged._bits = self._bits | other._bits
        merged.n_added = self.n_added + other.n_added
        return merged

    def __repr__(self) -> str:
        return "BloomFilter(bits=%d, hashes=%d, added=%d)" % (
            self.n_bits, self.n_hashes, self.n_added,
        )
