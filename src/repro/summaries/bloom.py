"""Bloom filters.

The paper's implementation "only employs Bloom filters ... our Bloom
filters use one hash function and are sized for a 5% false positive
rate" (Section VI).  We default to the same configuration but support
multiple hash functions for the ablation benchmarks.

Filters of equal geometry (bit count, hash count, seed) can be merged:
bitwise **intersection** tightens two filters over the same key to
their common values (used by the AIP Registry when several completed
subexpressions constrain the same attribute), and **union** combines
filters built over partitions of the same relation.

Storage layout
--------------

:class:`BloomFilter` keeps its bits in a flat ``array('Q')`` of 64-bit
words — bit ``pos`` lives at ``words[pos >> 6], 1 << (pos & 63)`` — so
``add`` and ``might_contain`` touch one machine word instead of
shifting one Python big int of ``n_bits`` bits (which copies the whole
bit array per operation, making builds quadratic).  Bit *positions* are
unchanged from the original big-int layout: ``bits_as_int()`` of the
word array equals the big int the original implementation would hold,
which the equivalence suite and :class:`BigIntBloomFilter` (the
retained reference implementation) verify bit-for-bit.

Filters cross process boundaries in the distributed simulation by
value: :meth:`to_payload` / :meth:`from_payload` serialize geometry
plus the little-endian word buffer, and both implementations speak the
same wire format.
"""

from __future__ import annotations

import math
import sys
from array import array
from contextlib import contextmanager
from typing import Hashable, Iterable, List, Optional

from repro.common.hashing import stable_key
from repro.summaries.base import Summary

#: Paper configuration: one hash function, 5% target false positives.
DEFAULT_FP_RATE = 0.05
DEFAULT_HASH_COUNT = 1

_MIN_BITS = 64


def bits_for(expected_items: int, fp_rate: float, hash_count: int) -> int:
    """Bit-array size for ``expected_items`` at ``fp_rate``.

    For ``k`` hash functions the false-positive probability after
    inserting ``n`` items into ``m`` bits is ``(1 - e^(-kn/m))^k``;
    solving for ``m`` with ``k`` fixed gives the formula below.  With
    the paper's ``k = 1`` this reduces to ``m ≈ n / fp_rate``.
    """
    if expected_items <= 0:
        return _MIN_BITS
    if not 0 < fp_rate < 1:
        raise ValueError("fp_rate must be in (0, 1), got %r" % fp_rate)
    per_hash = fp_rate ** (1.0 / hash_count)
    m = -hash_count * expected_items / math.log(1.0 - per_hash)
    return max(_MIN_BITS, int(math.ceil(m)))


class BloomFilter(Summary):
    """A classic Bloom filter over hashable values.

    The bit array is a flat ``array('Q')`` word buffer; word-wise
    AND/OR give linear-in-words intersection and union, and single-bit
    operations touch exactly one word.
    """

    __slots__ = ("n_bits", "n_hashes", "seed", "_words", "n_added")

    def __init__(
        self,
        expected_items: int,
        fp_rate: float = DEFAULT_FP_RATE,
        n_hashes: int = DEFAULT_HASH_COUNT,
        seed: int = 0,
        n_bits: Optional[int] = None,
    ):
        """Size for ``expected_items`` at ``fp_rate``, or use an explicit
        ``n_bits`` geometry (needed when two filters built from different
        cardinalities must be merge-compatible)."""
        if n_hashes < 1:
            raise ValueError("need at least one hash function")
        self.n_bits = (
            n_bits if n_bits is not None
            else bits_for(expected_items, fp_rate, n_hashes)
        )
        if self.n_bits < 1:
            raise ValueError("n_bits must be positive")
        self.n_hashes = n_hashes
        self.seed = seed
        self._init_storage()
        self.n_added = 0

    def _init_storage(self) -> None:
        self._words = array("Q", bytes(8 * ((self.n_bits + 63) >> 6)))

    @classmethod
    def from_values(
        cls,
        values: Iterable[Hashable],
        fp_rate: float = DEFAULT_FP_RATE,
        n_hashes: int = DEFAULT_HASH_COUNT,
        seed: int = 0,
        expected_items: Optional[int] = None,
    ) -> "BloomFilter":
        values = list(values) if expected_items is None else values
        n = expected_items if expected_items is not None else len(values)
        bloom = cls(n, fp_rate=fp_rate, n_hashes=n_hashes, seed=seed)
        bloom.add_many(values)
        return bloom

    def _positions(self, value: Hashable):
        key = stable_key(value)
        for i in range(self.n_hashes):
            yield hash((self.seed, i, key)) % self.n_bits

    def add(self, value: Hashable) -> None:
        words = self._words
        n_bits = self.n_bits
        seed = self.seed
        if self.n_hashes == 1:
            pos = hash((seed, 0, stable_key(value))) % n_bits
            words[pos >> 6] |= 1 << (pos & 63)
        else:
            key = stable_key(value)
            for i in range(self.n_hashes):
                pos = hash((seed, i, key)) % n_bits
                words[pos >> 6] |= 1 << (pos & 63)
        self.n_added += 1

    def add_many(self, values: Iterable[Hashable]) -> None:
        words = self._words
        n_bits = self.n_bits
        seed = self.seed
        n = 0
        if self.n_hashes == 1:
            for value in values:
                pos = hash((seed, 0, stable_key(value))) % n_bits
                words[pos >> 6] |= 1 << (pos & 63)
                n += 1
        else:
            n_hashes = self.n_hashes
            for value in values:
                key = stable_key(value)
                for i in range(n_hashes):
                    pos = hash((seed, i, key)) % n_bits
                    words[pos >> 6] |= 1 << (pos & 63)
                n += 1
        self.n_added += n

    def might_contain(self, value: Hashable) -> bool:
        words = self._words
        n_bits = self.n_bits
        seed = self.seed
        if self.n_hashes == 1:
            pos = hash((seed, 0, stable_key(value))) % n_bits
            return bool((words[pos >> 6] >> (pos & 63)) & 1)
        key = stable_key(value)
        for i in range(self.n_hashes):
            pos = hash((seed, i, key)) % n_bits
            if not (words[pos >> 6] >> (pos & 63)) & 1:
                return False
        return True

    def might_contain_many(self, values: Iterable[Hashable]) -> List[bool]:
        words = self._words
        n_bits = self.n_bits
        seed = self.seed
        if self.n_hashes == 1:
            return [
                (words[pos >> 6] >> (pos & 63)) & 1 == 1
                for pos in (
                    hash((seed, 0, stable_key(v))) % n_bits for v in values
                )
            ]
        mc = self.might_contain
        return [mc(v) for v in values]

    def byte_size(self) -> int:
        return self.n_bits // 8 + 1

    def bits_as_int(self) -> int:
        """The bit array as one big int — the original storage layout;
        used by merge/equivalence checks, never on the hot path."""
        words = self._words
        if sys.byteorder != "little":  # pragma: no cover - BE hosts
            words = array("Q", words)
            words.byteswap()
        return int.from_bytes(words.tobytes(), "little")

    @property
    def fill_fraction(self) -> float:
        """Fraction of bits set; the expected FP rate with one hash.

        Per-word popcount — the big-int form (``bin(bits).count("1")``)
        materialised an ``n_bits``-character string per call, which the
        FP-rate ablation invokes at multi-megabit geometries.
        """
        return sum(word.bit_count() for word in self._words) / self.n_bits

    def compatible_with(self, other: "BloomFilter") -> bool:
        """True when the two filters share geometry and hash family,
        the precondition the paper states for bitwise merging."""
        return (
            self.n_bits == other.n_bits
            and self.n_hashes == other.n_hashes
            and self.seed == other.seed
        )

    def _merge_blank(self) -> "BloomFilter":
        merged = type(self).__new__(type(self))
        merged.n_bits = self.n_bits
        merged.n_hashes = self.n_hashes
        merged.seed = self.seed
        return merged

    def intersect(self, other: "BloomFilter") -> "BloomFilter":
        """Bitwise intersection: superset of the true value intersection."""
        if not self.compatible_with(other):
            raise ValueError("cannot intersect incompatible Bloom filters")
        merged = self._merge_blank()
        theirs = other._word_view()
        merged._words = array(
            "Q", (a & b for a, b in zip(self._words, theirs))
        )
        merged.n_added = min(self.n_added, other.n_added)
        return merged

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Bitwise union: exactly the filter of the value union."""
        if not self.compatible_with(other):
            raise ValueError("cannot union incompatible Bloom filters")
        merged = self._merge_blank()
        theirs = other._word_view()
        merged._words = array(
            "Q", (a | b for a, b in zip(self._words, theirs))
        )
        merged.n_added = self.n_added + other.n_added
        return merged

    def _word_view(self) -> array:
        """This filter's bits as an ``array('Q')`` (merge interchange)."""
        return self._words

    # -- wire format (distributed shipping) -----------------------------

    def to_payload(self) -> dict:
        """Geometry plus the little-endian word buffer; both storage
        implementations produce and accept the same format."""
        words = self._words
        if sys.byteorder != "little":  # pragma: no cover - BE hosts
            words = array("Q", words)
            words.byteswap()
        return {
            "kind": "bloom",
            "n_bits": self.n_bits,
            "n_hashes": self.n_hashes,
            "seed": self.seed,
            "n_added": self.n_added,
            "words": words.tobytes(),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "BloomFilter":
        if payload.get("kind") != "bloom":
            raise ValueError("not a Bloom filter payload")
        if payload["n_bits"] < 1 or payload["n_hashes"] < 1:
            raise ValueError("invalid Bloom filter geometry")
        # Bypass __init__: it would zero-fill a word buffer only for
        # _load_words to replace it — dead work at paper-scale sizes.
        bloom = cls.__new__(cls)
        bloom.n_bits = payload["n_bits"]
        bloom.n_hashes = payload["n_hashes"]
        bloom.seed = payload["seed"]
        bloom._load_words(payload["words"])
        bloom.n_added = payload["n_added"]
        return bloom

    def _load_words(self, raw: bytes) -> None:
        words = array("Q", raw)
        if sys.byteorder != "little":  # pragma: no cover - BE hosts
            words.byteswap()
        if len(words) != (self.n_bits + 63) >> 6:
            raise ValueError("payload does not match filter geometry")
        self._words = words

    def __repr__(self) -> str:
        return "%s(bits=%d, hashes=%d, added=%d)" % (
            type(self).__name__, self.n_bits, self.n_hashes, self.n_added,
        )


class BigIntBloomFilter(BloomFilter):
    """The original big-int-bitset implementation, kept as the reference
    the word-indexed filter is checked against.

    Bit positions, merge results, ``byte_size`` and ``n_added``
    bookkeeping are identical to :class:`BloomFilter`; only the storage
    differs (one Python int, so every ``add`` copies the whole bit
    array).  The equivalence suite runs entire workloads under this
    class via :func:`bloom_impl` and demands bit-identical metrics.
    """

    __slots__ = ("_bits",)

    def _init_storage(self) -> None:
        self._bits = 0

    def add(self, value: Hashable) -> None:
        for pos in self._positions(value):
            self._bits |= 1 << pos
        self.n_added += 1

    def add_many(self, values: Iterable[Hashable]) -> None:
        n = 0
        for value in values:
            for pos in self._positions(value):
                self._bits |= 1 << pos
            n += 1
        self.n_added += n

    def might_contain(self, value: Hashable) -> bool:
        for pos in self._positions(value):
            if not (self._bits >> pos) & 1:
                return False
        return True

    def might_contain_many(self, values: Iterable[Hashable]) -> List[bool]:
        mc = self.might_contain
        return [mc(v) for v in values]

    def bits_as_int(self) -> int:
        return self._bits

    @property
    def fill_fraction(self) -> float:
        return bin(self._bits).count("1") / self.n_bits

    def _word_view(self) -> array:
        n_words = (self.n_bits + 63) >> 6
        words = array("Q", self._bits.to_bytes(8 * n_words, "little"))
        if sys.byteorder != "little":  # pragma: no cover - BE hosts
            words.byteswap()
        return words

    def intersect(self, other: "BloomFilter") -> "BloomFilter":
        if not self.compatible_with(other):
            raise ValueError("cannot intersect incompatible Bloom filters")
        merged = self._merge_blank()
        merged._bits = self._bits & other.bits_as_int()
        merged.n_added = min(self.n_added, other.n_added)
        return merged

    def union(self, other: "BloomFilter") -> "BloomFilter":
        if not self.compatible_with(other):
            raise ValueError("cannot union incompatible Bloom filters")
        merged = self._merge_blank()
        merged._bits = self._bits | other.bits_as_int()
        merged.n_added = self.n_added + other.n_added
        return merged

    def to_payload(self) -> dict:
        n_words = (self.n_bits + 63) >> 6
        return {
            "kind": "bloom",
            "n_bits": self.n_bits,
            "n_hashes": self.n_hashes,
            "seed": self.seed,
            "n_added": self.n_added,
            "words": self._bits.to_bytes(8 * n_words, "little"),
        }

    def _load_words(self, raw: bytes) -> None:
        if len(raw) != 8 * ((self.n_bits + 63) >> 6):
            raise ValueError("payload does not match filter geometry")
        self._bits = int.from_bytes(raw, "little")


#: The Bloom implementation new AIP-set specs instantiate.  Swapped to
#: the big-int reference by the equivalence suite; production code never
#: changes it.
_ACTIVE_IMPL: List[type] = [BloomFilter]


def active_bloom_impl() -> type:
    return _ACTIVE_IMPL[0]


@contextmanager
def bloom_impl(cls: type):
    """Temporarily make ``cls`` the implementation behind every newly
    built AIP-set summary (see ``AIPSetSpec.new_summary``)."""
    prev = _ACTIVE_IMPL[0]
    _ACTIVE_IMPL[0] = cls
    try:
        yield
    finally:
        _ACTIVE_IMPL[0] = prev
