"""Common interface for AIP summary structures.

An AIP set summarises the values of one key attribute of a completed
subexpression.  Probes may return *false positives* (a value reported
present that was never added) but must never return false negatives —
the correctness argument in Section III-B of the paper depends on
exactly this property: ``E_Pu ▷θ E_A`` returns a superset of the true
semijoin ``E_Pu ⋉ E_A``.
"""

from __future__ import annotations

import abc
from typing import Hashable, Iterable, List


class Summary(abc.ABC):
    """Abstract superset-preserving membership summary."""

    @abc.abstractmethod
    def add(self, value: Hashable) -> None:
        """Record a value as present."""

    @abc.abstractmethod
    def might_contain(self, value: Hashable) -> bool:
        """True if ``value`` may have been added (no false negatives)."""

    def add_many(self, values: Iterable[Hashable]) -> None:
        """Record a batch of values; must leave the summary in exactly
        the state ``add`` called per element would.  Subclasses override
        with bodies that hoist hashing and bookkeeping out of the loop."""
        for v in values:
            self.add(v)

    def might_contain_many(self, values: Iterable[Hashable]) -> List[bool]:
        """Batch membership probe, one verdict per value in order;
        element-wise identical to ``might_contain``."""
        mc = self.might_contain
        return [mc(v) for v in values]

    @abc.abstractmethod
    def byte_size(self) -> int:
        """Approximate memory footprint, for state accounting and for
        the distributed cost model (filters are shipped by size)."""

    def __contains__(self, value: Hashable) -> bool:
        return self.might_contain(value)
