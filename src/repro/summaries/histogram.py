"""Equi-width histogram summaries.

Section III-C notes that range conditions "are in principle simple to
implement, but in practice they are expensive to evaluate because they
may require more expensive summary structures, such as histograms".
We provide the structure so that range-correlated AIP can be exercised
and ablated, even though — like the paper — the default AIP pipeline
sticks to equality conditions and Bloom filters.
"""

from __future__ import annotations

import math

from typing import Iterable, List, Optional, Union

from repro.summaries.base import Summary

Number = Union[int, float]


class HistogramSummary(Summary):
    """Bucketised presence summary over a numeric domain.

    Values outside the configured domain are clamped into the edge
    buckets, preserving the no-false-negative guarantee.
    """

    __slots__ = ("lo", "hi", "n_buckets", "_counts", "n_added")

    def __init__(self, lo: Number, hi: Number, n_buckets: int = 64):
        if hi <= lo:
            raise ValueError("histogram domain must satisfy lo < hi")
        if n_buckets < 1:
            raise ValueError("need at least one bucket")
        self.lo = float(lo)
        self.hi = float(hi)
        self.n_buckets = n_buckets
        self._counts: List[int] = [0] * n_buckets
        self.n_added = 0

    @classmethod
    def from_values(
        cls,
        values: Iterable[Number],
        lo: Optional[Number] = None,
        hi: Optional[Number] = None,
        n_buckets: int = 64,
    ) -> "HistogramSummary":
        materialised = list(values)
        if not materialised and (lo is None or hi is None):
            raise ValueError("cannot infer domain from empty values")
        lo = min(materialised) if lo is None else lo
        hi = max(materialised) if hi is None else hi
        if hi <= lo:
            # Widen a degenerate domain; the relative term keeps the
            # widening representable at float magnitudes where lo + 1.0
            # would round back to lo.
            hi = lo + max(1.0, abs(float(lo)) * 1e-9)
            if hi <= lo:
                hi = math.nextafter(float(lo), math.inf)
        hist = cls(lo, hi, n_buckets)
        hist.add_many(materialised)
        return hist

    def _bucket_of(self, value: Number) -> int:
        frac = (float(value) - self.lo) / (self.hi - self.lo)
        bucket = int(frac * self.n_buckets)
        return min(max(bucket, 0), self.n_buckets - 1)

    def add(self, value: Number) -> None:
        self._counts[self._bucket_of(value)] += 1
        self.n_added += 1

    def add_many(self, values: Iterable[Number]) -> None:
        counts = self._counts
        lo = self.lo
        span = self.hi - self.lo
        n_buckets = self.n_buckets
        top = n_buckets - 1
        n = 0
        for value in values:
            bucket = int((float(value) - lo) / span * n_buckets)
            counts[min(max(bucket, 0), top)] += 1
            n += 1
        self.n_added += n

    def might_contain(self, value: Number) -> bool:
        return self._counts[self._bucket_of(value)] > 0

    def might_contain_many(self, values: Iterable[Number]) -> List[bool]:
        counts = self._counts
        lo = self.lo
        span = self.hi - self.lo
        n_buckets = self.n_buckets
        top = n_buckets - 1
        return [
            counts[min(max(int((float(v) - lo) / span * n_buckets), 0), top)]
            > 0
            for v in values
        ]

    def might_overlap(self, lo: Number, hi: Number) -> bool:
        """True if any value in ``[lo, hi]`` may be present."""
        if hi < lo:
            return False
        first = self._bucket_of(lo)
        last = self._bucket_of(hi)
        return any(self._counts[b] > 0 for b in range(first, last + 1))

    def bucket_count(self, bucket: int) -> int:
        return self._counts[bucket]

    def byte_size(self) -> int:
        return 32 + self.n_buckets * 8

    def __repr__(self) -> str:
        return "HistogramSummary([%g, %g], buckets=%d, added=%d)" % (
            self.lo, self.hi, self.n_buckets, self.n_added,
        )
