"""Order-based summaries for range-condition information passing.

Section III-C of the paper: "Range conditions and complex disjunctive
expressions are in principle simple to implement, but in practice they
are expensive to evaluate because they may require more expensive
summary structures."  The cheapest sound structure for a single
inequality is a *bound*: if the completed side's values are known, a
tuple on the other side can be discarded when the inequality cannot
hold against **any** of them.

For ``A < B`` (A still streaming, B complete) the filter keeps rows
with ``A < max(B)``; for ``A > B`` rows with ``A > min(B)``; the
non-strict variants analogously.  No false negatives: a discarded row
fails the inequality against every possible partner.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.summaries.base import Summary

_OPS = ("<", "<=", ">", ">=")


class MinMaxSummary:
    """Running minimum and maximum of a value stream."""

    __slots__ = ("min", "max", "count")

    def __init__(self):
        self.min = None
        self.max = None
        self.count = 0

    def add(self, value) -> None:
        if value is None:
            return
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.count += 1

    def add_many(self, values: Iterable) -> int:
        """Fold a batch into the running bounds in one streaming pass
        (O(1) memory — ``values`` may be a huge state iterator); returns
        the number of values consumed (including ``None`` entries, which
        the bounds themselves skip) so callers can charge per value
        scanned."""
        lo = self.min
        hi = self.max
        present = 0
        n = 0
        for v in values:
            n += 1
            if v is None:
                continue
            if lo is None or v < lo:
                lo = v
            if hi is None or v > hi:
                hi = v
            present += 1
        self.min = lo
        self.max = hi
        self.count += present
        return n

    @classmethod
    def from_values(cls, values: Iterable) -> "MinMaxSummary":
        s = cls()
        s.add_many(values)
        return s

    def byte_size(self) -> int:
        return 32

    def __repr__(self) -> str:
        return "MinMaxSummary(%r..%r, n=%d)" % (self.min, self.max, self.count)


class BoundSummary(Summary):
    """Membership = "the inequality ``value <op> bound`` can hold".

    Built from a completed side's min/max; pluggable wherever a Bloom
    filter goes (the engine's injected-filter mechanism only requires
    ``might_contain``).
    """

    __slots__ = ("op", "bound")

    def __init__(self, op: str, bound):
        if op not in _OPS:
            raise ValueError("unsupported bound operator %r" % op)
        self.op = op
        self.bound = bound

    @classmethod
    def for_predicate(cls, op: str, other_side: MinMaxSummary) -> Optional["BoundSummary"]:
        """The filter for streaming values ``A`` under ``A <op> B`` when
        the ``B`` side is summarised by ``other_side``.  Returns None
        when the completed side was empty (nothing can ever match, but
        emptiness is better handled by the equality filters)."""
        if other_side.count == 0:
            return None
        if op in ("<", "<="):
            return cls(op, other_side.max)
        return cls(op, other_side.min)

    def add(self, value) -> None:  # pragma: no cover - bounds are static
        raise TypeError("BoundSummary is immutable")

    def add_many(self, values) -> None:  # pragma: no cover - static
        raise TypeError("BoundSummary is immutable")

    def might_contain(self, value) -> bool:
        if value is None:
            return True
        if self.op == "<":
            return value < self.bound
        if self.op == "<=":
            return value <= self.bound
        if self.op == ">":
            return value > self.bound
        return value >= self.bound

    def might_contain_many(self, values) -> list:
        """One comparison per value with the operator dispatched once
        per batch instead of once per probe."""
        bound = self.bound
        op = self.op
        if op == "<":
            return [v is None or v < bound for v in values]
        if op == "<=":
            return [v is None or v <= bound for v in values]
        if op == ">":
            return [v is None or v > bound for v in values]
        return [v is None or v >= bound for v in values]

    def byte_size(self) -> int:
        return 16

    def __repr__(self) -> str:
        return "BoundSummary(x %s %r)" % (self.op, self.bound)
