"""Exact hash-set summaries with per-bucket discard.

Section V of the paper: hash tables "have no false positives but take
more memory and are more expensive to probe", and under memory pressure
"with a hash-based AIP set one can discard portions, on a per-bucket
basis: any probe tuple that corresponds to a discarded bucket will
simply be passed through the filter".  Discarding therefore degrades
precision (more false positives) but never introduces false negatives.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Set

from repro.common.hashing import stable_key
from repro.summaries.base import Summary

_VALUE_BYTES = 12  # rough per-entry cost: value + set overhead share


class HashSetSummary(Summary):
    """Values partitioned into hash buckets, each individually droppable."""

    __slots__ = ("n_buckets", "_buckets", "_discarded", "n_added")

    def __init__(self, n_buckets: int = 64):
        if n_buckets < 1:
            raise ValueError("need at least one bucket")
        self.n_buckets = n_buckets
        self._buckets: List[Set[Hashable]] = [set() for _ in range(n_buckets)]
        self._discarded: List[bool] = [False] * n_buckets
        self.n_added = 0

    @classmethod
    def from_values(
        cls, values: Iterable[Hashable], n_buckets: int = 64
    ) -> "HashSetSummary":
        summary = cls(n_buckets)
        summary.add_many(values)
        return summary

    def _bucket_of(self, value: Hashable) -> int:
        return hash(stable_key(value)) % self.n_buckets

    def add(self, value: Hashable) -> None:
        b = self._bucket_of(value)
        if not self._discarded[b]:
            self._buckets[b].add(value)
        self.n_added += 1

    def add_many(self, values: Iterable[Hashable]) -> None:
        buckets = self._buckets
        discarded = self._discarded
        n_buckets = self.n_buckets
        n = 0
        for value in values:
            b = hash(stable_key(value)) % n_buckets
            if not discarded[b]:
                buckets[b].add(value)
            n += 1
        self.n_added += n

    def might_contain(self, value: Hashable) -> bool:
        b = self._bucket_of(value)
        if self._discarded[b]:
            return True  # pass-through: never a false negative
        return value in self._buckets[b]

    def might_contain_many(self, values: Iterable[Hashable]) -> List[bool]:
        buckets = self._buckets
        discarded = self._discarded
        n_buckets = self.n_buckets
        out: List[bool] = []
        append = out.append
        for value in values:
            b = hash(stable_key(value)) % n_buckets
            append(True if discarded[b] else value in buckets[b])
        return out

    def discard_bucket(self, bucket: int) -> int:
        """Drop one bucket's contents; returns bytes reclaimed."""
        if not 0 <= bucket < self.n_buckets:
            raise IndexError("bucket %d out of range" % bucket)
        reclaimed = len(self._buckets[bucket]) * _VALUE_BYTES
        self._buckets[bucket] = set()
        self._discarded[bucket] = True
        return reclaimed

    def shrink_to(self, max_bytes: int) -> None:
        """Discard largest buckets until the footprint fits ``max_bytes``."""
        while self.byte_size() > max_bytes:
            sizes = [len(b) for b in self._buckets]
            largest = max(range(self.n_buckets), key=sizes.__getitem__)
            if sizes[largest] == 0:
                break  # nothing left to reclaim
            self.discard_bucket(largest)

    @property
    def discarded_buckets(self) -> int:
        return sum(self._discarded)

    def byte_size(self) -> int:
        stored = sum(len(b) for b in self._buckets)
        return 32 + self.n_buckets * 8 + stored * _VALUE_BYTES

    def __repr__(self) -> str:
        return "HashSetSummary(buckets=%d, added=%d, discarded=%d)" % (
            self.n_buckets, self.n_added, self.discarded_buckets,
        )
