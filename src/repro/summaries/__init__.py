"""Summary structures used as AIP sets (Section III-C / V of the paper)."""

from repro.summaries.base import Summary
from repro.summaries.bloom import BigIntBloomFilter, BloomFilter, bloom_impl
from repro.summaries.hashset import HashSetSummary
from repro.summaries.histogram import HistogramSummary

__all__ = [
    "Summary",
    "BloomFilter",
    "BigIntBloomFilter",
    "bloom_impl",
    "HashSetSummary",
    "HistogramSummary",
]
