"""Strategy naming shared by harness, benchmarks and examples.

The paper's four execution strategies:

* ``baseline`` — plain push processing, no information passing;
* ``magic`` — the pipelined magic-sets rewriting (a *plan* transform,
  so it has no runtime strategy object);
* ``feedforward`` — greedy Feed-Forward AIP;
* ``costbased`` — the cost-based AIP Manager.
"""

from __future__ import annotations

from typing import Optional

from repro.aip.feedforward import FeedForwardStrategy
from repro.aip.manager import CostBasedStrategy
from repro.exec.context import ExecutionStrategy

BASELINE = "baseline"
MAGIC = "magic"
FEEDFORWARD = "feedforward"
COSTBASED = "costbased"

#: Strategy order used in every figure (mirrors the paper's legends).
STRATEGIES = (BASELINE, MAGIC, FEEDFORWARD, COSTBASED)
#: The join-query figures (13/14) omit Magic, as the paper does.
JOIN_FIGURE_STRATEGIES = (BASELINE, FEEDFORWARD, COSTBASED)


def make_strategy(name: str, **kwargs) -> Optional[ExecutionStrategy]:
    """Instantiate the runtime strategy for ``name`` (None = default)."""
    if name in (BASELINE, MAGIC):
        return None
    if name == FEEDFORWARD:
        return FeedForwardStrategy(**kwargs)
    if name == COSTBASED:
        return CostBasedStrategy(**kwargs)
    raise ValueError(
        "unknown strategy %r; expected one of %s" % (name, STRATEGIES)
    )


def uses_magic_plan(name: str) -> bool:
    return name == MAGIC
