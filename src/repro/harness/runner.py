"""Run one workload query under one strategy and collect metrics.

This is the single entry point every benchmark and example goes
through, so all figures measure exactly the same code paths.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.data.tpch import cached_tpch
from repro.distributed.coordinator import DistributedQuery
from repro.distributed.network import NetworkModel
from repro.distributed.site import Placement, Site
from repro.exec.arrival import ArrivalModel
from repro.exec.context import ExecutionContext
from repro.exec.engine import QueryResult, execute_plan
from repro.harness.strategies import make_strategy, uses_magic_plan
from repro.workloads.base import WorkloadQuery
from repro.workloads.registry import get_query

#: Default partition key per TPC-H table: the join attribute the Table I
#: workloads filter most, so shipped AIP filters prune every partition.
PARTITION_KEYS = {
    "lineitem": "l_partkey",
    "partsupp": "ps_partkey",
    "orders": "o_orderkey",
    "customer": "c_custkey",
    "supplier": "s_suppkey",
    "part": "p_partkey",
    "nation": "n_nationkey",
    "region": "r_regionkey",
}


def partitioned_placement(
    query: WorkloadQuery, partitions: int, tables=None
) -> Placement:
    """Placement hash-partitioning a workload query's big relation(s)
    across ``partitions`` sites named ``shard-0..N-1``.

    ``tables`` overrides which tables are partitioned; the default is
    the query's remote tables (Q1C/Q3C) or, for local workloads, its
    large input (``delayed_table``).
    """
    if partitions < 1:
        raise ValueError("need at least one partition")
    if tables is None:
        tables = query.remote_tables or (query.delayed_table,)
    placement = Placement()
    sites = ["shard-%d" % i for i in range(partitions)]
    for table in tables:
        placement.partition_table(table, PARTITION_KEYS[table], sites)
    return placement


class RunRecord:
    """Everything one figure cell needs."""

    __slots__ = ("qid", "strategy", "result", "summary", "storage")

    def __init__(self, qid: str, strategy: str, result: QueryResult,
                 storage: Optional[Dict] = None):
        self.qid = qid
        self.strategy = strategy
        self.result = result
        self.summary: Dict[str, float] = result.metrics.summary()
        #: Storage-layer observations of a governed run (budget, peak
        #: resident bytes, spill traffic), or None when un-governed.
        self.storage = storage

    @property
    def virtual_seconds(self) -> float:
        return self.summary["virtual_seconds"]

    @property
    def peak_state_mb(self) -> float:
        return self.summary["peak_state_mb"]

    def __repr__(self) -> str:
        return "RunRecord(%s/%s: %.4fs, %.3fMB)" % (
            self.qid, self.strategy,
            self.virtual_seconds, self.peak_state_mb,
        )


def run_workload_query(
    qid: str,
    strategy: str,
    scale_factor: float = 0.01,
    delayed: bool = False,
    seed: int = 7,
    strategy_kwargs: Optional[dict] = None,
    short_circuit: bool = True,
    batch_execution: bool = True,
    page_execution: bool = True,
    partitions: int = 0,
    network: Optional[NetworkModel] = None,
    memory_budget: Optional[int] = None,
    tracer=None,
    parallel: Optional[int] = None,
    pool=None,
) -> RunRecord:
    """Execute ``qid`` under ``strategy`` and return its metrics.

    ``delayed=True`` reproduces the Section VI-B setup: the query's
    large input relation gets a 100 ms initial delay plus 5 ms per 1000
    tuples.  Distributed variants (Q1C/Q3C) fetch their remote tables
    over the simulated 100 Mb Ethernet regardless of ``delayed``.
    ``partitions=N`` runs partition-parallel: the query's big relation
    (remote tables for Q1C/Q3C, else its ``delayed_table``) is hash
    partitioned across N sites, each streaming over its own link.
    Partitioned pacing replaces the delayed-source model, so combining
    the two is rejected rather than silently mislabelled.
    ``batch_execution=False`` forces the tuple-at-a-time engine loop
    (the vectorized path is observably identical; benchmarks compare
    their wall-clock cost).  ``page_execution=False`` keeps a batched
    run on row-list batches instead of column pages — the third
    observably identical path the equivalence suite pins.
    ``memory_budget=N`` attaches a
    :class:`~repro.storage.governor.MemoryGovernor` with an ``N``-byte
    budget: scans stream buffer-pool pages and stateful operators
    spill under pressure.  Rows are identical to the un-governed run
    (as a multiset; spilling reorders completion-time emissions) and
    ``record.storage`` reports what the governor observed.  ``None``
    (the default) runs the engine bit-identically to a build without
    the storage layer.  This is the *enforced* engine budget — not to
    be confused with Feed-Forward's ``strategy_kwargs`` AIP-set budget
    or the service layer's admission estimate budget.
    ``tracer`` attaches a :class:`~repro.obs.trace.Tracer` to the run
    (engine spans, AIP/governor instants); None — the default — keeps
    execution bit-identical to an uninstrumented build.
    ``parallel=N`` evaluates eligible partition-scan fragments on N
    real worker processes (see ``repro.parallel``); rows stay
    bit-identical to the serial run under baseline/feedforward and
    multiset-identical always.  ``pool`` reuses an already-warm
    :class:`~repro.parallel.pool.WorkerPool` across calls (benchmarks,
    the service); without it a run-scoped pool is started and closed.
    """
    if partitions and delayed:
        raise ValueError(
            "delayed sources and partition-parallel placement are "
            "different arrival regimes; pick one"
        )
    if (parallel or pool is not None) and memory_budget is not None:
        raise ValueError(
            "parallel fragment execution needs plain row lists; it "
            "cannot be combined with a governed memory budget"
        )
    query = get_query(qid)
    catalog = cached_tpch(scale_factor=scale_factor, skew=query.skew, seed=seed)
    plan = (
        query.build_magic(catalog)
        if uses_magic_plan(strategy)
        else query.build_baseline(catalog)
    )
    governor = None
    if memory_budget is not None:
        from repro.storage.governor import MemoryGovernor
        governor = MemoryGovernor(memory_budget)
        governor.tracer = tracer
    owned_pool = None
    if pool is None and parallel:
        from repro.parallel import CatalogSpec, WorkerPool
        owned_pool = WorkerPool(
            parallel,
            CatalogSpec.tpch(
                scale_factor=scale_factor, skew=query.skew, seed=seed
            ),
            tracer=tracer,
        )
        pool = owned_pool.start()
    ctx = ExecutionContext(
        catalog,
        strategy=make_strategy(strategy, **(strategy_kwargs or {})),
        short_circuit=short_circuit,
        batch_execution=batch_execution,
        page_execution=page_execution,
        governor=governor,
        pool=pool,
    )
    ctx.tracer = tracer

    try:
        if partitions:
            dq = DistributedQuery(
                plan, partitioned_placement(query, partitions),
                network or NetworkModel(),
            )
            result = dq.execute(ctx)
        elif query.is_distributed:
            dq = DistributedQuery(
                plan,
                Placement([Site("remote-1", query.remote_tables)]),
                network or NetworkModel(),
            )
            result = dq.execute(ctx)
        else:
            resolver = None
            if delayed:
                delayed_table = query.delayed_table

                def resolver(node):
                    if node.table_name == delayed_table:
                        return ArrivalModel.delayed(
                            initial_delay=0.100, batch_size=1000,
                            batch_delay=0.005,
                        )
                    return None

            result = execute_plan(plan, ctx, arrival_resolver=resolver)
    finally:
        # Engine errors included: the spill directory never outlives
        # the run.
        if governor is not None:
            governor.close()
        if owned_pool is not None:
            owned_pool.close()

    storage = None
    if governor is not None:
        storage = {
            "budget": governor.budget,
            "peak_resident_bytes": governor.peak_resident_bytes,
            "over_budget_events": governor.over_budget_events,
            "spilled_bytes": governor.backend.bytes_written,
            "evictions": governor.buffer.evictions,
            "reloads": governor.buffer.reloads,
        }
    return RunRecord(qid, strategy, result, storage)
