"""Export figure tables to CSV / Markdown / JSON.

The benchmark session prints text tables; downstream users regenerating
the paper's figures usually want machine-readable output to feed a
plotting pipeline.  All formats carry the same (query x strategy) grid.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict

from repro.harness.report import FigureTable


def to_csv(table: FigureTable) -> str:
    """RFC-4180 CSV; first column is the query id."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["query"] + list(table.strategies))
    for qid in table.queries:
        row = [qid]
        for strategy in table.strategies:
            value = table.value(qid, strategy)
            row.append("" if value is None else "%.6f" % value)
        writer.writerow(row)
    return buffer.getvalue()


def to_markdown(table: FigureTable) -> str:
    """GitHub-flavoured Markdown table with a caption line."""
    lines = [
        "**%s** (%s, %s)" % (table.title, table.metric, table.unit),
        "",
        "| query | " + " | ".join(table.strategies) + " |",
        "|" + "---|" * (len(table.strategies) + 1),
    ]
    for qid in table.queries:
        cells = []
        for strategy in table.strategies:
            value = table.value(qid, strategy)
            cells.append("–" if value is None else "%.4f" % value)
        lines.append("| %s | %s |" % (qid, " | ".join(cells)))
    return "\n".join(lines)


def to_json(table: FigureTable) -> str:
    """JSON object: metadata plus a cells mapping."""
    payload = {
        "title": table.title,
        "metric": table.metric,
        "unit": table.unit,
        "queries": table.queries,
        "strategies": table.strategies,
        "cells": {
            qid: {
                strategy: table.value(qid, strategy)
                for strategy in table.strategies
                if table.value(qid, strategy) is not None
            }
            for qid in table.queries
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def export_all(
    tables: Dict[str, FigureTable], directory: str, fmt: str = "csv"
) -> Dict[str, str]:
    """Write every table to ``directory``; returns {key: path}.

    ``fmt`` is one of ``csv``, ``md``, ``json``.
    """
    import os

    renderers = {"csv": to_csv, "md": to_markdown, "json": to_json}
    try:
        render = renderers[fmt]
    except KeyError:
        raise ValueError(
            "unknown format %r; expected one of %s" % (fmt, sorted(renderers))
        ) from None
    os.makedirs(directory, exist_ok=True)
    written = {}
    for key, table in tables.items():
        path = os.path.join(directory, "%s.%s" % (key, fmt))
        with open(path, "w") as handle:
            handle.write(render(table))
        written[key] = path
    return written
