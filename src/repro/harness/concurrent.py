"""Concurrent multi-query execution on one virtual clock.

The paper motivates AIP's memory savings with multi-query settings:
"a reduction in both CPU cost and memory can be very useful in
improving throughput if multiple queries are running concurrently"
(Section VI-B) and "the memory savings may be particularly important in
a system that executes multiple queries simultaneously" (VI-D).

This module runs several plans in one engine: their sources interleave
on the shared clock, their state shares one metric store (so peak
intermediate state is the *aggregate* across queries), and each plan
gets its own strategy instance via :class:`CompositeStrategy`, which
routes engine hooks to the strategy owning the operator.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Sequence, Tuple

from repro.common.errors import ExecutionError
from repro.exec.context import ExecutionContext, ExecutionStrategy
from repro.exec.engine import QueryResult, drive_scan, plan_batchable
from repro.exec.translate import PhysicalPlan, translate
from repro.plan.logical import LogicalNode


class CompositeStrategy(ExecutionStrategy):
    """Routes per-operator hooks to the strategy owning that operator."""

    def __init__(self):
        self._by_op: dict = {}
        self._strategies: List[ExecutionStrategy] = []

    def adopt(self, strategy: ExecutionStrategy, plan: PhysicalPlan) -> None:
        self._strategies.append(strategy)
        for op in plan.sink.walk():
            self._by_op[op.op_id] = strategy

    def attach(self, ctx, plan) -> None:  # handled per-plan in adopt()
        pass

    def on_query_start(self) -> None:
        for strategy in self._strategies:
            strategy.on_query_start()

    def after_tuple(self, op, input_idx, row) -> None:
        strategy = self._by_op.get(op.op_id)
        if strategy is not None:
            strategy.after_tuple(op, input_idx, row)

    def after_tuples(self, op, input_idx, rows) -> None:
        strategy = self._by_op.get(op.op_id)
        if strategy is not None:
            strategy.after_tuples(op, input_idx, rows)

    def after_tuples_page(self, op, input_idx, page) -> None:
        strategy = self._by_op.get(op.op_id)
        if strategy is not None:
            strategy.after_tuples_page(op, input_idx, page)

    def on_input_finished(self, op, input_idx) -> None:
        strategy = self._by_op.get(op.op_id)
        if strategy is not None:
            strategy.on_input_finished(op, input_idx)

    def on_query_end(self) -> None:
        for strategy in self._strategies:
            strategy.on_query_end()

    def describe(self) -> str:
        return "composite(%s)" % ", ".join(
            s.describe() for s in self._strategies
        )


def run_concurrent(
    plans: Sequence[LogicalNode],
    ctx: ExecutionContext,
    strategies: Optional[Sequence[Optional[ExecutionStrategy]]] = None,
    arrival_resolver: Optional[Callable] = None,
    on_plan_finished: Optional[Callable[[int, float], None]] = None,
    on_plan_translated: Optional[Callable[[int, PhysicalPlan], None]] = None,
) -> List[QueryResult]:
    """Execute ``plans`` concurrently on ``ctx``'s clock.

    ``strategies`` gives one strategy (or None for baseline) per plan;
    metrics — including peak intermediate state — aggregate across all
    queries, which is precisely the multi-query memory story the paper
    tells.  Returns one :class:`QueryResult` per plan, sharing the same
    metric object.

    ``on_plan_finished(index, clock)`` fires the moment one plan's sink
    completes — queries finish at different points on the shared clock,
    and the service layer reports per-query latency from these times.
    ``on_plan_translated(index, physical)`` fires after each plan is
    translated but before execution; the cross-query AIP cache uses it
    to inject remembered filters into the fresh operators.
    """
    if strategies is None:
        strategies = [None] * len(plans)
    if len(strategies) != len(plans):
        raise ExecutionError("need one strategy per plan")

    composite = CompositeStrategy()
    ctx.strategy = composite

    translated: List[PhysicalPlan] = []
    batchable = {}  # scan op_id -> (may batch, may carry column pages)
    for index, (plan, strategy) in enumerate(zip(plans, strategies)):
        physical = translate(plan, ctx, arrival_resolver)
        if strategy is not None:
            strategy.attach(ctx, physical)
            composite.adopt(strategy, physical)
        if on_plan_finished is not None:
            physical.sink.finish_listener = (
                lambda sink, i=index: on_plan_finished(i, ctx.metrics.clock)
            )
        if on_plan_translated is not None:
            on_plan_translated(index, physical)
        plan_batches = plan_batchable(ctx, strategy, physical)
        plan_pages = plan_batches and ctx.page_execution
        for scan in physical.scans:
            batchable[scan.op_id] = (plan_batches, plan_pages)
        translated.append(physical)

    composite.on_query_start()

    heap: List[Tuple[float, int, object]] = []
    seq = 0
    for physical in translated:
        for scan in physical.scans:
            when = scan.prime()
            if when is None:
                scan.finish()
            else:
                heapq.heappush(heap, (when, seq, scan))
            seq += 1

    metrics = ctx.metrics
    tracer = ctx.tracer
    loop_start = metrics.clock_ticks if tracer is not None else 0
    while heap:
        when, tie, scan = heapq.heappop(heap)
        metrics.wait_until(when)
        # The arrival boundary spans ALL concurrent plans' sources: a
        # batch never reorders this query's rows past another query's
        # earlier arrivals on the shared clock.
        batching, paging = batchable[scan.op_id]
        if tracer is None:
            nxt = drive_scan(scan, tie, heap, metrics, batching, paging)
        else:
            drive_start = metrics.clock_ticks
            nxt = drive_scan(scan, tie, heap, metrics, batching, paging)
            tracer.complete(
                "drive:%s" % scan.name, "engine", drive_start,
                metrics.clock_ticks - drive_start,
            )
        if nxt is None:
            scan.finish()
        else:
            heapq.heappush(heap, (nxt, tie, scan))

    composite.on_query_end()
    if tracer is not None:
        tracer.complete(
            "concurrent-batch", "engine", loop_start,
            metrics.clock_ticks - loop_start,
            {"plans": len(translated)},
        )

    metrics.network_bytes += sum(
        scan.arrival.bytes_transferred
        for physical in translated
        for scan in physical.scans
        if scan.arrival.bandwidth is not None
    )

    results = []
    for physical in translated:
        if not physical.sink.finished:
            raise ExecutionError("a concurrent query never finished")
        results.append(
            QueryResult(physical.sink.rows, physical.sink.out_schema, metrics)
        )
    return results
