"""Figure tables: the text analogue of the paper's bar charts.

Each benchmark collects one value per (query, strategy) cell and prints
a table whose rows/series correspond to the paper's figure, so paper
shape vs. measured shape can be compared side by side (EXPERIMENTS.md
records the comparison)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence


class FigureTable:
    """An ordered (query x strategy) grid of one metric."""

    def __init__(
        self,
        title: str,
        queries: Sequence[str],
        strategies: Sequence[str],
        metric: str,
        unit: str,
    ):
        self.title = title
        self.queries = list(queries)
        self.strategies = list(strategies)
        self.metric = metric
        self.unit = unit
        self._cells: Dict[tuple, float] = {}

    def add(self, qid: str, strategy: str, value: float) -> None:
        self._cells[(qid, strategy)] = value

    def value(self, qid: str, strategy: str) -> Optional[float]:
        return self._cells.get((qid, strategy))

    @property
    def complete(self) -> bool:
        return all(
            (q, s) in self._cells
            for q in self.queries for s in self.strategies
        )

    def render(self) -> str:
        """Aligned text table; '-' marks cells not collected."""
        width = max(12, max((len(s) for s in self.strategies), default=0) + 2)
        lines = [
            "%s  [%s, %s]" % (self.title, self.metric, self.unit),
            "-" * (8 + width * len(self.strategies)),
        ]
        header = "%-8s" % "query"
        for s in self.strategies:
            header += ("%%%ds" % width) % s
        lines.append(header)
        for q in self.queries:
            row = "%-8s" % q
            for s in self.strategies:
                v = self._cells.get((q, s))
                row += ("%%%ds" % width) % (
                    "-" if v is None else "%.4f" % v
                )
            lines.append(row)
        return "\n".join(lines)

    def winners(self) -> Dict[str, str]:
        """Per query, the strategy with the lowest metric value."""
        out = {}
        for q in self.queries:
            candidates = [
                (self._cells[(q, s)], s)
                for s in self.strategies
                if (q, s) in self._cells
            ]
            if candidates:
                out[q] = min(candidates)[1]
        return out
