"""Benchmark harness: run Table I queries under the four strategies the
paper compares and render per-figure tables."""

from repro.harness.strategies import STRATEGIES, make_strategy
from repro.harness.runner import RunRecord, run_workload_query
from repro.harness.report import FigureTable

__all__ = [
    "STRATEGIES",
    "make_strategy",
    "RunRecord",
    "run_workload_query",
    "FigureTable",
]
