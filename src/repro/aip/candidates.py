"""AIPCANDIDATES (Figure 3 of the paper).

Precomputes, from the query plan and its conjunctive predicates:

* ``Sources[A]`` — the stateful ``(operator, port)`` pairs whose
  buffered state can yield an AIP set over attribute ``A`` ("the source
  nodes are the children of (i.e. inputs to) state-producing operators,
  whose results are stored within the operators");
* ``InterestedIn[A]`` — the parties whose input can be filtered by a
  set over ``A``: any party carrying an attribute transitively equated
  to ``A`` (``EQ``), restricted for group-bys to their grouping keys
  (filtering a group-by input on a non-key attribute could change
  surviving groups' aggregates).

Scans are included among the interested parties: injecting at a scan
prunes earliest, and remote scans are where distributed AIP ships
filters.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.exec.operators.base import Operator
from repro.exec.operators.groupby import PGroupBy
from repro.exec.operators.scan import PScan
from repro.exec.translate import PhysicalPlan
from repro.optimizer.predicate_graph import SourcePredicateGraph

Party = Tuple[int, int]


class CandidateIndex:
    """Output of AIPCANDIDATES, plus lookup helpers."""

    def __init__(self):
        #: attr -> parties whose state can produce a set over attr
        self.sources: Dict[str, Set[Party]] = {}
        #: eq-class root -> interested parties
        self.interested: Dict[str, Set[Party]] = {}
        #: (party, eq-root) -> the attribute that party is filterable on
        self.party_attr: Dict[Tuple[Party, str], str] = {}
        #: party -> attrs its state can summarise
        self.producible: Dict[Party, List[str]] = {}

    def interested_in(self, graph: SourcePredicateGraph, attr: str) -> Set[Party]:
        root = graph.eq.find(attr)
        return set(self.interested.get(root, ()))

    def attr_at(self, graph: SourcePredicateGraph, party: Party,
                attr: str) -> str:
        """The attribute name by which ``party`` participates in
        ``attr``'s equivalence class."""
        root = graph.eq.find(attr)
        return self.party_attr.get((party, root))


def _filterable_attrs(op: Operator, port: int) -> List[str]:
    if isinstance(op, PScan):
        return list(op.out_schema.names)
    if isinstance(op, PGroupBy):
        return list(op.keys)
    return list(op.input_schemas[port].names)


def _producible_attrs(op: Operator, port: int) -> List[str]:
    """Attributes recoverable from the operator's buffered state."""
    if isinstance(op, PGroupBy):
        return list(op.keys) + [s.output_name for s in op._specs]
    return list(op.input_schemas[port].names)


def aip_candidates(
    plan: PhysicalPlan, graph: SourcePredicateGraph
) -> CandidateIndex:
    """Compute candidate AIP set producers and users for a plan."""
    index = CandidateIndex()

    for op in plan.sink.walk():
        if isinstance(op, PScan):
            party = (op.op_id, 0)
            for attr in _filterable_attrs(op, 0):
                if graph.equated_elsewhere(attr):
                    root = graph.eq.find(attr)
                    index.interested.setdefault(root, set()).add(party)
                    index.party_attr[(party, root)] = attr
            continue
        if not op.stateful:
            continue
        for port in range(op.n_inputs):
            party = (op.op_id, port)
            producible = []
            for attr in _producible_attrs(op, port):
                if graph.equated_elsewhere(attr):
                    index.sources.setdefault(attr, set()).add(party)
                    producible.append(attr)
            if producible:
                index.producible[party] = producible
            for attr in _filterable_attrs(op, port):
                if graph.equated_elsewhere(attr):
                    root = graph.eq.find(attr)
                    index.interested.setdefault(root, set()).add(party)
                    index.party_attr[(party, root)] = attr

    return index
