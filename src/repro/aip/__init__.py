"""Adaptive Information Passing (the paper's core contribution).

Two strategies plug into the push engine's hook interface:

* :class:`~repro.aip.feedforward.FeedForwardStrategy` — Section IV-A's
  greedy algorithm: every stateful operator optimistically maintains
  working AIP sets and publishes them through a central
  :class:`~repro.aip.registry.AIPRegistry` when its input completes.
* :class:`~repro.aip.manager.CostBasedStrategy` — Section IV-B's
  algorithm: an AIP Manager triggered on subexpression completion runs
  ``ESTIMATEBENEFIT`` against the optimizer's cost model and only
  builds/injects filters predicted to pay for themselves; optionally
  ships filters to remote sites (Section V-B).
"""

from repro.aip.sets import AIPSet, AIPSetSpec
from repro.aip.registry import AIPRegistry
from repro.aip.feedforward import FeedForwardStrategy
from repro.aip.candidates import aip_candidates, CandidateIndex
from repro.aip.manager import CostBasedStrategy

__all__ = [
    "AIPSet",
    "AIPSetSpec",
    "AIPRegistry",
    "FeedForwardStrategy",
    "aip_candidates",
    "CandidateIndex",
    "CostBasedStrategy",
]
