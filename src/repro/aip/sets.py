"""AIP sets: summaries of completed (or in-progress) subexpressions.

"We term the results of a subexpression (or the summary structure of a
subexpression) an *AIP set*, since it is roughly analogous to a magic
set" (Section III-A).  An AIP set binds a summary structure to the
attribute it summarises and the equivalence class it can filter.

All AIP sets of one equivalence class share Bloom geometry (bit count,
hash function seed) so the registry can merge them by bitwise
intersection, as Section IV-A prescribes.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional

from repro.summaries.base import Summary
from repro.summaries.bloom import (
    DEFAULT_FP_RATE,
    BloomFilter,
    active_bloom_impl,
    bits_for,
)
from repro.summaries.hashset import HashSetSummary

BLOOM = "bloom"
HASHSET = "hashset"


class AIPSetSpec:
    """Shared geometry for all AIP sets of one equivalence class."""

    __slots__ = ("eq_root", "kind", "n_bits", "seed", "fp_rate", "n_hashes")

    def __init__(
        self,
        eq_root: str,
        expected_items: int,
        kind: str = BLOOM,
        fp_rate: float = DEFAULT_FP_RATE,
        n_hashes: int = 1,
    ):
        self.eq_root = eq_root
        self.kind = kind
        self.fp_rate = fp_rate
        self.n_hashes = n_hashes
        self.n_bits = bits_for(max(expected_items, 1), fp_rate, n_hashes)
        # A stable per-class seed keeps filters merge-compatible and
        # runs deterministic across processes.
        import zlib
        self.seed = zlib.crc32(eq_root.encode("utf-8")) & 0x7FFFFFFF

    def new_summary(self) -> Summary:
        if self.kind == HASHSET:
            return HashSetSummary()
        # ``active_bloom_impl`` is the word-indexed BloomFilter except
        # under the equivalence suite's big-int reference mode.
        return active_bloom_impl()(
            0,
            fp_rate=self.fp_rate,
            n_hashes=self.n_hashes,
            seed=self.seed,
            n_bits=self.n_bits,
        )


class AIPSet:
    """One summary plus its provenance."""

    __slots__ = ("attr", "eq_root", "summary", "source_label", "spec", "complete")

    def __init__(
        self,
        attr: str,
        spec: AIPSetSpec,
        source_label: str,
        summary: Optional[Summary] = None,
    ):
        self.attr = attr
        self.eq_root = spec.eq_root
        self.spec = spec
        self.summary = summary if summary is not None else spec.new_summary()
        self.source_label = source_label
        self.complete = False

    @classmethod
    def from_values(
        cls,
        attr: str,
        spec: AIPSetSpec,
        source_label: str,
        values: Iterable[Hashable],
    ) -> "AIPSet":
        """Build a completed set in one ``add_many`` pass.  ``values``
        may be a lazy iterator — it is consumed exactly once, and the
        element count is afterwards available as ``summary.n_added``."""
        aip_set = cls(attr, spec, source_label)
        aip_set.summary.add_many(values)
        aip_set.complete = True
        return aip_set

    def add(self, value: Hashable) -> None:
        self.summary.add(value)

    def add_many(self, values: Iterable[Hashable]) -> None:
        self.summary.add_many(values)

    def probe_many(self, values: Iterable[Hashable]) -> List[bool]:
        """Batch membership, one verdict per value in order."""
        return self.summary.might_contain_many(values)

    def __contains__(self, value: Hashable) -> bool:
        return value in self.summary

    def byte_size(self) -> int:
        return self.summary.byte_size()

    def try_intersect(self, other: "AIPSet") -> Optional["AIPSet"]:
        """Merge with another completed set of the same class, if the
        underlying summaries are merge-compatible Bloom filters."""
        mine, theirs = self.summary, other.summary
        if (
            isinstance(mine, BloomFilter)
            and isinstance(theirs, BloomFilter)
            and mine.compatible_with(theirs)
        ):
            merged = AIPSet(
                self.attr,
                self.spec,
                "%s∩%s" % (self.source_label, other.source_label),
                summary=mine.intersect(theirs),
            )
            merged.complete = True
            return merged
        return None

    def __repr__(self) -> str:
        return "AIPSet(%s from %s%s)" % (
            self.attr, self.source_label, "" if self.complete else " [working]",
        )
