"""The AIP Registry (Section IV-A).

The registry is the central rendezvous of the Feed-Forward algorithm:

* stateful operators register **candidate** AIP sets for the attributes
  they produce, and **interest** in equivalence classes of attributes
  they could be filtered on;
* candidates without interested parties are eliminated before execution;
* for each connected component of the source-predicate graph the
  registry keeps a **vector of completed AIP sets**;
* publishing a completed set appends it to the class vector (merging by
  bitwise intersection when geometries allow);
* interest is reference-counted: when an operator's input completes it
  "decrements its interest in all the AIP sets it could have used", and
  producers whose class has no interest left discard their working sets.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.aip.sets import AIPSet, AIPSetSpec
from repro.optimizer.predicate_graph import SourcePredicateGraph

#: A registered party: ``(node_id, port)``.
Party = Tuple[int, int]


class AIPRegistry:
    """Tracks candidate sets, interest counts and completed-set vectors."""

    def __init__(self, graph: SourcePredicateGraph):
        self.graph = graph
        #: eq-class root -> parties interested in filters of this class
        self._interest: Dict[str, Set[Party]] = {}
        #: eq-class root -> producing parties that registered candidates
        self._producers: Dict[str, Set[Party]] = {}
        #: eq-class root -> vector of completed AIP sets
        self._vectors: Dict[str, List[AIPSet]] = {}
        #: eq-class root -> shared geometry spec
        self._specs: Dict[str, AIPSetSpec] = {}
        #: callbacks fired when a set is published:
        #: ``fn(eq_root, aip_set, replaced_previous)``
        self._subscribers: List[Callable[[str, AIPSet, bool], None]] = []

    # -- setup ------------------------------------------------------------

    def root_of(self, attr: str) -> str:
        return self.graph.eq.find(attr)

    def set_spec(self, eq_root: str, spec: AIPSetSpec) -> None:
        self._specs[eq_root] = spec

    def spec_for(self, attr: str) -> Optional[AIPSetSpec]:
        return self._specs.get(self.root_of(attr))

    def register_candidate(self, attr: str, party: Party) -> None:
        """A stateful operator announces it can produce a set for ``attr``."""
        self._producers.setdefault(self.root_of(attr), set()).add(party)

    def register_interest(self, attr: str, party: Party) -> None:
        """An operator announces it could use filters over ``attr``."""
        self._interest.setdefault(self.root_of(attr), set()).add(party)

    def eliminate_unwanted_candidates(self) -> Set[str]:
        """Drop candidate classes nobody is interested in; returns the
        roots that survive.  ("Any potential AIP sets without interested
        parties are then eliminated.")"""
        surviving = set()
        for root, producers in list(self._producers.items()):
            interested = self._interest.get(root, set())
            # Useful iff some party other than the producer itself could
            # consume a filter of this class.
            if any(q != p for q in interested for p in producers):
                surviving.add(root)
            else:
                del self._producers[root]
        for root in surviving:
            self._vectors.setdefault(root, [])
        return surviving

    def is_wanted(self, attr: str) -> bool:
        return self.root_of(attr) in self._producers

    # -- execution-time flow ----------------------------------------------

    def subscribe(
        self, callback: Callable[[str, AIPSet, bool], None]
    ) -> None:
        self._subscribers.append(callback)

    def publish(self, aip_set: AIPSet) -> None:
        """Append a completed set to its class vector and notify.

        Compatible Bloom filters merge by bitwise intersection, in which
        case subscribers are told the new set *replaces* the previous
        vector entry (so injected filters should be swapped, not added).
        """
        root = self.root_of(aip_set.attr)
        aip_set.complete = True
        vector = self._vectors.setdefault(root, [])
        replaced = False
        if vector:
            merged = vector[-1].try_intersect(aip_set)
            if merged is not None:
                vector[-1] = merged
                aip_set = merged
                replaced = True
        if not replaced:
            vector.append(aip_set)
        for callback in self._subscribers:
            callback(root, aip_set, replaced)

    def vector(self, attr: str) -> List[AIPSet]:
        return list(self._vectors.get(self.root_of(attr), ()))

    def drop_interest(self, party: Party) -> Set[str]:
        """Remove ``party`` from every class it was interested in;
        returns the roots whose interest dropped to zero."""
        emptied = set()
        for root, parties in self._interest.items():
            if party in parties:
                parties.discard(party)
                if not parties:
                    emptied.add(root)
        return emptied

    def has_interest(self, attr: str) -> bool:
        return bool(self._interest.get(self.root_of(attr)))

    def interested_parties(self, attr: str) -> Set[Party]:
        return set(self._interest.get(self.root_of(attr), ()))

    def producers_of(self, attr: str) -> Set[Party]:
        return set(self._producers.get(self.root_of(attr), ()))
