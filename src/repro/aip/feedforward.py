"""Greedy Feed-Forward Filtering (Section IV-A of the paper).

The algorithm "requires minimal runtime decision-making and no runtime
statistics collection [and] optimistically creates and uses every
potentially useful AIP set":

* **Query initialization** — every stateful operator registers, per
  input, a candidate AIP set for each attribute it produces and
  interest in every attribute transitively equated to one of its own
  but produced elsewhere.  Candidates nobody wants are eliminated.
  Each surviving producer creates an incremental *working copy*.
* **Query execution** — arriving tuples are probed against completed
  AIP sets (via the engine's injected-filter mechanism) and recorded
  into the operator's working sets.  When an input completes, its
  working sets are published to the registry (merged by intersection
  when possible) and injected into all interested, still-live targets;
  the operator drops its interest, and producers of classes with no
  remaining interest discard their working sets.

Beyond tuples received, a group-by also publishes completion-time sets
over its *aggregate outputs* (e.g. the MIN supply costs of Q1/Q3),
which are only known once its input finishes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.aip.registry import AIPRegistry, Party
from repro.aip.sets import BLOOM, AIPSet, AIPSetSpec
from repro.exec.context import ExecutionContext, ExecutionStrategy
from repro.exec.operators.base import InjectedFilter, Operator
from repro.exec.operators.groupby import PGroupBy
from repro.exec.operators.scan import PScan
from repro.exec.translate import PhysicalPlan
from repro.optimizer.predicate_graph import SourcePredicateGraph

#: Default expected-items fallback when statistics offer nothing.
DEFAULT_EXPECTED = 1024


class _WorkingSet:
    """One incrementally built AIP set on a (operator, port)."""

    __slots__ = ("attr", "key_index", "aip_set", "party")

    def __init__(self, attr: str, key_index: int, aip_set: AIPSet, party: Party):
        self.attr = attr
        self.key_index = key_index
        self.aip_set = aip_set
        self.party = party


class FeedForwardStrategy(ExecutionStrategy):
    """The paper's greedy Feed-Forward AIP algorithm."""

    def __init__(
        self,
        fp_rate: float = 0.05,
        summary_kind: str = BLOOM,
        n_hashes: int = 1,
        inject_at_scans: bool = True,
        prune_uninterested: bool = True,
        memory_budget: Optional[int] = None,
        enable_range_filters: bool = False,
    ):
        self.fp_rate = fp_rate
        self.summary_kind = summary_kind
        self.n_hashes = n_hashes
        #: Inject published sets into scans as well as stateful inputs
        #: (Examples 3.1/3.2 inject semijoins "after PS2 is read").
        self.inject_at_scans = inject_at_scans
        #: Ablation knob: keep candidates nobody is interested in.
        self.prune_uninterested = prune_uninterested
        #: Section V memory overflow: bound the bytes spent on working
        #: AIP sets; over budget, sets are shrunk (hash sets, per
        #: bucket) or discarded (Bloom filters) — a performance, not
        #: correctness, decision.  None = unbounded.
        self.memory_budget = memory_budget
        #: Section III-C extension: pass *range* information (min/max
        #: bounds) across join residual inequalities.
        self.enable_range_filters = enable_range_filters
        self.ctx: Optional[ExecutionContext] = None
        self.plan: Optional[PhysicalPlan] = None
        self.registry: Optional[AIPRegistry] = None
        self._working: Dict[Tuple[int, int], List[_WorkingSet]] = {}
        self._completion_attrs: Dict[Tuple[int, int], List[str]] = {}
        self._interest_attr: Dict[Tuple[Party, str], str] = {}
        self._injected: Dict[Tuple[Party, int], InjectedFilter] = {}
        self._range_opps: Dict[Tuple[int, int], List[Tuple[str, str, str]]] = {}
        self._state_owner: Optional[int] = None
        self._budget_check_countdown = 0
        self.working_sets_discarded = 0

    def describe(self) -> str:
        return "feed-forward"

    @property
    def batch_safe(self) -> bool:
        # Budget enforcement sheds working sets on a per-row countdown
        # whose interleaving across operators the operator-at-a-time
        # batch path cannot reproduce; budgeted runs stay per-tuple so
        # shedding decisions are identical.
        return self.memory_budget is None

    # -- initialization -----------------------------------------------------

    def attach(self, ctx: ExecutionContext, plan: PhysicalPlan) -> None:
        self.ctx = ctx
        self.plan = plan
        graph = SourcePredicateGraph.from_plan(plan.logical_root)
        self.registry = AIPRegistry(graph)
        self.registry.subscribe(self._on_published)
        from repro.plan.logical import fresh_node_id
        self._state_owner = fresh_node_id()

        operators = list(plan.sink.walk())

        # Pass 1: register candidates and interest.
        for op in operators:
            if isinstance(op, PScan):
                party = (op.op_id, 0)
                for attr in op.out_schema.names:
                    if graph.equated_elsewhere(attr):
                        self.registry.register_interest(attr, party)
                        self._interest_attr[
                            (party, self.registry.root_of(attr))
                        ] = attr
                continue
            if not op.stateful:
                continue
            for port in range(op.n_inputs):
                party = (op.op_id, port)
                for attr in self._filterable_attrs(op, port):
                    if graph.equated_elsewhere(attr):
                        self.registry.register_candidate(attr, party)
                        self.registry.register_interest(attr, party)
                        self._interest_attr[
                            (party, self.registry.root_of(attr))
                        ] = attr
                for attr in self._completion_only_attrs(op, port):
                    if graph.equated_elsewhere(attr):
                        self.registry.register_candidate(attr, party)
                        self._completion_attrs.setdefault(party, []).append(attr)

        # Pass 2: eliminate unwanted candidates.
        if self.prune_uninterested:
            self.registry.eliminate_unwanted_candidates()

        # Pass 3: shared geometry per surviving class.
        self._build_specs(graph)

        # Optional: index range-passing opportunities over join
        # residual inequalities (Section III-C extension).
        if self.enable_range_filters:
            self._index_range_opportunities(plan)

        # Pass 4: working copies for surviving producers.
        for op in operators:
            if not op.stateful:
                continue
            for port in range(op.n_inputs):
                party = (op.op_id, port)
                sets = []
                for attr in self._filterable_attrs(op, port):
                    if not graph.equated_elsewhere(attr):
                        continue
                    if self.prune_uninterested and not self.registry.is_wanted(attr):
                        continue
                    spec = self.registry.spec_for(attr)
                    if spec is None:
                        continue
                    schema = op.input_schemas[port]
                    ws = _WorkingSet(
                        attr,
                        schema.index_of(attr),
                        AIPSet(attr, spec, "%s:%d" % (op.name, port)),
                        party,
                    )
                    self.ctx.metrics.adjust_state(
                        self._state_owner, ws.aip_set.byte_size()
                    )
                    sets.append(ws)
                if sets:
                    self._working[party] = sets

    def _filterable_attrs(self, op: Operator, port: int) -> List[str]:
        """Attributes of one input usable both as working-set material
        and as filter keys.  Group-bys are restricted to their keys:
        pruning a group-by input on a non-key attribute could remove
        rows from surviving groups and change aggregates."""
        if isinstance(op, PGroupBy):
            return list(op.keys)
        return list(op.input_schemas[port].names)

    def _completion_only_attrs(self, op: Operator, port: int) -> List[str]:
        """Computed attributes only known when the input completes."""
        if isinstance(op, PGroupBy):
            return [s.output_name for s in op._specs]
        return []

    def _build_specs(self, graph: SourcePredicateGraph) -> None:
        stats_cache = {}
        for group in graph.eq_classes():
            expected = 0
            for attr in group:
                origin = graph.origins.get(attr)
                if origin is None:
                    continue
                table, column = origin
                stats = stats_cache.get(table)
                if stats is None:
                    stats = self.ctx.catalog.stats(table)
                    stats_cache[table] = stats
                expected = max(expected, stats.distinct.get(column, 0))
            root = self.registry.root_of(next(iter(group)))
            self.registry.set_spec(
                root,
                AIPSetSpec(
                    root,
                    expected or DEFAULT_EXPECTED,
                    kind=self.summary_kind,
                    fp_rate=self.fp_rate,
                    n_hashes=self.n_hashes,
                ),
            )

    def _index_range_opportunities(self, plan: PhysicalPlan) -> None:
        """Find join residual conjuncts ``ColA <op> ColB`` with the two
        columns on opposite inputs; when one input completes, a bound
        filter can prune the other."""
        from repro.expr.expressions import Cmp, Col, conjuncts_of
        from repro.plan.logical import Join

        flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        for node in plan.logical_root.walk():
            if not isinstance(node, Join) or node.residual is None:
                continue
            for conjunct in conjuncts_of(node.residual):
                if not isinstance(conjunct, Cmp) or conjunct.op not in flip:
                    continue
                if not (
                    isinstance(conjunct.left, Col)
                    and isinstance(conjunct.right, Col)
                ):
                    continue
                a, b = conjunct.left.name, conjunct.right.name
                sides = {}
                for port, child in enumerate(node.children):
                    for attr in (a, b):
                        if attr in child.schema:
                            sides[attr] = port
                if sides.get(a) is None or sides.get(b) is None:
                    continue
                if sides[a] == sides[b]:
                    continue
                # When the side holding `b` completes, rows streaming in
                # with `a` must satisfy a <op> (bound over b); vice versa
                # with the operator flipped.
                self._range_opps.setdefault(
                    (node.node_id, sides[b]), []
                ).append((b, a, conjunct.op))
                self._range_opps.setdefault(
                    (node.node_id, sides[a]), []
                ).append((a, b, flip[conjunct.op]))

    # -- execution hooks ------------------------------------------------------

    def after_tuple(self, op: Operator, port: int, row) -> None:
        sets = self._working.get((op.op_id, port))
        if not sets:
            return
        charge = self.ctx.cost_model.aip_insert
        for ws in sets:
            self.ctx.charge(charge)
            ws.aip_set.add(row[ws.key_index])
        if self.memory_budget is not None:
            self._budget_check_countdown -= 1
            if self._budget_check_countdown <= 0:
                self._budget_check_countdown = 256
                self._enforce_budget()

    def after_tuples(self, op: Operator, port: int, rows) -> None:
        """Bulk working-set maintenance for the batch path: identical
        set contents and tick-exact charge totals, one call per batch.
        (Budgeted runs never reach here — ``batch_safe`` keeps them on
        the per-tuple path so shed decisions keep their row cadence.)"""
        sets = self._working.get((op.op_id, port))
        if not sets:
            return
        self.ctx.charge_events(
            len(rows) * len(sets), self.ctx.cost_model.aip_insert
        )
        for ws in sets:
            idx = ws.key_index
            ws.aip_set.add_many([row[idx] for row in rows])

    def after_tuples_page(self, op: Operator, port: int, page) -> None:
        """Page form: working sets only need key columns, which the
        :class:`~repro.exec.pages.ColumnBatch` hands over zero-copy —
        no row re-materialisation, same set contents and charges."""
        sets = self._working.get((op.op_id, port))
        if not sets:
            return
        self.ctx.charge_events(
            page.n_rows * len(sets), self.ctx.cost_model.aip_insert
        )
        for ws in sets:
            ws.aip_set.add_many(page.columns[ws.key_index])

    def _enforce_budget(self) -> None:
        """Shed working-set state until under the configured budget.

        Hash-set summaries shrink per bucket (paper Section V: "one can
        discard portions, on a per-bucket basis"); fixed-size summaries
        (Bloom) are discarded whole, largest first.
        """
        from repro.summaries.hashset import HashSetSummary

        while (
            self.ctx.metrics.state_bytes_of(self._state_owner)
            > self.memory_budget
        ):
            victim_party, victim = None, None
            for party, sets in self._working.items():
                for ws in sets:
                    if victim is None or (
                        ws.aip_set.byte_size() > victim.aip_set.byte_size()
                    ):
                        victim_party, victim = party, ws
            if victim is None:
                break  # nothing left to shed
            before = victim.aip_set.byte_size()
            summary = victim.aip_set.summary
            if isinstance(summary, HashSetSummary) and summary.byte_size() > 64:
                summary.shrink_to(max(64, summary.byte_size() // 2))
                reclaimed = before - victim.aip_set.byte_size()
                if reclaimed <= 0:
                    self._drop_working_set(victim_party, victim)
                else:
                    self.ctx.metrics.adjust_state(self._state_owner, -reclaimed)
            else:
                self._drop_working_set(victim_party, victim)

    def _drop_working_set(self, party: Tuple[int, int], ws: _WorkingSet) -> None:
        sets = self._working.get(party, [])
        if ws in sets:
            sets.remove(ws)
            if not sets:
                self._working.pop(party, None)
            self.ctx.metrics.adjust_state(
                self._state_owner, -ws.aip_set.byte_size()
            )
            self.working_sets_discarded += 1

    def on_input_finished(self, op: Operator, port: int) -> None:
        party = (op.op_id, port)

        # Publish working sets built from received tuples.
        for ws in self._working.pop(party, ()):  # noqa: B020
            self.ctx.metrics.aip_sets_created += 1
            self.ctx.notify_aip_publish(op, port, ws.aip_set)
            self.registry.publish(ws.aip_set)

        # Publish completion-time sets over computed attributes.
        cm = self.ctx.cost_model
        for attr in self._completion_attrs.pop(party, ()):
            spec = self.registry.spec_for(attr)
            if spec is None or (
                self.prune_uninterested and not self.registry.is_wanted(attr)
            ):
                continue
            # Build straight from the state iterator — one pass, no
            # intermediate list — then charge from the element count the
            # summary recorded (identical to pre-counting the values).
            aip_set = AIPSet.from_values(
                attr, spec, "%s:%d!" % (op.name, port),
                op.state_values(port, attr),
            )
            self.ctx.charge(aip_set.summary.n_added * cm.aip_build_per_row)
            self.ctx.metrics.adjust_state(self._state_owner, aip_set.byte_size())
            self.ctx.metrics.aip_sets_created += 1
            self.ctx.notify_aip_publish(op, port, aip_set)
            self.registry.publish(aip_set)

        # Range-passing: completed side of a residual inequality yields
        # a bound filter for the still-streaming side.
        if self.enable_range_filters:
            self._publish_range_bounds(op, port)

        # Decrement interest; discard working sets nobody can use now.
        emptied = self.registry.drop_interest(party)
        if emptied:
            for other_party, sets in list(self._working.items()):
                kept = []
                for ws in sets:
                    if self.registry.root_of(ws.attr) in emptied:
                        self.ctx.metrics.adjust_state(
                            self._state_owner, -ws.aip_set.byte_size()
                        )
                    else:
                        kept.append(ws)
                if kept:
                    self._working[other_party] = kept
                else:
                    self._working.pop(other_party, None)

    def _publish_range_bounds(self, op: Operator, port: int) -> None:
        opportunities = self._range_opps.get((op.op_id, port))
        if not opportunities or not op.state_complete(port):
            return
        from repro.summaries.bounds import BoundSummary, MinMaxSummary

        other = 1 - port
        if op.input_done(other):
            return
        cm = self.ctx.cost_model
        for completed_attr, streaming_attr, streaming_op in opportunities:
            minmax = MinMaxSummary()
            n = minmax.add_many(op.state_values(port, completed_attr))
            self.ctx.charge(n * cm.aip_build_per_row)
            bound = BoundSummary.for_predicate(streaming_op, minmax)
            if bound is None:
                continue
            op.register_filter(
                other, streaming_attr, bound,
                label="FF-range:%s" % completed_attr,
            )
            self.ctx.metrics.aip_sets_created += 1

    def on_query_end(self) -> None:
        # Release remaining AIP set state.
        if self._state_owner is not None:
            remaining = self.ctx.metrics.state_bytes_of(self._state_owner)
            if remaining:
                self.ctx.metrics.adjust_state(self._state_owner, -remaining)

    # -- filter injection -------------------------------------------------------

    def _on_published(self, root: str, aip_set: AIPSet, replaced: bool) -> None:
        for party in self.registry.interested_parties(aip_set.attr):
            node_id, port = party
            op = self.plan.by_node_id.get(node_id)
            if op is None:
                continue
            attr = self._interest_attr.get((party, root))
            if attr is None:
                continue
            if isinstance(op, PScan):
                if not self.inject_at_scans or op.exhausted:
                    continue
            elif op.input_done(port):
                continue
            existing = self._injected.get((party, id(aip_set.spec)))
            label = "FF:%s" % aip_set.source_label
            if replaced and existing is not None:
                new = InjectedFilter(
                    existing.key_index, attr, aip_set.summary, label
                )
                op.replace_filter(port, existing, new)
                self._injected[(party, id(aip_set.spec))] = new
            else:
                injected = op.register_filter(port, attr, aip_set.summary, label)
                self._injected[(party, id(aip_set.spec))] = injected
