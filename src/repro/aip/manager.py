"""Cost-Based AIP: the AIP Manager (Section IV-B of the paper).

Unlike Feed-Forward, nothing is built incrementally.  Normal query
processing proceeds until an input of a stateful operator completes.
The AIP Manager is then invoked; it

1. re-grounds the optimizer's cardinality estimates in runtime counter
   values (``UPDATEESTIMATES`` — the engine's per-operator cardinality
   counters exist for exactly this);
2. for each attribute recoverable from the completed state, runs
   ``ESTIMATEBENEFIT`` (Figure 4): walk the interested targets from the
   deepest upward, estimate the filtering benefit on tuples *still to
   arrive*, avoid double counting via the ``used`` ancestor set, and
   compare total savings against the cost of building (and, for remote
   targets, shipping) the filter;
3. if beneficial, builds a Bloom filter by scanning the operator state
   and injects it: locally through the engine's on-the-fly semijoin
   registration, remotely (distributed AIP, Section V-B) by installing
   a source-side filter whose activation is delayed by the manager's
   polling interval plus the filter's transfer time — an adaptive
   Bloomjoin.  A *partitioned* source is one logical target with many
   destinations: the benefit model aggregates the tuples still to
   arrive across its live partitions, and shipping sends a copy of the
   filter to **every** partition, each paying its own site link's
   latency and transfer time (per-partition staleness and transfer
   accounting).

Existing filters over the same key are intersected where geometry
allows rather than stacked (Section IV-B).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.aip.candidates import CandidateIndex, aip_candidates
from repro.aip.sets import BLOOM, AIPSet, AIPSetSpec
from repro.exec.context import ExecutionContext, ExecutionStrategy
from repro.exec.operators.base import InjectedFilter, Operator
from repro.exec.operators.scan import PScan
from repro.exec.translate import PhysicalPlan
from repro.optimizer.cost import PlanCoster
from repro.optimizer.estimator import CardinalityEstimator
from repro.optimizer.predicate_graph import SourcePredicateGraph
from repro.plan.logical import LogicalNode
from repro.summaries.bloom import BloomFilter

Party = Tuple[int, int]


class CostBasedStrategy(ExecutionStrategy):
    """The paper's cost-based AIP algorithm with distributed extensions."""

    def __init__(
        self,
        fp_rate: float = 0.05,
        n_hashes: int = 1,
        distributed: bool = True,
        poll_interval: float = 0.050,
        benefit_margin: float = 1.0,
    ):
        self.fp_rate = fp_rate
        self.n_hashes = n_hashes
        #: Ship filters to remote scans (Section V-B extension).
        self.distributed = distributed
        #: The master AIP Manager "periodically polls all secondary
        #: sites"; remote information passing pays this staleness.
        self.poll_interval = poll_interval
        #: Savings must exceed ``benefit_margin * create_cost``.
        self.benefit_margin = benefit_margin
        self.ctx: Optional[ExecutionContext] = None
        self.plan: Optional[PhysicalPlan] = None
        self.graph: Optional[SourcePredicateGraph] = None
        self.index: Optional[CandidateIndex] = None
        self.estimator: Optional[CardinalityEstimator] = None
        self.coster: Optional[PlanCoster] = None
        self._parents: Dict[int, List[Tuple[LogicalNode, int]]] = {}
        self._depth: Dict[int, int] = {}
        self._injected: Dict[Tuple[Party, str], InjectedFilter] = {}
        self._shipped: Set[Tuple[int, str]] = set()
        self._built_sets: Dict[Tuple[Party, str], AIPSet] = {}
        self._state_owner: Optional[int] = None

    def describe(self) -> str:
        return "cost-based"

    # -- initialization -----------------------------------------------------

    def attach(self, ctx: ExecutionContext, plan: PhysicalPlan) -> None:
        self.ctx = ctx
        self.plan = plan
        self.graph = SourcePredicateGraph.from_plan(plan.logical_root)
        self.index = aip_candidates(plan, self.graph)
        self.estimator = CardinalityEstimator(ctx.catalog)
        self.coster = PlanCoster(ctx.catalog, ctx.cost_model, self.estimator)
        from repro.plan.logical import fresh_node_id
        self._state_owner = fresh_node_id()
        self._map_plan(plan.logical_root)
        # Partition scans register under fresh physical ids; they sit at
        # their logical scan's depth so target ordering (deepest first)
        # treats every partition exactly like the unpartitioned scan.
        for scan in plan.scans:
            if scan.op_id not in self._depth:
                logical = getattr(scan, "logical", None)
                if logical is not None:
                    self._depth[scan.op_id] = self._depth.get(
                        logical.node_id, 0
                    )

    def _map_plan(self, root: LogicalNode) -> None:
        """Record parent links and node depths for benefit propagation."""
        self._depth[root.node_id] = 0
        stack = [(root, 0)]
        seen = {root.node_id}
        while stack:
            node, depth = stack.pop()
            for port, child in enumerate(node.children):
                self._parents.setdefault(child.node_id, []).append((node, port))
                if child.node_id not in seen:
                    seen.add(child.node_id)
                    self._depth[child.node_id] = depth + 1
                    stack.append((child, depth + 1))

    # -- runtime ------------------------------------------------------------

    def on_input_finished(self, op: Operator, port: int) -> None:
        party = (op.op_id, port)
        attrs = self.index.producible.get(party)
        if not attrs:
            return
        if not op.state_complete(port):
            # Short-circuited join sides and semijoin probe buffers do
            # not hold the complete subexpression result; summarising
            # them would produce false negatives.
            return
        cm = self.ctx.cost_model
        self.ctx.charge(cm.manager_invocation)
        self._update_estimates()
        stored = op.stored_count(port)
        for attr in attrs:
            if self._estimate_benefit(attr, op, port, stored):
                self._build_and_inject(attr, op, port, stored)
            else:
                self.ctx.metrics.aip_sets_declined += 1

    def _update_estimates(self) -> None:
        """UPDATEESTIMATES: feed actual output counts back in."""
        for node_id, physical in self.plan.by_node_id.items():
            counters = self.ctx.metrics.operators.get(physical.op_id)
            if counters is None:
                continue
            complete = physical._output_done or (
                isinstance(physical, PScan) and physical.exhausted
            )
            self.estimator.observe(node_id, counters.tuples_out, complete)

    # -- ESTIMATEBENEFIT ------------------------------------------------------

    def _link_params(self, site: Optional[str]) -> Tuple[float, float]:
        """(latency, bandwidth) toward ``site``: the run's network model
        when one is attached, else the cost model's uniform constants."""
        cm = self.ctx.cost_model
        network = getattr(self.ctx, "network", None)
        if network is not None and site is not None:
            link = network.link_to(site)
            return link.latency, link.bandwidth
        return cm.network_latency, cm.network_bandwidth

    @staticmethod
    def _partition_group_id(target: Operator) -> Optional[int]:
        """Logical-scan id grouping the partitions of one fanned-out
        table, or None for ordinary targets."""
        if (
            isinstance(target, PScan)
            and target.partition_index is not None
            and getattr(target, "logical", None) is not None
        ):
            return target.logical.node_id
        return None

    def _estimate_benefit(
        self, attr: str, op: Operator, port: int, stored: int
    ) -> bool:
        cm = self.ctx.cost_model
        create_cost = self.coster.aip_build_cost(stored)
        d_set = self._set_distinct(attr, op, port, stored)
        filter_bytes = self._filter_bytes(attr, stored)

        savings = 0.0
        used: Set[int] = set()
        grouped: Set[int] = set()
        targets = self._live_targets(attr, exclude=(op.op_id, port))
        # "for n in InterestedIn[A] in inverse order of depth" — deepest
        # first, so benefits at lower nodes claim their ancestors.
        targets.sort(key=lambda t: -self._depth.get(t[0].op_id, 0))
        for target_op, target_port, target_attr in targets:
            group = self._partition_group_id(target_op)
            if group is not None:
                # All live partitions of one logical scan are ONE
                # target with many destinations: their disjoint streams
                # share the selectivity estimate and the downstream
                # walk, and sum the tuples still to arrive.
                if group in grouped:
                    continue
                grouped.add(group)
                siblings = [
                    t for t in targets
                    if self._partition_group_id(t[0]) == group
                ]
                remaining = 0.0
                live_parts = []
                for sibling, _sport, _sattr in siblings:
                    part_remaining = self._remaining_tuples(sibling, 0)
                    if part_remaining > 0:
                        remaining += part_remaining
                        live_parts.append((sibling, part_remaining))
                if remaining <= 0:
                    continue
            else:
                remaining = self._remaining_tuples(target_op, target_port)
                if remaining <= 0:
                    continue
                live_parts = None
            d_target = self._target_distinct(target_op, target_port, target_attr)
            sel = min(1.0, d_set / max(d_target, 1.0))
            sel_eff = sel + self.fp_rate * (1.0 - sel)
            pruned = remaining * (1.0 - sel_eff)
            probe_cost = remaining * cm.semijoin_probe

            per_tuple = self._per_tuple_cost(target_op)
            downstream = self._downstream_per_tuple(target_op, used)
            use_benefit = pruned * (per_tuple + downstream) - probe_cost

            if self.distributed and live_parts is not None:
                # Per-partition wire accounting: each partition's pruned
                # share skips its own link's (fan-out multiplied)
                # transfer, and shipping pays one filter copy per
                # partition.
                row_bytes = target_op.out_schema.row_byte_size()
                for part_scan, part_remaining in live_parts:
                    latency, bandwidth = self._link_params(part_scan.site)
                    fanout = getattr(part_scan.arrival, "fanout", 1)
                    part_pruned = part_remaining * (1.0 - sel_eff)
                    use_benefit += part_pruned * (
                        row_bytes * fanout / bandwidth
                    )
                    # Each shipped copy pays its link's latency plus
                    # transfer — the same delay activation charges.
                    create_cost += latency + filter_bytes / bandwidth
            elif (
                self.distributed
                and isinstance(target_op, PScan)
                and target_op.site is not None
            ):
                row_bytes = target_op.out_schema.row_byte_size()
                latency, bandwidth = self._link_params(target_op.site)
                fanout = getattr(target_op.arrival, "fanout", 1)
                use_benefit += pruned * (row_bytes * fanout / bandwidth)
                create_cost += latency + filter_bytes / bandwidth

            if use_benefit > 0:
                savings += use_benefit
                claim = group if group is not None else target_op.op_id
                used.add(claim)
                used.update(self._ancestor_ids(claim))
        return savings > create_cost * self.benefit_margin

    def _live_targets(
        self, attr: str, exclude: Party
    ) -> List[Tuple[Operator, int, str]]:
        out = []
        for party in self.index.interested_in(self.graph, attr):
            if party == exclude:
                continue
            node_id, port = party
            target = self.plan.by_node_id.get(node_id)
            if target is None:
                continue
            if isinstance(target, PScan):
                if target.exhausted:
                    continue
            elif target.input_done(port):
                continue
            target_attr = self.index.attr_at(self.graph, party, attr)
            if target_attr is None:
                continue
            out.append((target, port, target_attr))
        return out

    def _remaining_tuples(self, target: Operator, port: int) -> float:
        """Expected tuples still to arrive on a target port."""
        if isinstance(target, PScan):
            total = float(len(target.rows))
            seen = float(self.ctx.metrics.counters(target.op_id).tuples_in)
            return max(0.0, total - seen)
        child = target.children[port]
        if child is None:
            return 0.0
        child_logical = getattr(child, "logical", None)
        if child_logical is None:
            return 0.0
        total = self.estimator.estimate(child_logical).rows
        seen = float(self.ctx.metrics.counters(target.op_id).tuples_in)
        if target.n_inputs > 1:
            # Counters aggregate both ports; halve as an approximation.
            seen /= 2.0
        return max(0.0, total - seen)

    def _set_distinct(self, attr: str, op: Operator, port: int, stored: int) -> float:
        logical = getattr(op, "logical", None)
        if logical is not None and port < len(logical.children):
            est = self.estimator.estimate(logical.children[port])
            return min(float(stored), est.distinct_of(attr))
        return float(stored)

    def _target_distinct(self, target: Operator, port: int, attr: str) -> float:
        if isinstance(target, PScan):
            logical = getattr(target, "logical", None)
        else:
            child = target.children[port]
            logical = getattr(child, "logical", None) if child is not None else None
        if logical is None:
            return 1.0
        return self.estimator.estimate(logical).distinct_of(attr)

    def _per_tuple_cost(self, target: Operator) -> float:
        cm = self.ctx.cost_model
        if isinstance(target, PScan):
            # Pruning at a scan saves the per-tuple work of everything
            # between the scan and the next stateful operator, which is
            # approximated by the downstream walk; locally only the
            # emission cost is saved.
            return cm.tuple_base
        return cm.tuple_base + cm.hash_probe + cm.hash_insert

    def _downstream_per_tuple(self, target: Operator, used: Set[int]) -> float:
        """Expected downstream cost of one tuple entering ``target``,
        following estimated fan-out through its ancestors and skipping
        nodes whose benefit was already claimed (the ``used`` set)."""
        cm = self.ctx.cost_model
        logical = getattr(target, "logical", None)
        if logical is None:
            return 0.0
        total = 0.0
        fan = 1.0
        node = logical
        for _ in range(64):  # cycle guard; plans are shallow
            parents = self._parents.get(node.node_id)
            if not parents:
                break
            parent, _port = parents[0]
            in_rows = max(self.estimator.estimate(node).rows, 1.0)
            out_rows = self.estimator.estimate(parent).rows
            if parent.node_id not in used:
                total += fan * (cm.tuple_base + cm.hash_probe)
            fan *= max(out_rows / in_rows, 0.0)
            fan = min(fan, 64.0)  # keep the walk numerically sane
            node = parent
        return total

    def _ancestor_ids(self, node_id: int) -> Set[int]:
        out: Set[int] = set()
        frontier = [node_id]
        while frontier:
            current = frontier.pop()
            for parent, _port in self._parents.get(current, ()):
                if parent.node_id not in out:
                    out.add(parent.node_id)
                    frontier.append(parent.node_id)
        return out

    def _filter_bytes(self, attr: str, stored: int) -> int:
        from repro.summaries.bloom import bits_for
        return bits_for(max(stored, 1), self.fp_rate, self.n_hashes) // 8 + 1

    # -- construction and injection -------------------------------------------

    def _build_and_inject(
        self, attr: str, op: Operator, port: int, stored: int
    ) -> None:
        cm = self.ctx.cost_model
        spec = AIPSetSpec(
            self.graph.eq.find(attr),
            stored,
            kind=BLOOM,
            fp_rate=self.fp_rate,
            n_hashes=self.n_hashes,
        )
        self.ctx.charge(stored * cm.aip_build_per_row)
        aip_set = AIPSet.from_values(
            attr, spec, "CB:%s#%d:%d" % (op.name, op.op_id, port),
            op.state_values(port, attr),
        )
        self.ctx.metrics.adjust_state(self._state_owner, aip_set.byte_size())
        self.ctx.metrics.aip_sets_created += 1
        self._built_sets[((op.op_id, port), attr)] = aip_set
        self.ctx.notify_aip_publish(op, port, aip_set)

        for target, target_port, target_attr in self._live_targets(
            attr, exclude=(op.op_id, port)
        ):
            if (
                self.distributed
                and isinstance(target, PScan)
                and target.site is not None
            ):
                self._ship_to_source(target, target_attr, aip_set)
                continue
            key = ((target.op_id, target_port), spec.eq_root)
            existing = self._injected.get(key)
            if existing is not None:
                merged = self._try_intersect(existing.summary, aip_set.summary)
                if merged is not None:
                    replacement = InjectedFilter(
                        existing.key_index, target_attr, merged, existing.label
                    )
                    target.replace_filter(target_port, existing, replacement)
                    self._injected[key] = replacement
                    continue
            injected = target.register_filter(
                target_port, target_attr, aip_set.summary,
                label=aip_set.source_label,
            )
            self._injected[key] = injected

    @staticmethod
    def _try_intersect(a, b):
        if (
            isinstance(a, BloomFilter)
            and isinstance(b, BloomFilter)
            and a.compatible_with(b)
        ):
            return a.intersect(b)
        return None

    def _ship_to_source(
        self, scan: PScan, attr: str, aip_set: AIPSet
    ) -> None:
        """Distributed AIP: send the filter to the remote site; it takes
        effect after polling staleness plus transfer time.

        Bloom filters cross the simulated wire by value — geometry plus
        the word buffer (:meth:`BloomFilter.to_payload`) — so the remote
        site holds its own copy, exactly as a real deployment would.
        The copy is built from completed state and never mutated, so
        probe outcomes are identical to sharing the object.
        """
        ship_key = (scan.op_id, aip_set.eq_root)
        if ship_key in self._shipped:
            return
        self._shipped.add(ship_key)
        size = aip_set.byte_size()
        latency, bandwidth = self._link_params(scan.site)
        activation = (
            self.ctx.metrics.clock
            + self.poll_interval / 2.0
            + latency
            + size / bandwidth
        )
        summary = aip_set.summary
        if isinstance(summary, BloomFilter):
            summary = type(summary).from_payload(summary.to_payload())
        scan.install_source_filter(attr, summary, activation)
        self.ctx.metrics.aip_bytes_shipped += size
        self.ctx.log(
            "shipped %d-byte filter on %s to site %s (active t=%g)"
            % (size, attr, scan.site, activation)
        )

    def on_query_end(self) -> None:
        if self._state_owner is not None:
            remaining = self.ctx.metrics.state_bytes_of(self._state_owner)
            if remaining:
                self.ctx.metrics.adjust_state(self._state_owner, -remaining)
