"""The socket front door: a threaded server around one QueryService.

Architecture (DESIGN.md section 12): an **accept thread** hands each
connection to its own daemon **handler thread**; handlers parse frames
and enqueue :class:`_Request`\\ s on one queue; a single **dispatcher
thread** drains that queue in groups and drives the service — so
concurrent clients genuinely *batch* (one ``service.run()`` packs every
request that arrived while the previous batch executed, exactly the
group-commit shape the batch-sequential service wants), while each
handler streams its own response frames back at its client's pace.  A
slow consumer therefore throttles only its own connection: the
dispatcher resolved its request long ago and moved on.

Admission, SLO shedding and the per-tenant hard quotas all run inside
:meth:`QueryService._dispatch` — the server adds no second policy
layer; it just translates shed outcomes into ``shed`` frames carrying
``retry_after_s`` hints.

Observability rides the service's own registry and tracer: gauges
``net.connections`` / ``net.inflight``, one ``net.frames`` counter with
per-type labeled children, a wall-clock request-latency histogram, and
per-frame trace instants.  The admin frames (``stats``, ``proclist``,
``profile``, ``health``) are answered synchronously on the connection's
handler thread — they never enter the dispatcher queue, so a slow admin
consumer throttles only itself and query dispatch is unaffected.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from typing import Dict, List, Optional

from repro.net.protocol import (
    ADMIN_FRAMES, FRAME_ERROR, FRAME_HEALTH, FRAME_HELLO, FRAME_PROCLIST,
    FRAME_PROFILE, FRAME_QUERY, FRAME_ROWS, FRAME_SHED, FRAME_SHUTDOWN,
    FRAME_STATS, FRAME_SUMMARY, MAX_FRAME_BYTES, ROWS_PER_FRAME,
    ConnectionClosed, ProtocolError, check_hello, encode_frame, hello_frame,
    read_frame,
)
from repro.obs.export import to_prometheus
from repro.service.service import ERROR, SHED_STATUS

#: Dispatcher wake-up sentinel.
_STOP = object()

#: Floor on the retry hint a shed frame carries, in (virtual) seconds.
MIN_RETRY_HINT_S = 0.001


class _Request:
    """One query in flight between a handler and the dispatcher."""

    __slots__ = (
        "text", "strategy", "label", "tenant", "done", "result", "error",
        "retry_after_s", "proc",
    )

    def __init__(self, text, strategy, label, tenant):
        self.text = text
        self.strategy = strategy
        self.label = label
        self.tenant = tenant
        self.done = threading.Event()
        #: The server's live proc-table entry for this request (a
        #: plain dict the dispatcher and handler update in place;
        #: ``proclist`` snapshots it).
        self.proc: Optional[Dict] = None
        #: A repro.service.result.QueryResult on success/shed/error
        #: status; None when ``error`` carries a message instead.
        self.result = None
        self.error: Optional[str] = None
        #: Backoff hint attached to shed outcomes (the virtual seconds
        #: the batch that refused this query took — by then capacity
        #: has turned over at least once).
        self.retry_after_s: float = MIN_RETRY_HINT_S

    def fail(self, message: str) -> None:
        self.error = message
        self.done.set()

    def resolve(self, result, retry_after_s: float) -> None:
        self.result = result
        self.retry_after_s = max(retry_after_s, MIN_RETRY_HINT_S)
        self.done.set()


class ReproServer:
    """Serves the length-prefixed JSON protocol on a TCP listener.

    The server *wraps* a long-lived :class:`~repro.service.QueryService`
    and owns its lifecycle while running: ``close()`` (or the context
    manager) stops the listener, fails outstanding requests, closes
    every connection, and closes the service (spill dirs, worker
    pools) unless it was passed in with ``owns_service=False``.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 128,
        max_batch: int = 64,
        request_timeout_s: float = 300.0,
        owns_service: bool = True,
        max_frame: int = MAX_FRAME_BYTES,
        prom_out: Optional[str] = None,
        prom_interval_s: float = 5.0,
    ):
        self.service = service
        self.host = host
        self._requested_port = port
        self.backlog = backlog
        #: Most requests one dispatcher round may drain; bounds how
        #: long the oldest queued request waits for batch formation.
        self.max_batch = max_batch
        self.request_timeout_s = request_timeout_s
        self.owns_service = owns_service
        self.max_frame = max_frame
        #: When set, a daemon thread rewrites this path with the
        #: Prometheus text-format page every ``prom_interval_s``
        #: wall seconds (plus once at shutdown) — file-based scraping
        #: for environments without an HTTP scrape path.
        self.prom_out = prom_out
        self.prom_interval_s = prom_interval_s
        self.registry = service.registry
        self.tracer = service.tracer
        self._listener: Optional[socket.socket] = None
        self._queue: "queue.Queue" = queue.Queue()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._conns: set = set()
        self._conn_lock = threading.Lock()
        self._obs_lock = threading.Lock()
        self._inflight = 0
        self._served_queries = 0
        self._started = False
        self._closed = False
        #: Live in-flight query table for ``proclist``: server-assigned
        #: qid -> mutable entry dict.  Entries are added when a query
        #: frame is accepted and removed when its terminal frame has
        #: been sent (or the request failed).
        self._proc: Dict[int, Dict] = {}
        self._proc_lock = threading.Lock()
        self._next_qid = 0
        self._started_wall = time.monotonic()

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` ephemeral binds)."""
        if self._listener is None:
            return self._requested_port
        return self._listener.getsockname()[1]

    def start(self) -> "ReproServer":
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(self.backlog)
        self._listener = listener
        self._started_wall = time.monotonic()
        targets = [
            ("repro-net-dispatch", self._dispatch_loop),
            ("repro-net-accept", self._accept_loop),
        ]
        if self.prom_out is not None:
            targets.append(("repro-net-prom", self._prom_loop))
        for name, target in targets:
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self) -> None:
        """Signal shutdown; safe to call from handler threads."""
        self._stop.set()
        listener = self._listener
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        self._queue.put(_STOP)

    def close(self) -> None:
        """Stop, join the core threads, drop connections, and (when
        owned) close the underlying service."""
        if self._closed:
            return
        self._closed = True
        self.stop()
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=10.0)
        with self._conn_lock:
            conns = list(self._conns)
            self._conns.clear()
        for conn in conns:
            self._drop(conn)
        if self.owns_service:
            self.service.close()

    def _drop(self, conn) -> None:
        try:
            conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            conn.close()
        except OSError:
            pass

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until shutdown is signalled; True if it was."""
        return self._stop.wait(timeout)

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def __enter__(self) -> "ReproServer":
        if not self._started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- observability -----------------------------------------------------

    def _observe(self, connections_delta=0, inflight_delta=0,
                 frame: Optional[str] = None,
                 wall_latency_s: Optional[float] = None) -> None:
        """All registry writes funnel through one lock: the registry
        (like the service) is single-threaded by design, and the
        server is the only concurrent writer in the process."""
        with self._obs_lock:
            if connections_delta:
                with self._conn_lock:
                    live = len(self._conns)
                self.registry.gauge("net.connections").set(live)
            if inflight_delta:
                self._inflight += inflight_delta
                self.registry.gauge("net.inflight").set(self._inflight)
            if frame is not None:
                self.registry.counter("net.frames").labels(
                    type=frame
                ).inc()
                if self.tracer is not None:
                    self.tracer.instant_now(
                        "net.frame.%s" % frame, "net", None
                    )
            if wall_latency_s is not None:
                self.registry.histogram(
                    "net.request_wall_s"
                ).observe(wall_latency_s)

    def _sync_trace_drops(self) -> None:
        """Mirror the tracer's ring evictions into the registry (the
        counter is monotone, so fold in the delta since last sync)."""
        tracer = self.tracer
        if tracer is None:
            return
        counter = self.registry.counter("trace.dropped_events")
        dropped = tracer.dropped
        if dropped > counter.value:
            with self._obs_lock:
                delta = dropped - counter.value
                if delta > 0:
                    counter.inc(delta)

    # -- admin frames ------------------------------------------------------

    def _stats_payload(self) -> Dict:
        """The ``stats`` frame body: registry snapshot + live gauges."""
        self._sync_trace_drops()
        service = self.service
        with self._conn_lock:
            connections = len(self._conns)
        payload = {
            "registry": self.registry.snapshot(),
            "server": {
                "connections": connections,
                "inflight": self._inflight,
                "served_queries": self._served_queries,
                "uptime_wall_s": time.monotonic() - self._started_wall,
                "queue_depth": self._queue.qsize(),
                "max_batch": self.max_batch,
            },
            "service": {
                "clock": service.clock,
                "batches_run": service.batches_run,
                "pending": len(service._pending),
                "peak_state_bytes": service.peak_state_bytes,
                "profiles_retained": len(service.profiles),
                "profiles_evicted": service.profiles.evicted,
                "feedback_fingerprints": len(service.feedback),
            },
        }
        tracer = self.tracer
        if tracer is not None:
            payload["trace"] = {
                "events": len(tracer),
                "dropped": tracer.dropped,
                "max_events": tracer.max_events,
            }
        eventlog = getattr(service, "eventlog", None)
        if eventlog is not None:
            payload["eventlog"] = {
                "path": eventlog.path,
                "events_written": eventlog.events_written,
                "rotations": eventlog.rotations,
            }
        return payload

    def _proclist_payload(self) -> List[Dict]:
        now = time.monotonic()
        clock = self.service.clock
        with self._proc_lock:
            entries = [dict(entry) for entry in self._proc.values()]
        rows = []
        for entry in sorted(entries, key=lambda e: e["qid"]):
            submitted = entry.get("clock_submitted")
            rows.append({
                "qid": entry["qid"],
                "tenant": entry["tenant"],
                "label": entry["label"],
                "phase": entry["phase"],
                "elapsed_wall_s": now - entry["enqueued_wall"],
                "virtual_elapsed_s": (
                    clock - submitted if submitted is not None else 0.0
                ),
                "seq": entry.get("seq"),
                "state_estimate_bytes": entry.get("state_estimate"),
                "worker": entry.get("worker"),
            })
        return rows

    def _admin_response(self, kind: str, frame: Dict) -> Dict:
        """Answer one admin frame.  Runs on the connection's handler
        thread; reads shared state under the appropriate locks but
        never enqueues on the dispatcher, so a slow admin consumer
        cannot stall query dispatch."""
        qid = frame.get("id")
        if kind == FRAME_HEALTH:
            with self._conn_lock:
                connections = len(self._conns)
            return {
                "type": FRAME_HEALTH, "id": qid,
                "status": "stopping" if self._stop.is_set() else "ok",
                "uptime_wall_s": time.monotonic() - self._started_wall,
                "connections": connections,
                "inflight": self._inflight,
                "served_queries": self._served_queries,
                "batches_run": self.service.batches_run,
            }
        if kind == FRAME_STATS:
            response = {
                "type": FRAME_STATS, "id": qid,
                "stats": self._stats_payload(),
            }
            if frame.get("prom"):
                response["prom"] = to_prometheus(self.registry)
            return response
        if kind == FRAME_PROCLIST:
            return {
                "type": FRAME_PROCLIST, "id": qid,
                "queries": self._proclist_payload(),
            }
        # FRAME_PROFILE: an unknown/evicted seq is a null profile, not
        # an error — eviction is a normal state for a bounded ring.
        seq = frame.get("seq")
        profile = (
            self.service.profiles.get(seq)
            if isinstance(seq, int) and not isinstance(seq, bool) else None
        )
        return {
            "type": FRAME_PROFILE, "id": qid,
            "profile": profile.as_dict() if profile is not None else None,
        }

    def _prom_loop(self) -> None:
        """Periodic Prometheus snapshot writer (``prom_out``)."""
        while not self._stop.wait(self.prom_interval_s):
            self._write_prom()
        self._write_prom()  # final page so short runs export something

    def _write_prom(self) -> None:
        self._sync_trace_drops()
        try:
            with open(self.prom_out, "w", encoding="utf-8") as fh:
                fh.write(to_prometheus(self.registry))
        except OSError:
            pass  # an unwritable path must not kill the server

    # -- accept / handler threads ------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, addr = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            with self._conn_lock:
                self._conns.add(conn)
            self._observe(connections_delta=1)
            thread = threading.Thread(
                target=self._handle, args=(conn,),
                name="repro-net-conn", daemon=True,
            )
            thread.start()

    def _handle(self, conn) -> None:
        rfile = conn.makefile("rb")
        try:
            hello = read_frame(rfile, self.max_frame)
            check_hello(hello, "client")
            self._observe(frame=FRAME_HELLO)
            tenant = hello.get("tenant")
            conn.sendall(encode_frame(hello_frame(server=True)))
            while not self._stop.is_set():
                frame = read_frame(rfile, self.max_frame)
                kind = frame.get("type")
                if kind == FRAME_SHUTDOWN:
                    self._observe(frame=FRAME_SHUTDOWN)
                    conn.sendall(encode_frame({"type": FRAME_SHUTDOWN}))
                    self.stop()
                    return
                if kind in ADMIN_FRAMES:
                    self._observe(frame=kind)
                    conn.sendall(encode_frame(
                        self._admin_response(kind, frame)
                    ))
                    continue
                if kind != FRAME_QUERY:
                    raise ProtocolError(
                        "unexpected %r frame mid-session" % kind
                    )
                self._observe(frame=FRAME_QUERY)
                self._serve_query(conn, frame, tenant)
        except ConnectionClosed:
            pass
        except ProtocolError as exc:
            self._try_send(conn, {
                "type": FRAME_ERROR, "id": None, "message": str(exc),
            })
        except OSError:
            pass  # client went away mid-write
        finally:
            try:
                rfile.close()
            except OSError:
                pass
            with self._conn_lock:
                self._conns.discard(conn)
            self._drop(conn)
            self._observe(connections_delta=-1)

    def _serve_query(self, conn, frame: Dict, tenant) -> None:
        qid = frame.get("id")
        request = _Request(
            frame.get("text"), frame.get("strategy"), frame.get("label"),
            tenant,
        )
        if not isinstance(request.text, str) or not request.text.strip():
            conn.sendall(encode_frame({
                "type": FRAME_ERROR, "id": qid,
                "message": "query frame needs a non-empty 'text' field",
            }))
            return
        started = time.monotonic()
        with self._proc_lock:
            self._next_qid += 1
            entry = {
                "qid": self._next_qid,
                "tenant": tenant,
                "label": request.label or "sql",
                "phase": "queued",
                "enqueued_wall": started,
                "seq": None,
                "state_estimate": None,
                "clock_submitted": None,
                "worker": None,
            }
            self._proc[entry["qid"]] = entry
        request.proc = entry
        self._observe(inflight_delta=1)
        try:
            self._queue.put(request)
            if not request.done.wait(self.request_timeout_s):
                conn.sendall(encode_frame({
                    "type": FRAME_ERROR, "id": qid,
                    "message": "request timed out after %.0fs in the "
                               "service queue" % self.request_timeout_s,
                }))
                return
            self._send_response(conn, qid, request)
        finally:
            self._observe(
                inflight_delta=-1,
                wall_latency_s=time.monotonic() - started,
            )
            with self._proc_lock:
                self._proc.pop(entry["qid"], None)

    def _send_response(self, conn, qid, request: _Request) -> None:
        if request.error is not None:
            self._observe(frame=FRAME_ERROR)
            conn.sendall(encode_frame({
                "type": FRAME_ERROR, "id": qid, "message": request.error,
            }))
            return
        result = request.result
        payload = result.to_payload()
        rows = payload.pop("rows")
        if result.status == SHED_STATUS:
            self._observe(frame=FRAME_SHED)
            conn.sendall(encode_frame({
                "type": FRAME_SHED, "id": qid,
                "reason": result.reason,
                "retry_after_s": request.retry_after_s,
                "result": payload,
            }))
            return
        if result.status == ERROR:
            self._observe(frame=FRAME_ERROR)
            conn.sendall(encode_frame({
                "type": FRAME_ERROR, "id": qid,
                "message": result.reason or "query failed",
                "result": payload,
            }))
            return
        # Success: stream rows in chunks, then the summary.  Each
        # sendall may block on a slow consumer — that is the point:
        # backpressure lands on this connection's thread alone.
        if request.proc is not None:
            request.proc["phase"] = "streaming"
        for offset in range(0, len(rows), ROWS_PER_FRAME):
            self._observe(frame=FRAME_ROWS)
            conn.sendall(encode_frame({
                "type": FRAME_ROWS, "id": qid,
                "rows": rows[offset:offset + ROWS_PER_FRAME],
            }))
        self._observe(frame=FRAME_SUMMARY)
        conn.sendall(encode_frame({
            "type": FRAME_SUMMARY, "id": qid, "result": payload,
        }))

    def _try_send(self, conn, frame: Dict) -> None:
        try:
            conn.sendall(encode_frame(frame))
        except OSError:
            pass

    # -- the dispatcher ----------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                break
            requests = [item]
            while len(requests) < self.max_batch:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    self._queue.put(_STOP)
                    break
                requests.append(extra)
            self._run_requests(requests)
        # Shutdown: fail whatever is still queued so no handler hangs.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _STOP:
                item.fail("server shutting down")

    def _run_requests(self, requests: List[_Request]) -> None:
        """Drive one service batch for one drained request group."""
        service = self.service
        seqs: Dict[int, _Request] = {}
        for request in requests:
            try:
                seq = service.submit(
                    request.text, strategy=request.strategy,
                    label=request.label, tenant=request.tenant,
                )
            except Exception as exc:  # bad SQL/strategy: fail one query
                request.fail(str(exc))
                continue
            seqs[seq] = request
            proc = request.proc
            if proc is not None:
                # Proc-table promotion: the query now has a service
                # identity and a state estimate for `proclist`.
                proc["seq"] = seq
                proc["clock_submitted"] = service.clock
                for pending in service._pending:
                    if pending.seq == seq:
                        proc["state_estimate"] = pending.state_estimate
                        proc["label"] = pending.label
                        break
                proc["phase"] = "admitted"
        if not seqs:
            return
        for request in seqs.values():
            if request.proc is not None:
                request.proc["phase"] = "executing"
        try:
            report = service.run()
        except Exception as exc:  # engine fault: fail the whole group
            for request in seqs.values():
                request.fail("service batch failed: %s" % exc)
            return
        self._served_queries += len(seqs)
        elapsed = max(report.total_virtual_seconds, MIN_RETRY_HINT_S)
        by_seq = {outcome.seq: outcome for outcome in report.outcomes}
        for seq, request in seqs.items():
            outcome = by_seq.get(seq)
            if outcome is None:
                request.fail("query vanished from the service report")
                continue
            request.resolve(outcome.to_result(), retry_after_s=elapsed)


def serve(
    service,
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs,
) -> ReproServer:
    """Start a :class:`ReproServer` on ``service`` and return it."""
    return ReproServer(service, host=host, port=port, **kwargs).start()
