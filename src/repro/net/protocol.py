"""The wire protocol: versioned, length-prefixed JSON frames.

One frame on the wire is::

    +----------------+----------------------------------------+
    | 4-byte big-    | UTF-8 JSON object, exactly `length`    |
    | endian length  | bytes, with a mandatory "type" key     |
    +----------------+----------------------------------------+

Frame types (``PROTOCOL_VERSION`` = 2):

``hello``
    First frame in each direction.  Client: ``{"type": "hello",
    "version": 1, "tenant": <str|null>}``.  Server echoes its version
    and identity; a version mismatch is answered with ``error`` and
    the connection closes.
``query``
    ``{"type": "query", "id": <int>, "text": <sql-or-workload-id>,
    "strategy": <str|null>, "label": <str|null>}``.  ``id`` is the
    client's correlation key, echoed on every response frame.
``rows``
    Zero or more per query: ``{"type": "rows", "id": n,
    "rows": [[...], ...]}`` — result rows in chunks, so a slow
    consumer throttles only its own connection, never the service.
``summary``
    Terminal success frame: the full
    :meth:`repro.service.result.QueryResult.to_payload` dict minus
    ``rows`` (already streamed), under ``"result"``.
``shed``
    Terminal frame for a query the service refused (admission budget,
    SLO, or per-tenant quota): carries ``reason`` and a
    ``retry_after_s`` hint — the client may resubmit after backing off.
``error``
    Terminal frame for a failed query or a protocol violation.
``shutdown``
    Client asks the server to stop accepting and exit cleanly; echoed
    back as the ack before the listener closes.

Admin (introspection) frames, added in version 2.  Each is a
request/response pair sharing one type: the client sends ``{"type":
<kind>, "id": n, ...}`` and the server answers with the same type and
id.  They are answered directly on the connection's handler thread —
never through the dispatcher queue — so a slow admin consumer can
never stall query dispatch:

``stats``
    Request may carry ``"prom": true``.  Response: ``{"type": "stats",
    "id": n, "stats": {registry, server, service, trace}}`` — the full
    metrics-registry snapshot plus server/service gauges — and, when
    requested, ``"prom"`` with the Prometheus text-format page.
``proclist``
    Response ``{"type": "proclist", "id": n, "queries": [...]}``: the
    live in-flight query table (qid, tenant, label, phase
    queued/admitted/executing/streaming, elapsed wall seconds, virtual
    seconds since submission, estimated state bytes, worker id).
``profile``
    Request carries ``"seq"`` (the service sequence number a summary
    frame reported).  Response ``"profile"`` is the retained
    :meth:`repro.obs.profiles.QueryProfile.as_dict` payload, or null
    when the profile was never recorded or has been evicted — an
    unknown seq is an empty answer, not an error.
``health``
    Response: ``{"type": "health", "id": n, "status": "ok", ...}``
    with uptime, served-query and connection counts — the readiness
    probe.

Framing errors never hang and never kill the process: a truncated,
oversized or non-JSON frame raises :class:`ProtocolError` (or
:class:`ConnectionClosed` at clean EOF) and the server drops only that
connection.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Optional

from repro.common.errors import ReproError

PROTOCOL_VERSION = 2

#: Hard ceiling on one frame's payload; a length prefix past this is a
#: corrupt or hostile stream, not a big result (rows are chunked).
MAX_FRAME_BYTES = 32 << 20

_HEADER = struct.Struct(">I")

FRAME_HELLO = "hello"
FRAME_QUERY = "query"
FRAME_ROWS = "rows"
FRAME_SUMMARY = "summary"
FRAME_ERROR = "error"
FRAME_SHED = "shed"
FRAME_SHUTDOWN = "shutdown"
FRAME_STATS = "stats"
FRAME_PROCLIST = "proclist"
FRAME_PROFILE = "profile"
FRAME_HEALTH = "health"

#: Introspection request/response frames (version 2); the server
#: answers these on the handler thread, off the dispatcher path.
ADMIN_FRAMES = frozenset((
    FRAME_STATS, FRAME_PROCLIST, FRAME_PROFILE, FRAME_HEALTH,
))

FRAME_TYPES = frozenset((
    FRAME_HELLO, FRAME_QUERY, FRAME_ROWS, FRAME_SUMMARY, FRAME_ERROR,
    FRAME_SHED, FRAME_SHUTDOWN,
)) | ADMIN_FRAMES

#: Rows per ``rows`` frame: small enough that a slow consumer's
#: backpressure engages quickly, large enough to amortise framing.
ROWS_PER_FRAME = 512


class ProtocolError(ReproError):
    """A malformed frame: bad length, bad JSON, bad shape."""


class ConnectionClosed(ReproError):
    """The peer closed the stream (mid-frame closes carry detail)."""


def encode_frame(frame: Dict) -> bytes:
    """Serialise one frame dict to its wire bytes."""
    frame_type = frame.get("type")
    if frame_type not in FRAME_TYPES:
        raise ProtocolError("unknown frame type %r" % (frame_type,))
    payload = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame of %d bytes exceeds the %d-byte frame ceiling"
            % (len(payload), MAX_FRAME_BYTES)
        )
    return _HEADER.pack(len(payload)) + payload


def read_frame(stream, max_frame: int = MAX_FRAME_BYTES) -> Dict:
    """Read one frame from a binary file-like object (``.read(n)``).

    Sockets pass their ``makefile("rb")``; tests pass ``io.BytesIO``.
    Raises :class:`ConnectionClosed` on clean EOF before a frame
    starts, and :class:`ProtocolError` for every malformed case —
    truncated header, truncated payload, oversized length, non-JSON
    bytes, or a JSON payload that is not a typed object.
    """
    header = stream.read(_HEADER.size)
    if not header:
        raise ConnectionClosed("connection closed between frames")
    if len(header) < _HEADER.size:
        raise ProtocolError(
            "truncated frame header: %d of %d bytes"
            % (len(header), _HEADER.size)
        )
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise ProtocolError(
            "frame length %d exceeds the %d-byte ceiling"
            % (length, max_frame)
        )
    payload = stream.read(length) if length else b""
    if len(payload) < length:
        raise ProtocolError(
            "truncated frame payload: %d of %d bytes"
            % (len(payload), length)
        )
    try:
        frame = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("frame payload is not JSON: %s" % exc) from None
    if not isinstance(frame, dict):
        raise ProtocolError(
            "frame payload must be a JSON object; got %s"
            % type(frame).__name__
        )
    if frame.get("type") not in FRAME_TYPES:
        raise ProtocolError("unknown frame type %r" % (frame.get("type"),))
    return frame


def hello_frame(tenant: Optional[str] = None, server: bool = False) -> Dict:
    frame = {"type": FRAME_HELLO, "version": PROTOCOL_VERSION}
    if server:
        frame["server"] = "repro"
    else:
        frame["tenant"] = tenant
    return frame


def check_hello(frame: Dict, side: str) -> Dict:
    """Validate the peer's hello; raises :class:`ProtocolError`."""
    if frame.get("type") != FRAME_HELLO:
        raise ProtocolError(
            "expected a hello frame from the %s; got %r"
            % (side, frame.get("type"))
        )
    version = frame.get("version")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "protocol version mismatch: %s speaks %r, this side speaks %d"
            % (side, version, PROTOCOL_VERSION)
        )
    return frame
