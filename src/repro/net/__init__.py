"""The network front door: wire protocol + threaded socket server.

``repro.net.protocol`` defines the versioned, length-prefixed JSON
frame format both ends speak; ``repro.net.server`` is the threaded
:class:`ReproServer` that serves one long-lived
:class:`~repro.service.QueryService` to many concurrent socket
clients.  The matching client lives in :mod:`repro.client`.
"""

from repro.net.protocol import (
    FRAME_ERROR, FRAME_HELLO, FRAME_QUERY, FRAME_ROWS, FRAME_SHED,
    FRAME_SHUTDOWN, FRAME_SUMMARY, FRAME_TYPES, MAX_FRAME_BYTES,
    PROTOCOL_VERSION, ROWS_PER_FRAME, ConnectionClosed, ProtocolError,
    check_hello, encode_frame, hello_frame, read_frame,
)
from repro.net.server import ReproServer, serve

__all__ = [
    "PROTOCOL_VERSION", "MAX_FRAME_BYTES", "ROWS_PER_FRAME",
    "FRAME_HELLO", "FRAME_QUERY", "FRAME_ROWS", "FRAME_SUMMARY",
    "FRAME_ERROR", "FRAME_SHED", "FRAME_SHUTDOWN", "FRAME_TYPES",
    "ConnectionClosed", "ProtocolError",
    "encode_frame", "read_frame", "hello_frame", "check_hello",
    "ReproServer", "serve",
]
