"""The unified client API: one ``QueryResult``, two transports.

``connect(host, port)`` returns a socket :class:`Client` speaking the
:mod:`repro.net.protocol` frame format to a running server;
:class:`InProcessClient` is its twin that embeds a
:class:`~repro.service.QueryService` directly.  Both expose the same
surface —

* ``query(text, strategy=..., label=...)`` returning the public
  :class:`~repro.service.result.QueryResult` (status ``ok``/``cached``
  or ``shed``; engine faults raise
  :class:`~repro.common.errors.ExecutionError` on either transport);
* ``last_shed_retry_s`` — the server's backoff hint after a shed;
* the introspection surface — ``stats(prom=...)``, ``proclist()``,
  ``profile(seq)``, ``health()`` — answering from the admin frames
  (socket) or the service's own registry/profile ring (in-process);
* context-manager lifecycle (``close()`` releases the socket, or the
  owned service's spill dirs and pools).

Bit-identity between the two is a tested invariant: results travel as
:meth:`QueryResult.to_payload` payloads, every field of which is
JSON-exact, so the same query stream against the same catalog hands
back *equal* objects from both transports.
"""

from __future__ import annotations

import socket
import threading
from typing import Optional

from repro.common.errors import ExecutionError
from repro.net.protocol import (
    FRAME_ERROR, FRAME_HEALTH, FRAME_PROCLIST, FRAME_PROFILE, FRAME_ROWS,
    FRAME_SHED, FRAME_SHUTDOWN, FRAME_STATS, FRAME_SUMMARY,
    MAX_FRAME_BYTES, ProtocolError, check_hello, encode_frame, hello_frame,
    read_frame,
)
from repro.service.result import ERROR, SHED, QueryResult

__all__ = ["Client", "InProcessClient", "connect"]


class Client:
    """A socket connection to a :class:`~repro.net.ReproServer`.

    One client is one protocol session on one TCP connection; it is
    **not** thread-safe (open one client per thread — connections are
    cheap, and the stress bench does exactly that).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        tenant: Optional[str] = None,
        timeout: Optional[float] = 60.0,
        max_frame: int = MAX_FRAME_BYTES,
    ):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.max_frame = max_frame
        #: ``retry_after_s`` from the most recent shed response.
        self.last_shed_retry_s: Optional[float] = None
        self._next_id = 0
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._closed = False
        try:
            self._send(hello_frame(tenant=tenant))
            check_hello(read_frame(self._rfile, max_frame), "server")
        except BaseException:
            self.close()
            raise

    # -- plumbing ----------------------------------------------------------

    def _send(self, frame) -> None:
        self._sock.sendall(encode_frame(frame))

    def _recv(self):
        return read_frame(self._rfile, self.max_frame)

    # -- the API -----------------------------------------------------------

    def query(
        self,
        text: str,
        strategy: Optional[str] = None,
        label: Optional[str] = None,
    ) -> QueryResult:
        """Run one query; returns the unified result or raises
        :class:`ExecutionError` (mirroring the in-process twin)."""
        self._next_id += 1
        qid = self._next_id
        self._send({
            "type": "query", "id": qid, "text": text,
            "strategy": strategy, "label": label,
        })
        rows = []
        while True:
            frame = self._recv()
            if frame.get("id") != qid:
                raise ProtocolError(
                    "response id %r does not match query id %d"
                    % (frame.get("id"), qid)
                )
            kind = frame.get("type")
            if kind == FRAME_ROWS:
                rows.extend(frame.get("rows") or [])
                continue
            if kind == FRAME_SUMMARY:
                payload = dict(frame["result"])
                payload["rows"] = rows
                return QueryResult.from_payload(payload)
            if kind == FRAME_SHED:
                payload = dict(frame["result"])
                payload["rows"] = []
                self.last_shed_retry_s = frame.get("retry_after_s")
                return QueryResult.from_payload(payload)
            if kind == FRAME_ERROR:
                raise ExecutionError(
                    frame.get("message") or "query failed"
                )
            raise ProtocolError("unexpected %r frame in response" % kind)

    # -- introspection -----------------------------------------------------

    def _admin(self, kind: str, **extra):
        """One admin request/response round-trip."""
        self._next_id += 1
        qid = self._next_id
        frame = {"type": kind, "id": qid}
        frame.update(extra)
        self._send(frame)
        response = self._recv()
        if response.get("type") == FRAME_ERROR:
            raise ExecutionError(
                response.get("message") or "%s frame failed" % kind
            )
        if response.get("type") != kind or response.get("id") != qid:
            raise ProtocolError(
                "expected a %s response for id %d; got %r id %r"
                % (kind, qid, response.get("type"), response.get("id"))
            )
        return response

    def stats(self) -> dict:
        """The server's live stats: registry snapshot + gauges."""
        return self._admin(FRAME_STATS)["stats"]

    def prometheus(self) -> str:
        """The server's metrics as a Prometheus text-format page."""
        return self._admin(FRAME_STATS, prom=True).get("prom", "")

    def proclist(self) -> list:
        """The live in-flight query table."""
        return self._admin(FRAME_PROCLIST)["queries"]

    def profile(self, seq: int) -> Optional[dict]:
        """The retained profile for service sequence ``seq``, or None
        if it was never recorded or has been evicted from the ring."""
        return self._admin(FRAME_PROFILE, seq=seq).get("profile")

    def health(self) -> dict:
        """The server's readiness snapshot (``status`` is ``ok`` while
        serving, ``stopping`` once shutdown has been signalled)."""
        response = self._admin(FRAME_HEALTH)
        return {
            key: value for key, value in response.items()
            if key not in ("type", "id")
        }

    def shutdown_server(self) -> None:
        """Ask the server to stop cleanly; waits for the ack."""
        self._send({"type": FRAME_SHUTDOWN})
        frame = self._recv()
        if frame.get("type") != FRAME_SHUTDOWN:
            raise ProtocolError(
                "expected a shutdown ack; got %r" % frame.get("type")
            )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for closer in (self._rfile.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class InProcessClient:
    """The in-process twin: same API, no socket.

    Construct it over a catalog (optionally with a
    :class:`~repro.service.ServiceConfig`) to own a private service,
    or pass ``service=`` to borrow one that an outer scope owns.  A
    lock serialises ``query()`` so many threads may share one twin —
    mirroring how the socket server serialises batches onto the one
    service.
    """

    def __init__(
        self,
        catalog=None,
        config=None,
        tenant: Optional[str] = None,
        service=None,
    ):
        if service is None:
            if catalog is None:
                raise ValueError(
                    "InProcessClient needs a catalog or a service"
                )
            from repro.service.service import QueryService

            service = QueryService(catalog, config)
            self._owns_service = True
        else:
            if catalog is not None or config is not None:
                raise ValueError(
                    "pass either a borrowed service or a catalog/config "
                    "to own, not both"
                )
            self._owns_service = False
        self.service = service
        self.tenant = tenant
        self.last_shed_retry_s: Optional[float] = None
        self._lock = threading.Lock()
        self._closed = False

    def query(
        self,
        text: str,
        strategy: Optional[str] = None,
        label: Optional[str] = None,
    ) -> QueryResult:
        with self._lock:
            try:
                seq = self.service.submit(
                    text, strategy=strategy, label=label,
                    tenant=self.tenant,
                )
            except Exception as exc:
                raise ExecutionError(str(exc)) from exc
            report = self.service.run()
        for outcome in report.outcomes:
            if outcome.seq == seq:
                break
        else:
            raise ExecutionError("query vanished from the service report")
        result = outcome.to_result()
        if result.status == ERROR:
            raise ExecutionError(result.reason or "query failed")
        if result.status == SHED:
            self.last_shed_retry_s = max(
                report.total_virtual_seconds, 0.001
            )
        return result

    # -- introspection -----------------------------------------------------
    #
    # Same surface as the socket client, answered straight from the
    # embedded service (no server section: there is no server).

    def stats(self) -> dict:
        service = self.service
        payload = {
            "registry": service.registry.snapshot(),
            "service": {
                "clock": service.clock,
                "batches_run": service.batches_run,
                "pending": len(service._pending),
                "peak_state_bytes": service.peak_state_bytes,
                "profiles_retained": len(service.profiles),
                "profiles_evicted": service.profiles.evicted,
                "feedback_fingerprints": len(service.feedback),
            },
        }
        if service.tracer is not None:
            payload["trace"] = {
                "events": len(service.tracer),
                "dropped": service.tracer.dropped,
                "max_events": service.tracer.max_events,
            }
        return payload

    def prometheus(self) -> str:
        from repro.obs.export import to_prometheus

        return to_prometheus(self.service.registry)

    def proclist(self) -> list:
        """Queries waiting in the embedded service's queue.  The
        in-process twin runs queries synchronously inside ``query()``,
        so entries only appear between an explicit ``submit`` and the
        next ``run`` on a shared service."""
        service = self.service
        return [
            {
                "qid": pending.seq,
                "tenant": pending.tenant,
                "label": pending.label,
                "phase": "queued",
                "elapsed_wall_s": 0.0,
                "virtual_elapsed_s": max(
                    0.0, service.clock - pending.arrival
                ),
                "seq": pending.seq,
                "state_estimate_bytes": pending.state_estimate,
                "worker": None,
            }
            for pending in service._pending
        ]

    def profile(self, seq: int) -> Optional[dict]:
        profile = self.service.profiles.get(seq)
        return profile.as_dict() if profile is not None else None

    def health(self) -> dict:
        service = self.service
        return {
            "status": "closed" if self._closed else "ok",
            "batches_run": service.batches_run,
            "pending": len(service._pending),
            "served_queries": int(
                service.registry.counter("queries.completed").value
            ),
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "InProcessClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def connect(
    host: str = "127.0.0.1",
    port: int = 7734,
    tenant: Optional[str] = None,
    timeout: Optional[float] = 60.0,
) -> Client:
    """Open a socket :class:`Client` to a running repro server."""
    return Client(host=host, port=port, tenant=tenant, timeout=timeout)
