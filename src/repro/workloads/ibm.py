"""The IBM decorrelation query [29] family: Q3A (normal), Q3B (skewed),
Q3C (remote), Q3D (child weaker), Q3E (parent weaker).

The SQL (Table I)::

    select s_name, s_acctbal, s_address, s_phone, s_comment
    from part, supplier, partsupp
    where s_nation = 'FRANCE' and p_size = 15 and p_type = 'BRASS'
      and p_partkey = ps_partkey and s_suppkey = ps_suppkey
      and ps_supplycost =
          (select min(ps_supplycost) from partsupp, supplier
           where p_partkey = ps_partkey and s_suppkey = ps_suppkey
             and s_nation = 'FRANCE')

It "somewhat resembles TPC-H query 2 but has slightly fewer joins".
Adaptations to the standard schema: ``s_nation`` resolves through a
NATION join on ``n_name``, and ``p_type = 'BRASS'`` becomes
``p_type like '%BRASS'`` (TPC-H types are three-word strings whose
final syllable carries the material).
"""

from __future__ import annotations

from typing import Optional

from repro.data.catalog import Catalog
from repro.expr.aggregates import MIN, AggregateSpec
from repro.expr.expressions import And, Expr, col
from repro.optimizer.magic import apply_magic
from repro.plan.builder import PlanBuilder, scan
from repro.plan.logical import LogicalNode

OUTPUT_COLUMNS = ["s_name", "s_acctbal", "s_address", "s_phone", "s_comment"]


def _french_suppliers(catalog: Catalog, nation_pred: Expr, prefix: str = ""):
    nation = scan(catalog, "nation", prefix=prefix or None).filter(nation_pred)
    return scan(catalog, "supplier", prefix=prefix or None).join(
        nation, on=[(prefix + "s_nationkey", prefix + "n_nationkey")]
    )


def build_q3(
    catalog: Catalog,
    parent_part_pred: Optional[Expr],
    parent_nation_pred: Expr,
    child_nation_pred: Expr,
    magic: bool = False,
) -> LogicalNode:
    part = scan(catalog, "part")
    if parent_part_pred is not None:
        part = part.filter(parent_part_pred)
    parent = (
        part
        .join(scan(catalog, "partsupp"), on=[("p_partkey", "ps_partkey")])
        .join(
            _french_suppliers(catalog, parent_nation_pred),
            on=[("ps_suppkey", "s_suppkey")],
        )
        .build()
    )

    # Heuristic (1) of [18]: filter set from the entire outer query,
    # semijoined against the subquery block as a whole.
    sub_input = (
        scan(catalog, "partsupp", prefix="q_")
        .join(
            _french_suppliers(catalog, child_nation_pred, prefix="q_"),
            on=[("q_ps_suppkey", "q_s_suppkey")],
        )
        .build()
    )
    if magic:
        sub_input = apply_magic(
            sub_input, parent, on=[("q_ps_partkey", "p_partkey")]
        )
    sub = PlanBuilder(sub_input).group_by(
        ["q_ps_partkey"],
        [AggregateSpec(MIN, col("q_ps_supplycost"), "min_cost")],
    )

    return (
        PlanBuilder(parent)
        .join(
            sub,
            on=[("p_partkey", "q_ps_partkey")],
            residual=col("ps_supplycost").eq(col("min_cost")),
        )
        .project(OUTPUT_COLUMNS)
        .build()
    )


# -- Table I variants ---------------------------------------------------------

def q3_normal(catalog: Catalog, magic: bool = False) -> LogicalNode:
    """Q3A (uniform) / Q3B (skewed) / Q3C (remote PARTSUPP)."""
    return build_q3(
        catalog,
        parent_part_pred=And(
            col("p_size").eq(15), col("p_type").like("%BRASS")
        ),
        parent_nation_pred=col("n_name").eq("FRANCE"),
        child_nation_pred=col("q_n_name").eq("FRANCE"),
        magic=magic,
    )


def q3_child_weaker(catalog: Catalog, magic: bool = False) -> LogicalNode:
    """Q3D: child nation weakened to ``n_name >= 'FRANCE'``."""
    return build_q3(
        catalog,
        parent_part_pred=And(
            col("p_size").eq(15), col("p_type").like("%BRASS")
        ),
        parent_nation_pred=col("n_name").eq("FRANCE"),
        child_nation_pred=col("q_n_name").ge("FRANCE"),
        magic=magic,
    )


def q3_parent_weaker(catalog: Catalog, magic: bool = False) -> LogicalNode:
    """Q3E: the parent ``p_size`` predicate omitted."""
    return build_q3(
        catalog,
        parent_part_pred=col("p_type").like("%BRASS"),
        parent_nation_pred=col("n_name").eq("FRANCE"),
        child_nation_pred=col("q_n_name").eq("FRANCE"),
        magic=magic,
    )
