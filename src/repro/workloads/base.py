"""Workload query descriptors.

Each Table I entry is a :class:`WorkloadQuery`: an id (Q1A..Q5B), the
data configuration it runs against (uniform or the Zipf-0.5 skewed
instance), optional remote table placement (Q1C/Q3C), and builders for
the baseline bushy plan and — for the multi-block queries — the
magic-sets rewritten plan.

Plans must be rebuilt per execution (logical nodes are bound to one
physical run), hence builders rather than cached plan objects.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.data.catalog import Catalog
from repro.plan.logical import LogicalNode

PlanBuilderFn = Callable[[Catalog], LogicalNode]


class WorkloadQuery:
    """One Table I query variant."""

    __slots__ = (
        "qid", "title", "family", "skew", "remote_tables",
        "_baseline", "_magic", "delayed_table",
    )

    def __init__(
        self,
        qid: str,
        title: str,
        family: str,
        baseline: PlanBuilderFn,
        magic: Optional[PlanBuilderFn] = None,
        skew: float = 0.0,
        remote_tables: Tuple[str, ...] = (),
        delayed_table: str = "partsupp",
    ):
        self.qid = qid
        self.title = title
        self.family = family
        self._baseline = baseline
        self._magic = magic
        #: Zipf factor of the data set this variant runs on (the paper's
        #: skewed variants use the z=0.5 TPC-D generator).
        self.skew = skew
        #: Tables fetched from a remote site (Section VI-C variants).
        self.remote_tables = tuple(remote_tables)
        #: The relation delayed in the Section VI-B experiments.
        self.delayed_table = delayed_table

    @property
    def has_magic(self) -> bool:
        return self._magic is not None

    @property
    def is_distributed(self) -> bool:
        return bool(self.remote_tables)

    def build_baseline(self, catalog: Catalog) -> LogicalNode:
        return self._baseline(catalog)

    def build_magic(self, catalog: Catalog) -> LogicalNode:
        if self._magic is None:
            raise ValueError("%s has no magic-sets variant" % self.qid)
        return self._magic(catalog)

    def __repr__(self) -> str:
        return "WorkloadQuery(%s: %s)" % (self.qid, self.title)
