"""The paper's Table I workload: 18 query variants over TPC-H data."""

from repro.workloads.base import WorkloadQuery
from repro.workloads.registry import (
    QUERIES,
    FIG5_QUERIES,
    FIG6_QUERIES,
    FIG13_QUERIES,
    get_query,
)

__all__ = [
    "WorkloadQuery",
    "QUERIES",
    "FIG5_QUERIES",
    "FIG6_QUERIES",
    "FIG13_QUERIES",
    "get_query",
]
