"""TPC-H Query 5 family: Q4A (normal), Q4B (fewer suppliers).

The SQL (Table I)::

    select n_name, sum(l_extendedprice * (1 - l_discount))
    from customer, orders, lineitem, supplier, nation, region
    where c_custkey = o_custkey and l_orderkey = o_orderkey
      and l_suppkey = s_suppkey and c_nationkey = s_nationkey
      and s_nationkey = n_nationkey and n_regionkey = r_regionkey
      and r_name = 'MIDDLE EAST'
      and o_orderdate >= '1995-01-01' and o_orderdate < '1996-01-01'
    group by n_name

A single-block join query — the Section VI-C workload where sideways
information passing is "seldom considered".  The plan is bushy: the
supplier-nation-region subtree is built independently and joined with
the customer-orders-lineitem pipeline; ``c_nationkey = s_nationkey``
rides along as a residual on that top join.
"""

from __future__ import annotations

from typing import Optional

from repro.data.catalog import Catalog
from repro.expr.aggregates import SUM, AggregateSpec
from repro.expr.expressions import And, Expr, col, lit
from repro.plan.builder import scan
from repro.plan.logical import LogicalNode


def supplier_cut(catalog: Catalog) -> int:
    """Scale-relative analogue of the paper's ``l_suppkey < 1000``
    (10% of the 1 GB instance's 10,000 suppliers)."""
    return max(2, int(catalog.stats("supplier").maxima["s_suppkey"]) // 10)


def build_q4(
    catalog: Catalog,
    lineitem_pred: Optional[Expr] = None,
) -> LogicalNode:
    orders = scan(catalog, "orders").filter(
        And(
            col("o_orderdate").ge("1995-01-01"),
            col("o_orderdate").lt("1996-01-01"),
        )
    )
    lineitem = scan(catalog, "lineitem")
    if lineitem_pred is not None:
        lineitem = lineitem.filter(lineitem_pred)

    region = scan(catalog, "region").filter(col("r_name").eq("MIDDLE EAST"))
    nations = scan(catalog, "nation").join(
        region, on=[("n_regionkey", "r_regionkey")]
    )
    suppliers = scan(catalog, "supplier").join(
        nations, on=[("s_nationkey", "n_nationkey")]
    )

    return (
        scan(catalog, "customer")
        .join(orders, on=[("c_custkey", "o_custkey")])
        .join(lineitem, on=[("o_orderkey", "l_orderkey")])
        .join(
            suppliers,
            on=[("l_suppkey", "s_suppkey")],
            residual=col("c_nationkey").eq(col("s_nationkey")),
        )
        .group_by(
            ["n_name"],
            [
                AggregateSpec(
                    SUM,
                    col("l_extendedprice") * (lit(1) - col("l_discount")),
                    "revenue",
                )
            ],
        )
        .build()
    )


def q4_normal(catalog: Catalog) -> LogicalNode:
    """Q4A."""
    return build_q4(catalog)


def q4_fewer_suppliers(catalog: Catalog) -> LogicalNode:
    """Q4B: LINEITEM restricted to a tenth of the supplier domain."""
    return build_q4(catalog, lineitem_pred=col("l_suppkey").lt(supplier_cut(catalog)))
