"""TPC-H Query 17 family: Q2A (normal), Q2B (skewed), Q2C (parent
stronger), Q2D (child stronger), Q2E (parent weaker).

The SQL (Table I)::

    select sum(l_extendedprice) / 7.0 from lineitem, part
    where p_partkey = l_partkey and p_brand = 'Brand#34'
      and p_container = 'MED CAN'
      and l_quantity < (select 0.2 * avg(l_quantity) from lineitem
                        where l_partkey = p_partkey)

The correlated AVG subquery decorrelates into a grouped AVG over a
second LINEITEM scan (prefix ``i_``); the outer comparison becomes the
residual ``l_quantity < 0.2 * avg_qty`` on the final join.  The top is
a keyless aggregate (a single output row), so everything upstream is
blocking — the workload where the paper reports both the largest AIP
wins and the Q2C magic-sets state anomaly.
"""

from __future__ import annotations

from typing import Optional

from repro.data.catalog import Catalog
from repro.expr.aggregates import AVG, SUM, AggregateSpec
from repro.expr.expressions import And, Expr, col, lit
from repro.optimizer.magic import apply_magic
from repro.plan.builder import PlanBuilder, scan
from repro.plan.logical import LogicalNode


def partkey_cut(catalog: Catalog) -> int:
    """Scale-relative analogue of the paper's ``partkey < 1000`` (which
    selects half the 1 GB instance's first-partkey decile); we keep the
    *selectivity* rather than the literal by cutting at half the key
    domain."""
    return int(catalog.stats("part").maxima["p_partkey"]) // 2


def build_q2(
    catalog: Catalog,
    part_pred: Optional[Expr],
    parent_lineitem_pred: Optional[Expr] = None,
    child_lineitem_pred: Optional[Expr] = None,
    magic: bool = False,
) -> LogicalNode:
    part = scan(catalog, "part")
    if part_pred is not None:
        part = part.filter(part_pred)
    lineitem = scan(catalog, "lineitem")
    if parent_lineitem_pred is not None:
        lineitem = lineitem.filter(parent_lineitem_pred)
    parent = part.join(lineitem, on=[("p_partkey", "l_partkey")]).build()

    inner = scan(catalog, "lineitem", prefix="i_")
    if child_lineitem_pred is not None:
        inner = inner.filter(child_lineitem_pred)
    sub_input = inner.build()
    if magic:
        sub_input = apply_magic(
            sub_input, parent, on=[("i_l_partkey", "p_partkey")]
        )
    sub = (
        PlanBuilder(sub_input)
        .group_by(
            ["i_l_partkey"],
            [AggregateSpec(AVG, col("i_l_quantity"), "avg_qty")],
        )
        .project([
            "i_l_partkey",
            ("qty_limit", lit(0.2) * col("avg_qty")),
        ])
    )

    return (
        PlanBuilder(parent)
        .join(
            sub,
            on=[("l_partkey", "i_l_partkey")],
            residual=col("l_quantity").lt(col("qty_limit")),
        )
        .group_by([], [AggregateSpec(SUM, col("l_extendedprice"), "total")])
        .project([("avg_yearly", col("total") / lit(7.0))])
        .build()
    )


# -- Table I variants ---------------------------------------------------------

_NORMAL_PART_PRED = And(
    col("p_brand").eq("Brand#34"), col("p_container").eq("MED CAN")
)


def q2_normal(catalog: Catalog, magic: bool = False) -> LogicalNode:
    """Q2A (uniform) / Q2B (skewed data)."""
    return build_q2(catalog, _NORMAL_PART_PRED, magic=magic)


def q2_parent_stronger(catalog: Catalog, magic: bool = False) -> LogicalNode:
    """Q2C: parent LINEITEM additionally restricted by partkey."""
    cut = partkey_cut(catalog)
    return build_q2(
        catalog,
        _NORMAL_PART_PRED,
        parent_lineitem_pred=col("l_partkey").lt(cut),
        magic=magic,
    )


def q2_child_stronger(catalog: Catalog, magic: bool = False) -> LogicalNode:
    """Q2D: the subquery's LINEITEM restricted by partkey."""
    cut = partkey_cut(catalog)
    return build_q2(
        catalog,
        _NORMAL_PART_PRED,
        child_lineitem_pred=col("i_l_partkey").lt(cut),
        magic=magic,
    )


def q2_parent_weaker(catalog: Catalog, magic: bool = False) -> LogicalNode:
    """Q2E: the ``p_brand`` predicate dropped — the magic set is large
    and useless as a filter (the paper's worst case for Magic)."""
    return build_q2(
        catalog,
        col("p_container").eq("MED CAN"),
        magic=magic,
    )
