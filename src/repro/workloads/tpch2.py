"""TPC-H Query 2 family: Q1A (normal), Q1B (skewed), Q1C (remote),
Q1D (child weaker), Q1E (parent weaker).

The SQL (Table I of the paper)::

    select s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address,
           s_phone, s_comment
    from part, supplier, partsupp, nation, region
    where p_partkey = ps_partkey and s_suppkey = ps_suppkey
      and p_size = 1 and p_type like '%TIN'
      and s_nationkey = n_nationkey and n_regionkey = r_regionkey
      and r_name = 'AFRICA'
      and ps_supplycost =
          (select min(ps_supplycost) from partsupp, supplier, nation, region
           where p_partkey = ps_partkey and s_suppkey = ps_suppkey
             and s_nationkey = n_nationkey and n_regionkey = r_regionkey
             and r_name = 'AFRICA')

The push-style plan decorrelates the scalar subquery into a grouped
MIN over a second PARTSUPP join tree (prefix ``q_``), joined back to
the parent on PARTKEY with the residual ``ps_supplycost = min_cost`` —
the same shape as the paper's Figure 1.
"""

from __future__ import annotations

from typing import Optional

from repro.data.catalog import Catalog
from repro.expr.aggregates import MIN, AggregateSpec
from repro.expr.expressions import And, Expr, col
from repro.optimizer.magic import apply_magic
from repro.plan.builder import PlanBuilder, scan
from repro.plan.logical import LogicalNode

OUTPUT_COLUMNS = [
    "s_acctbal", "s_name", "n_name", "p_partkey", "p_mfgr",
    "s_address", "s_phone", "s_comment",
]


def _parent_tree(
    catalog: Catalog,
    part_pred: Optional[Expr],
    region_pred: Expr,
) -> PlanBuilder:
    part = scan(catalog, "part")
    if part_pred is not None:
        part = part.filter(part_pred)
    region = scan(catalog, "region").filter(region_pred)
    nations = scan(catalog, "nation").join(
        region, on=[("n_regionkey", "r_regionkey")]
    )
    suppliers = scan(catalog, "supplier").join(
        nations, on=[("s_nationkey", "n_nationkey")]
    )
    return (
        part
        .join(scan(catalog, "partsupp"), on=[("p_partkey", "ps_partkey")])
        .join(suppliers, on=[("ps_suppkey", "s_suppkey")])
    )


def _subquery_input(catalog: Catalog, region_pred: Expr) -> PlanBuilder:
    region = scan(catalog, "region", prefix="q_").filter(region_pred)
    nations = scan(catalog, "nation", prefix="q_").join(
        region, on=[("q_n_regionkey", "q_r_regionkey")]
    )
    suppliers = scan(catalog, "supplier", prefix="q_").join(
        nations, on=[("q_s_nationkey", "q_n_nationkey")]
    )
    return scan(catalog, "partsupp", prefix="q_").join(
        suppliers, on=[("q_ps_suppkey", "q_s_suppkey")]
    )


def build_q1(
    catalog: Catalog,
    parent_part_pred: Optional[Expr],
    parent_region_pred: Expr,
    child_region_pred: Expr,
    magic: bool = False,
) -> LogicalNode:
    parent = _parent_tree(catalog, parent_part_pred, parent_region_pred).build()

    # Heuristic (1) of [18]: the filter set is computed from the entire
    # outer query and semijoined against the subquery block as a whole
    # (below its aggregation).
    sub_input = _subquery_input(catalog, child_region_pred).build()
    if magic:
        sub_input = apply_magic(
            sub_input, parent, on=[("q_ps_partkey", "p_partkey")]
        )
    sub = PlanBuilder(sub_input).group_by(
        ["q_ps_partkey"],
        [AggregateSpec(MIN, col("q_ps_supplycost"), "min_cost")],
    )

    return (
        PlanBuilder(parent)
        .join(
            sub,
            on=[("p_partkey", "q_ps_partkey")],
            residual=col("ps_supplycost").eq(col("min_cost")),
        )
        .project(OUTPUT_COLUMNS)
        .build()
    )


# -- Table I variants ---------------------------------------------------------

def q1_normal(catalog: Catalog, magic: bool = False) -> LogicalNode:
    """Q1A (uniform data) / Q1B (skewed data) / Q1C (remote PARTSUPP)."""
    return build_q1(
        catalog,
        parent_part_pred=And(
            col("p_size").eq(1), col("p_type").like("%TIN")
        ),
        parent_region_pred=col("r_name").eq("AFRICA"),
        child_region_pred=col("q_r_name").eq("AFRICA"),
        magic=magic,
    )


def q1_child_weaker(catalog: Catalog, magic: bool = False) -> LogicalNode:
    """Q1D: child region weakened to ``r_name < 'S'`` (selects every
    region) and the parent's ``p_type`` constraint dropped."""
    return build_q1(
        catalog,
        parent_part_pred=col("p_size").eq(1),
        parent_region_pred=col("r_name").eq("AFRICA"),
        child_region_pred=col("q_r_name").lt("S"),
        magic=magic,
    )


def q1_parent_weaker(catalog: Catalog, magic: bool = False) -> LogicalNode:
    """Q1E: parent weakened — ``p_type < 'TIN'`` and ``r_name < 'S'``
    both select (nearly) everything."""
    return build_q1(
        catalog,
        parent_part_pred=And(
            col("p_size").eq(1), col("p_type").lt("TIN")
        ),
        parent_region_pred=col("r_name").lt("S"),
        child_region_pred=col("q_r_name").eq("AFRICA"),
        magic=magic,
    )
