"""Table I as SQL text.

Every workload variant also exists as a SQL string in the paper's
dialect, runnable through :func:`repro.sql.sql_to_plan`.  The SQL path
exercises the parser, the binder's subquery decorrelation and the
greedy planner; ``tests/workloads/test_sql_variants.py`` verifies that
each SQL plan returns exactly the rows of the hand-built plan.

Scale-relative literals (the partkey/suppkey cuts of Q2C/Q2D/Q4B) are
formatted in per catalog, mirroring ``tpch17.partkey_cut`` and
``tpch5.supplier_cut``.
"""

from __future__ import annotations

from repro.data.catalog import Catalog
from repro.workloads.tpch5 import supplier_cut
from repro.workloads.tpch17 import partkey_cut

_Q1_TEMPLATE = """
select s_acctbal, s_name, n_name, p_partkey, p_mfgr,
       s_address, s_phone, s_comment
from part, supplier, partsupp, nation, region
where p_partkey = ps_partkey and s_suppkey = ps_suppkey
  {parent_part} and s_nationkey = n_nationkey
  and n_regionkey = r_regionkey and {parent_region}
  and ps_supplycost = (select min(ps_supplycost)
                       from partsupp, supplier, nation, region
                       where p_partkey = ps_partkey
                         and s_suppkey = ps_suppkey
                         and s_nationkey = n_nationkey
                         and n_regionkey = r_regionkey
                         and {child_region})
"""

_Q2_TEMPLATE = """
select sum(l_extendedprice) / 7.0 as avg_yearly
from lineitem, part
where p_partkey = l_partkey {part_preds} {parent_extra}
  and l_quantity < (select 0.2 * avg(l_quantity) from lineitem
                    where l_partkey = p_partkey {child_extra})
"""

_Q3_TEMPLATE = """
select s_name, s_acctbal, s_address, s_phone, s_comment
from part, supplier, partsupp, nation
where {parent_nation} {parent_part}
  and p_partkey = ps_partkey and s_suppkey = ps_suppkey
  and s_nationkey = n_nationkey
  and ps_supplycost = (select min(ps_supplycost)
                       from partsupp, supplier, nation
                       where p_partkey = ps_partkey
                         and s_suppkey = ps_suppkey
                         and s_nationkey = n_nationkey
                         and {child_nation})
"""

_Q4_TEMPLATE = """
select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
from customer, orders, lineitem, supplier, nation, region
where c_custkey = o_custkey and l_orderkey = o_orderkey
  and l_suppkey = s_suppkey and c_nationkey = s_nationkey
  and s_nationkey = n_nationkey and n_regionkey = r_regionkey
  and r_name = 'MIDDLE EAST'
  and o_orderdate >= '1995-01-01' and o_orderdate < '1996-01-01'
  {lineitem_pred}
group by n_name
"""

_Q5_TEMPLATE = """
select n_name, year(o_orderdate) as o_year,
       sum(l_extendedprice * (1 - l_discount)
           - ps_supplycost * l_quantity) as sum_amount
from part, supplier, lineitem, partsupp, orders, nation
where s_suppkey = l_suppkey and ps_suppkey = l_suppkey
  and ps_partkey = l_partkey and p_partkey = l_partkey
  and o_orderkey = l_orderkey and s_nationkey = n_nationkey
  and p_name like '%black%' {nation_pred}
group by n_name, year(o_orderdate)
"""


def sql_for(qid: str, catalog: Catalog) -> str:
    """The Table I SQL text for variant ``qid``."""
    if qid in ("Q1A", "Q1B", "Q1C"):
        return _Q1_TEMPLATE.format(
            parent_part="and p_size = 1 and p_type like '%TIN'",
            parent_region="r_name = 'AFRICA'",
            child_region="r_name = 'AFRICA'",
        )
    if qid == "Q1D":
        return _Q1_TEMPLATE.format(
            parent_part="and p_size = 1",
            parent_region="r_name = 'AFRICA'",
            child_region="r_name < 'S'",
        )
    if qid == "Q1E":
        return _Q1_TEMPLATE.format(
            parent_part="and p_size = 1 and p_type < 'TIN'",
            parent_region="r_name < 'S'",
            child_region="r_name = 'AFRICA'",
        )

    if qid in ("Q2A", "Q2B", "Q2C", "Q2D", "Q2E"):
        part_preds = "and p_brand = 'Brand#34' and p_container = 'MED CAN'"
        if qid == "Q2E":
            part_preds = "and p_container = 'MED CAN'"
        parent_extra = child_extra = ""
        if qid == "Q2C":
            parent_extra = "and l_partkey < %d" % partkey_cut(catalog)
        if qid == "Q2D":
            child_extra = "and l_partkey < %d" % partkey_cut(catalog)
        return _Q2_TEMPLATE.format(
            part_preds=part_preds,
            parent_extra=parent_extra,
            child_extra=child_extra,
        )

    if qid in ("Q3A", "Q3B", "Q3C"):
        return _Q3_TEMPLATE.format(
            parent_nation="n_name = 'FRANCE'",
            parent_part="and p_size = 15 and p_type like '%BRASS'",
            child_nation="n_name = 'FRANCE'",
        )
    if qid == "Q3D":
        return _Q3_TEMPLATE.format(
            parent_nation="n_name = 'FRANCE'",
            parent_part="and p_size = 15 and p_type like '%BRASS'",
            child_nation="n_name >= 'FRANCE'",
        )
    if qid == "Q3E":
        return _Q3_TEMPLATE.format(
            parent_nation="n_name = 'FRANCE'",
            parent_part="and p_type like '%BRASS'",
            child_nation="n_name = 'FRANCE'",
        )

    if qid == "Q4A":
        return _Q4_TEMPLATE.format(lineitem_pred="")
    if qid == "Q4B":
        return _Q4_TEMPLATE.format(
            lineitem_pred="and l_suppkey < %d" % supplier_cut(catalog)
        )

    if qid == "Q5A":
        return _Q5_TEMPLATE.format(nation_pred="")
    if qid == "Q5B":
        return _Q5_TEMPLATE.format(nation_pred="and n_nationkey < 10")

    raise KeyError("no SQL text for %r" % qid)
