"""TPC-H Query 9 family: Q5A (normal), Q5B (fewer nations).

The SQL (Table I)::

    select n_name, o_year, sum(amount) from
      (select n_name, year(o_orderdate) as o_year,
              l_extendedprice * (1 - l_discount)
                - ps_supplycost * l_quantity as amount
       from part, supplier, lineitem, partsupp, orders, nation
       where s_suppkey = l_suppkey and ps_suppkey = l_suppkey
         and ps_partkey = l_partkey and p_partkey = l_partkey
         and o_orderkey = l_orderkey and s_nationkey = n_nationkey
         and p_name like '%black%')
    group by n_name, o_year

Single-block; the PARTSUPP join is on the composite
``(suppkey, partkey)`` key.  The paper's Q5B variant (``n_nationkey <
10``) is the case where AIP finds few useful filters: NATION is already
joined early, so the Cost-based algorithm's value is *not* generating
wasteful filter sets.
"""

from __future__ import annotations

from typing import Optional

from repro.data.catalog import Catalog
from repro.expr.aggregates import SUM, AggregateSpec
from repro.expr.expressions import Expr, Func, col, lit
from repro.plan.builder import scan
from repro.plan.logical import LogicalNode


def build_q5(
    catalog: Catalog,
    nation_pred: Optional[Expr] = None,
) -> LogicalNode:
    part = scan(catalog, "part").filter(col("p_name").like("%black%"))
    nation = scan(catalog, "nation")
    if nation_pred is not None:
        nation = nation.filter(nation_pred)
    suppliers = scan(catalog, "supplier").join(
        nation, on=[("s_nationkey", "n_nationkey")]
    )

    return (
        part
        .join(scan(catalog, "lineitem"), on=[("p_partkey", "l_partkey")])
        .join(
            scan(catalog, "partsupp"),
            on=[("l_suppkey", "ps_suppkey"), ("l_partkey", "ps_partkey")],
        )
        .join(scan(catalog, "orders"), on=[("l_orderkey", "o_orderkey")])
        .join(suppliers, on=[("l_suppkey", "s_suppkey")])
        .project([
            "n_name",
            ("o_year", Func("year", col("o_orderdate"))),
            (
                "amount",
                col("l_extendedprice") * (lit(1) - col("l_discount"))
                - col("ps_supplycost") * col("l_quantity"),
            ),
        ])
        .group_by(
            ["n_name", "o_year"],
            [AggregateSpec(SUM, col("amount"), "sum_amount")],
        )
        .build()
    )


def q5_normal(catalog: Catalog) -> LogicalNode:
    """Q5A."""
    return build_q5(catalog)


def q5_fewer_nations(catalog: Catalog) -> LogicalNode:
    """Q5B: ``n_nationkey < 10``."""
    return build_q5(catalog, nation_pred=col("n_nationkey").lt(10))
