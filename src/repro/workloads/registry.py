"""Registry of all Table I query variants, keyed Q1A..Q5B, plus the
per-figure query lists used by the benchmark harness."""

from __future__ import annotations

import functools
from typing import Dict, List

from repro.workloads import ibm, tpch2, tpch5, tpch9, tpch17
from repro.workloads.base import WorkloadQuery


def _magic(fn):
    """Derive the magic-plan builder from a family builder."""
    return functools.partial(fn, magic=True)


QUERIES: Dict[str, WorkloadQuery] = {}


def _register(query: WorkloadQuery) -> None:
    QUERIES[query.qid] = query


# -- TPC-H 2 family (Q1) -------------------------------------------------------

_register(WorkloadQuery(
    "Q1A", "TPCH-2 normal", "tpch2",
    baseline=tpch2.q1_normal, magic=_magic(tpch2.q1_normal),
))
_register(WorkloadQuery(
    "Q1B", "TPCH-2 skewed", "tpch2",
    baseline=tpch2.q1_normal, magic=_magic(tpch2.q1_normal), skew=0.5,
))
_register(WorkloadQuery(
    "Q1C", "TPCH-2 remote PARTSUPP", "tpch2",
    baseline=tpch2.q1_normal, magic=_magic(tpch2.q1_normal),
    remote_tables=("partsupp",),
))
_register(WorkloadQuery(
    "Q1D", "TPCH-2 child weaker", "tpch2",
    baseline=tpch2.q1_child_weaker, magic=_magic(tpch2.q1_child_weaker),
))
_register(WorkloadQuery(
    "Q1E", "TPCH-2 parent weaker", "tpch2",
    baseline=tpch2.q1_parent_weaker, magic=_magic(tpch2.q1_parent_weaker),
))

# -- TPC-H 17 family (Q2) ------------------------------------------------------

_register(WorkloadQuery(
    "Q2A", "TPCH-17 normal", "tpch17",
    baseline=tpch17.q2_normal, magic=_magic(tpch17.q2_normal),
    delayed_table="lineitem",
))
_register(WorkloadQuery(
    "Q2B", "TPCH-17 skewed", "tpch17",
    baseline=tpch17.q2_normal, magic=_magic(tpch17.q2_normal), skew=0.5,
    delayed_table="lineitem",
))
_register(WorkloadQuery(
    "Q2C", "TPCH-17 parent stronger", "tpch17",
    baseline=tpch17.q2_parent_stronger,
    magic=_magic(tpch17.q2_parent_stronger),
    delayed_table="lineitem",
))
_register(WorkloadQuery(
    "Q2D", "TPCH-17 child stronger", "tpch17",
    baseline=tpch17.q2_child_stronger,
    magic=_magic(tpch17.q2_child_stronger),
    delayed_table="lineitem",
))
_register(WorkloadQuery(
    "Q2E", "TPCH-17 parent weaker", "tpch17",
    baseline=tpch17.q2_parent_weaker, magic=_magic(tpch17.q2_parent_weaker),
    delayed_table="lineitem",
))

# -- IBM query family (Q3) -----------------------------------------------------

_register(WorkloadQuery(
    "Q3A", "IBM normal", "ibm",
    baseline=ibm.q3_normal, magic=_magic(ibm.q3_normal),
))
_register(WorkloadQuery(
    "Q3B", "IBM skewed", "ibm",
    baseline=ibm.q3_normal, magic=_magic(ibm.q3_normal), skew=0.5,
))
_register(WorkloadQuery(
    "Q3C", "IBM remote PARTSUPP", "ibm",
    baseline=ibm.q3_normal, magic=_magic(ibm.q3_normal),
    remote_tables=("partsupp",),
))
_register(WorkloadQuery(
    "Q3D", "IBM child weaker", "ibm",
    baseline=ibm.q3_child_weaker, magic=_magic(ibm.q3_child_weaker),
))
_register(WorkloadQuery(
    "Q3E", "IBM parent weaker", "ibm",
    baseline=ibm.q3_parent_weaker, magic=_magic(ibm.q3_parent_weaker),
))

# -- TPC-H 5 family (Q4): single block, no magic variant ----------------------

_register(WorkloadQuery(
    "Q4A", "TPCH-5 normal", "tpch5",
    baseline=tpch5.q4_normal, delayed_table="lineitem",
))
_register(WorkloadQuery(
    "Q4B", "TPCH-5 fewer suppliers", "tpch5",
    baseline=tpch5.q4_fewer_suppliers, delayed_table="lineitem",
))

# -- TPC-H 9 family (Q5): single block, no magic variant ----------------------

_register(WorkloadQuery(
    "Q5A", "TPCH-9 normal", "tpch9",
    baseline=tpch9.q5_normal, delayed_table="lineitem",
))
_register(WorkloadQuery(
    "Q5B", "TPCH-9 fewer nations", "tpch9",
    baseline=tpch9.q5_fewer_nations, delayed_table="lineitem",
))


def get_query(qid: str) -> WorkloadQuery:
    try:
        return QUERIES[qid]
    except KeyError:
        raise KeyError(
            "unknown query %r; known: %s" % (qid, sorted(QUERIES))
        ) from None


#: Figure 5/7 (and the delayed 9/11): TPC-H 2 + IBM variants.
FIG5_QUERIES: List[str] = ["Q3A", "Q3B", "Q3D", "Q3E", "Q1A", "Q1B", "Q1D", "Q1E"]
#: Figure 6/8 (and the delayed 10/12): TPC-H 17 variants.
FIG6_QUERIES: List[str] = ["Q2A", "Q2B", "Q2C", "Q2D", "Q2E"]
#: Figure 13/14: join queries and distributed joins.
FIG13_QUERIES: List[str] = ["Q4A", "Q5A", "Q4B", "Q5B", "Q3C", "Q1C"]
