"""Process-stable hashing.

Python randomises ``hash()`` for ``str``/``bytes`` per process
(PYTHONHASHSEED), which would make generated data, Bloom filter bit
patterns and therefore benchmark metrics vary run to run.  Everything
that must be reproducible hashes through this module instead.

Numeric types are already hash-stable in CPython; only strings (and
tuples containing them) need translation.
"""

from __future__ import annotations

import zlib
from typing import Hashable


#: Bounded memo for string CRCs.  Summary probes hash the same join-key
#: strings over and over (every injected filter re-keys every arriving
#: tuple), so the encode+CRC pair dominates the probe path; the memo is
#: cleared wholesale at the cap rather than tracking recency, which
#: keeps the hit path to a single dict lookup.
_STR_KEYS: dict = {}
_STR_KEYS_CAP = 1 << 16


def stable_key(value: Hashable) -> Hashable:
    """Map a value to an equal-semantics key whose ``hash()`` is stable
    across processes.  Distinct strings map to distinct-ish CRC32 keys;
    collisions only cost summary precision, never correctness."""
    if isinstance(value, str):
        key = _STR_KEYS.get(value)
        if key is None:
            key = zlib.crc32(value.encode("utf-8"))
            if len(_STR_KEYS) >= _STR_KEYS_CAP:
                _STR_KEYS.clear()
            _STR_KEYS[value] = key
        return key
    if isinstance(value, bytes):
        return zlib.crc32(value)
    if isinstance(value, tuple):
        return tuple(stable_key(v) for v in value)
    return value


def stable_label_seed(seed: int, label: str) -> int:
    """Derive a child seed from ``(seed, label)`` deterministically."""
    mixed = zlib.crc32(label.encode("utf-8"), seed & 0xFFFFFFFF)
    # Spread beyond 32 bits so distinct labels land far apart.
    return (mixed * 0x9E3779B97F4A7C15) & 0x7FFFFFFFFFFFFFFF
