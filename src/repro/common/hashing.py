"""Process-stable hashing.

Python randomises ``hash()`` for ``str``/``bytes`` per process
(PYTHONHASHSEED), which would make generated data, Bloom filter bit
patterns and therefore benchmark metrics vary run to run.  Everything
that must be reproducible hashes through this module instead.

Numeric types are already hash-stable in CPython; only strings (and
tuples containing them) need translation.
"""

from __future__ import annotations

import zlib
from typing import Hashable


def stable_key(value: Hashable) -> Hashable:
    """Map a value to an equal-semantics key whose ``hash()`` is stable
    across processes.  Distinct strings map to distinct-ish CRC32 keys;
    collisions only cost summary precision, never correctness."""
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    if isinstance(value, bytes):
        return zlib.crc32(value)
    if isinstance(value, tuple):
        return tuple(stable_key(v) for v in value)
    return value


def stable_label_seed(seed: int, label: str) -> int:
    """Derive a child seed from ``(seed, label)`` deterministically."""
    mixed = zlib.crc32(label.encode("utf-8"), seed & 0xFFFFFFFF)
    # Spread beyond 32 bits so distinct labels land far apart.
    return (mixed * 0x9E3779B97F4A7C15) & 0x7FFFFFFFFFFFFFFF
