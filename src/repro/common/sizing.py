"""Byte-size accounting, in one place.

Every layer that budgets or charges memory — the paper's
intermediate-state metric, admission control's pre-execution estimate,
the result cache's resident-byte cap, and the storage layer's
:class:`~repro.storage.governor.MemoryGovernor` — must agree on what a
row "weighs", or budgets enforced by one layer are meaningless to the
next.  These constants and helpers are that single authority; nothing
else in the tree hardcodes per-value byte sizes.

Only *relative* sizes matter (we are modelling, not measuring, Python
object layouts), but they must be stable: the equivalence suite pins
peak-state bytes bit-identical across execution paths.
"""

from __future__ import annotations

#: Estimated in-memory size of one value of each schema type.  Keys are
#: the type tags of :mod:`repro.data.schema` (kept as literals here so
#: sizing stays import-free below the schema layer).
TYPE_NBYTES = {"int": 8, "float": 8, "str": 24, "date": 12}

#: Per-tuple overhead approximating Python object headers / hash-table
#: entry costs; shared by all operators so relative strategy
#: comparisons are unaffected.
TUPLE_OVERHEAD_NBYTES = 16

#: One component of a buffered key (semijoin source keys, group keys).
KEY_COMPONENT_NBYTES = 8

#: Fixed overhead of one aggregation group (dict entry + key tuple).
GROUP_OVERHEAD_NBYTES = 16


def value_nbytes(type_name: str) -> int:
    """Estimated resident bytes of one value of a schema type."""
    return TYPE_NBYTES[type_name]


def row_nbytes(schema) -> int:
    """Estimated bytes to buffer one row of ``schema``."""
    return TUPLE_OVERHEAD_NBYTES + sum(
        TYPE_NBYTES[attr.type] for attr in schema.attributes
    )


def rows_nbytes(schema, count) -> float:
    """Estimated bytes to buffer ``count`` rows of ``schema``.

    ``count`` may be a float (optimizer cardinality estimates).
    """
    return count * row_nbytes(schema)


def key_nbytes(n_components: int) -> int:
    """Estimated bytes to buffer one ``n_components``-wide key."""
    return KEY_COMPONENT_NBYTES * n_components


def group_overhead_nbytes(n_keys: int) -> int:
    """Fixed bytes of one aggregation group before its accumulators."""
    return GROUP_OVERHEAD_NBYTES + KEY_COMPONENT_NBYTES * n_keys
