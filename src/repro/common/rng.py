"""Deterministic random number generation for data synthesis.

The TPC-H generator must produce identical tables for identical
``(scale_factor, skew, seed)`` triples so that experiments are
reproducible run-to-run.  We wrap :class:`random.Random` with a
convenience layer and add a Zipfian sampler used to reproduce the
paper's skewed TPC-D data set (Zipf factor z = 0.5).
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded random source with helpers used by the data generator.

    Separate logical *streams* can be derived with :meth:`fork` so that,
    for instance, changing how many parts are generated does not perturb
    the supplier table.
    """

    def __init__(self, seed: int = 0x5EED):
        self._seed = seed
        self._random = random.Random(seed)
        self._fork_counter = itertools.count(1)

    @property
    def seed(self) -> int:
        return self._seed

    def fork(self, label: str) -> "DeterministicRng":
        """Derive an independent stream identified by ``label``.

        The derived seed depends only on the parent seed and the label,
        not on how much randomness has already been consumed, and is
        stable across processes (no randomised string hashing).
        """
        from repro.common.hashing import stable_label_seed

        return DeterministicRng(stable_label_seed(self._seed, label))

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi]`` inclusive."""
        return self._random.randint(lo, hi)

    def uniform(self, lo: float, hi: float) -> float:
        return self._random.uniform(lo, hi)

    def choice(self, items: Sequence[T]) -> T:
        return self._random.choice(items)

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        return self._random.sample(items, k)

    def shuffle(self, items: list) -> None:
        self._random.shuffle(items)

    def random(self) -> float:
        return self._random.random()


class ZipfSampler:
    """Draw integers in ``[1, n]`` following a Zipfian distribution.

    ``P(k) ~ 1 / k**z``.  ``z = 0`` degenerates to uniform; the paper's
    skewed data set uses ``z = 0.5``.  Sampling is done by inverse CDF
    over a precomputed cumulative table, which is exact and fast enough
    for the table sizes we generate.
    """

    def __init__(self, n: int, z: float, rng: DeterministicRng):
        if n < 1:
            raise ValueError("ZipfSampler requires n >= 1, got %d" % n)
        if z < 0:
            raise ValueError("Zipf exponent must be non-negative, got %r" % z)
        self.n = n
        self.z = z
        self._rng = rng
        weights = [1.0 / (k ** z) for k in range(1, n + 1)]
        total = sum(weights)
        acc = 0.0
        cdf = []
        for w in weights:
            acc += w / total
            cdf.append(acc)
        cdf[-1] = 1.0  # guard against floating point shortfall
        self._cdf = cdf

    def sample(self) -> int:
        """Return a value in ``[1, n]``; rank 1 is the most frequent."""
        u = self._rng.random()
        return bisect.bisect_left(self._cdf, u) + 1
