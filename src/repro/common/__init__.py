"""Shared infrastructure: deterministic randomness and error types."""

from repro.common.errors import (
    ReproError,
    PlanError,
    SchemaError,
    ExecutionError,
    OptimizerError,
)
from repro.common.rng import DeterministicRng, ZipfSampler

__all__ = [
    "ReproError",
    "PlanError",
    "SchemaError",
    "ExecutionError",
    "OptimizerError",
    "DeterministicRng",
    "ZipfSampler",
]
