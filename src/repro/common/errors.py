"""Exception hierarchy for the repro library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A schema is malformed or an attribute reference cannot be resolved."""


class PlanError(ReproError):
    """A logical or physical query plan is structurally invalid."""


class ExecutionError(ReproError):
    """The push engine encountered an unrecoverable runtime condition."""


class OptimizerError(ReproError):
    """Statistics or cost estimation was asked something unanswerable."""


class NetworkError(ReproError):
    """The simulated network layer was used incorrectly."""
