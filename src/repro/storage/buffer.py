"""The buffer manager: pinned pages, LRU eviction, paged scan rows.

Frames hold column pages (or any immutable payload with a known byte
weight).  A frame is *resident* while its payload is in memory and
*evicted* once the payload has been written to the spill backend and
dropped; :meth:`BufferManager.pin` transparently reloads evicted
frames.  Pinned frames are never evicted — pin spans are short (one
row reconstruction, one replay pass) so the pool can always make
progress.

:class:`PagedRows` is the engine-facing facade: a read-only sequence
(``len`` + indexing, which is all the arrival models need) over a
table's column pages, registered with the buffer pool so scans stream
pages under the governor's budget instead of holding materialised row
lists.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.storage.page import build_pages


class Frame:
    """One buffer-pool slot."""

    __slots__ = ("frame_id", "payload", "nbytes", "pins", "page_id", "epoch")

    def __init__(self, frame_id: int, payload, nbytes: int, epoch: int):
        self.frame_id = frame_id
        self.payload = payload
        self.nbytes = nbytes
        self.pins = 0
        #: Spill-backend id once the payload has been written out;
        #: None while the frame has never been evicted.
        self.page_id: Optional[int] = None
        #: Accounting epoch that admitted the frame (see
        #: ``MemoryGovernor.abort_epoch``).
        self.epoch = epoch

    @property
    def resident(self) -> bool:
        return self.payload is not None


class BufferManager:
    """LRU pool of page frames accounted on one governor lease."""

    def __init__(self, governor, backend):
        self.governor = governor
        self.backend = backend
        self._lease = governor.lease("buffer-pool")
        self._next_frame = 0
        #: frame_id -> Frame for every *resident* frame, in LRU order
        #: (oldest first).
        self._lru: "OrderedDict[int, Frame]" = OrderedDict()
        #: Every live frame, resident or evicted (epoch rollback needs
        #: to reach evicted frames' disk pages too).
        self._all: dict = {}
        self.evictions = 0
        self.reloads = 0

    @property
    def resident_bytes(self) -> int:
        return self._lease.nbytes

    # -- frame lifecycle -------------------------------------------------

    def add(self, payload, nbytes: int, ctx=None) -> Frame:
        """Admit a fresh payload as a resident frame."""
        self._next_frame += 1
        frame = Frame(self._next_frame, payload, nbytes, self.governor._epoch)
        self.governor.request(self._lease, nbytes, ctx)
        self._lru[frame.frame_id] = frame
        self._all[frame.frame_id] = frame
        return frame

    def pin(self, frame: Frame, ctx=None):
        """Return the frame's payload, reloading it from the spill
        backend if evicted; the frame cannot be evicted until the
        matching :meth:`unpin`."""
        if frame.payload is None:
            payload = self.backend.read(frame.page_id)
            self.governor.charge_spill(ctx, frame.nbytes)
            self.governor.request(self._lease, frame.nbytes, ctx)
            frame.payload = payload
            self.reloads += 1
            self._lru[frame.frame_id] = frame
        else:
            self._lru.move_to_end(frame.frame_id)
        frame.pins += 1
        return frame.payload

    def unpin(self, frame: Frame) -> None:
        if frame.pins <= 0:
            raise RuntimeError("unpin of a frame that is not pinned")
        frame.pins -= 1

    def release(self, frame: Frame) -> None:
        """Drop the frame entirely: residency and any spilled copy."""
        if frame.payload is not None:
            frame.payload = None
            self.governor.release(self._lease, frame.nbytes)
            self._lru.pop(frame.frame_id, None)
        if frame.page_id is not None:
            self.backend.delete(frame.page_id)
            frame.page_id = None
        self._all.pop(frame.frame_id, None)

    def release_epoch(self, epoch: int) -> None:
        """Drop every frame admitted in or after ``epoch`` (the
        governor's rollback of a failed batch)."""
        for frame in [
            f for f in self._all.values() if f.epoch >= epoch
        ]:
            frame.pins = 0  # its owner is dead; nothing will unpin
            self.release(frame)

    # -- eviction ---------------------------------------------------------

    def evict_until(self, need_bytes: int, ctx=None) -> int:
        """Evict unpinned resident frames, LRU first, until
        ``need_bytes`` have been freed (or nothing evictable remains);
        returns the bytes actually freed."""
        freed = 0
        if need_bytes <= 0:
            return freed
        for frame_id in list(self._lru):
            if freed >= need_bytes:
                break
            frame = self._lru[frame_id]
            if frame.pins:
                continue
            if frame.page_id is None:
                frame.page_id = self.backend.write(frame.payload)
                self.governor.charge_spill(ctx, frame.nbytes)
            frame.payload = None
            del self._lru[frame_id]
            self.governor.release(self._lease, frame.nbytes)
            self.evictions += 1
            freed += frame.nbytes
        tracer = self.governor.tracer
        if tracer is not None and freed:
            args = {"freed": freed, "need": need_bytes}
            if ctx is not None:
                tracer.instant(
                    "governor.evict", "governor",
                    ctx.metrics.clock_ticks, args,
                )
            else:
                tracer.instant_now("governor.evict", "governor", args)
        return freed


class PagedRows:
    """A table's rows as governor-managed column pages.

    Duck-types the slice of the ``list`` interface the scan machinery
    uses — ``len()`` and integer indexing — so
    :class:`~repro.exec.arrival.ArrivalModel` and
    :class:`~repro.exec.operators.scan.PScan` stream it unchanged.
    """

    __slots__ = (
        "_ctx", "_buffer", "_frames", "_n_rows", "_page_rows",
        "_memo_index", "_memo_rows",
    )

    def __init__(self, ctx, schema, rows, page_rows: Optional[int] = None):
        from repro.common.sizing import row_nbytes
        governor = ctx.governor
        self._ctx = ctx
        self._buffer = governor.buffer
        self._page_rows = page_rows or governor.page_records_for(
            row_nbytes(schema)
        )
        self._n_rows = len(rows)
        self._frames = []
        # Pages are admitted one by one: under a tight budget, earlier
        # pages spill to the backend while later ones are built.
        for page in build_pages(rows, schema, self._page_rows):
            self._frames.append(self._buffer.add(page, page.nbytes, ctx))
        #: One-page row memo.  Scans walk rows in index order, which
        #: used to rebuild a tuple from the column lists on *every*
        #: access; now a page transposes once and every further row on
        #: it is a list index.  Each access still pins the frame, so
        #: the governor-observable surface — reload charges, LRU
        #: recency, resident bytes — is exactly the pre-memo pattern.
        self._memo_index = -1
        self._memo_rows = None

    def __len__(self) -> int:
        return self._n_rows

    def __getitem__(self, index: int):
        if index < 0:
            index += self._n_rows
        if not 0 <= index < self._n_rows:
            raise IndexError(index)
        page_index, offset = divmod(index, self._page_rows)
        frame = self._frames[page_index]
        page = self._buffer.pin(frame, self._ctx)
        try:
            if page_index != self._memo_index:
                self._memo_rows = page.rows()
                self._memo_index = page_index
            return self._memo_rows[offset]
        finally:
            self._buffer.unpin(frame)

    def __iter__(self):
        for index in range(self._n_rows):
            yield self[index]

    def release(self) -> None:
        """Drop every page (called when the scan is exhausted)."""
        self._memo_index = -1
        self._memo_rows = None
        for frame in self._frames:
            self._buffer.release(frame)
