"""Spill spools: append-only paged record runs on the spill backend.

Stateful operators shed hash state Grace-style: keys hash into
:data:`N_SPILL_PARTITIONS` fixed partitions, and a spilled partition's
records live in :class:`Spool` runs — an in-memory tail page (accounted
against the governor) that flushes to one pickled page file whenever it
fills.  Replay streams the pages back one at a time, so completion
processing never re-materialises a whole partition set at once.

Partition placement uses :func:`repro.common.hashing.stable_key`, so
which keys spill together is deterministic across processes — a
requirement for the reproducible benchmark cells CI gates on.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.hashing import stable_key

#: Grace-style fan-out: enough that one partition of an over-budget
#: state comfortably fits back in memory at recursion depth 1.
N_SPILL_PARTITIONS = 16


def spill_partition(key, n_partitions: int = N_SPILL_PARTITIONS) -> int:
    """Deterministic partition id of one state key."""
    return hash(stable_key(key)) % n_partitions


def pick_spill_victim(weights, spilled) -> "int | None":
    """The spill victim policy every stateful operator shares: the
    heaviest still-resident partition, ties broken toward the lowest
    id (deterministic); None once nothing spillable remains.

    ``weights[pid]`` is the partition's resident weight (rows, groups
    or bytes — only relative order matters); ``spilled`` holds the
    pids already on disk.
    """
    best, best_weight = None, 0
    for pid, weight in enumerate(weights):
        if pid in spilled or weight <= best_weight:
            continue
        best, best_weight = pid, weight
    return best


class Spool:
    """One partition generation's records, paged onto the backend."""

    __slots__ = (
        "_ctx", "_governor", "_record_nbytes", "_page_records",
        "_open", "_pages", "_flushed_records", "_lease",
    )

    def __init__(self, ctx, governor, record_nbytes: int, label: str = ""):
        self._ctx = ctx
        self._governor = governor
        self._record_nbytes = record_nbytes
        self._page_records = governor.page_records_for(record_nbytes)
        #: The unflushed tail page (resident, governor-accounted).
        self._open: List = []
        #: Flushed pages: ``(backend_page_id, n_records, nbytes)``.
        self._pages: List[Tuple[int, int, int]] = []
        self._flushed_records = 0
        self._lease = governor.lease("spool:%s" % label)
        # The unflushed tail is resident state the governor may flush
        # out under pressure, so the spool itself is a spill target.
        governor.register_spillable(self)

    @property
    def n_records(self) -> int:
        return self._flushed_records + len(self._open)

    @property
    def resident_nbytes(self) -> int:
        return len(self._open) * self._record_nbytes

    def spillable_nbytes(self) -> int:
        """Reclaim protocol: the tail page can always be written out."""
        return len(self._open) * self._record_nbytes

    def spill(self, need_bytes: int, ctx) -> int:
        freed = len(self._open) * self._record_nbytes
        self.flush()
        return freed

    def append(self, record) -> None:
        """Add one record; flushes a full tail page to the backend."""
        self._governor.request(self._lease, self._record_nbytes, self._ctx)
        self._open.append(record)
        if len(self._open) >= self._page_records:
            self.flush()

    def flush(self) -> None:
        """Write the tail page out and drop its residency."""
        if not self._open:
            return
        nbytes = len(self._open) * self._record_nbytes
        page_id = self._governor.backend.write(self._open)
        self._governor.charge_spill(self._ctx, nbytes)
        self._pages.append((page_id, len(self._open), nbytes))
        self._flushed_records += len(self._open)
        self._governor.release(self._lease, nbytes)
        self._open = []

    def records(self):
        """Stream every record in append order, one page resident at a
        time.  Safe to call repeatedly — each pass re-reads the pages
        (and pays the spill-read charges again): state is streamed,
        never re-materialised wholesale.
        """
        lease = self._lease
        for page_id, _count, nbytes in self._pages:
            payload = self._governor.backend.read(page_id)
            self._governor.charge_spill(self._ctx, nbytes)
            self._governor.request(lease, nbytes, self._ctx)
            try:
                yield from payload
            finally:
                self._governor.release(lease, nbytes)
        yield from list(self._open)

    def discard(self) -> None:
        """Delete the run: backend pages and tail-page residency."""
        self._governor.unregister_spillable(self)
        for page_id, _count, _nbytes in self._pages:
            self._governor.backend.delete(page_id)
        self._pages = []
        self._flushed_records = 0
        if self._open:
            self._governor.release(
                self._lease, len(self._open) * self._record_nbytes
            )
            self._open = []

    def __repr__(self) -> str:
        return "Spool(%d records, %d pages)" % (
            self.n_records, len(self._pages),
        )
