"""The spill backend: pickle-per-page files under a temp directory.

One :class:`DiskBackend` serves a whole governed run (or a whole
:class:`~repro.service.service.QueryService` lifetime).  The directory
is created lazily on the first write and removed — with everything in
it — by :meth:`DiskBackend.close`, which callers invoke from
``finally`` blocks so an engine error never strands spill files.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from typing import Optional


class DiskBackend:
    """Writes, reads and deletes pickled page payloads by id."""

    def __init__(self, spill_dir: Optional[str] = None):
        #: Explicit directory override (created if missing); by default
        #: a private ``repro-spill-*`` temp directory is made lazily.
        self._root = spill_dir
        self._dir: Optional[str] = None
        self._next_id = 0
        self.pages_written = 0
        self.pages_read = 0
        self.bytes_written = 0
        self.bytes_read = 0
        self.closed = False

    @property
    def path(self) -> Optional[str]:
        """The spill directory, or None while nothing has been written."""
        return self._dir

    def _ensure_dir(self) -> str:
        if self.closed:
            raise RuntimeError("spill backend already closed")
        if self._dir is None:
            if self._root is not None:
                os.makedirs(self._root, exist_ok=True)
                self._dir = self._root
            else:
                self._dir = tempfile.mkdtemp(prefix="repro-spill-")
        return self._dir

    def _file_for(self, page_id: int) -> str:
        return os.path.join(self._dir, "page-%08d.bin" % page_id)

    def write(self, payload) -> int:
        """Pickle ``payload`` to a fresh page file; returns its id."""
        directory = self._ensure_dir()
        page_id = self._next_id
        self._next_id += 1
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        with open(os.path.join(directory, "page-%08d.bin" % page_id), "wb") as fh:
            fh.write(data)
        self.pages_written += 1
        self.bytes_written += len(data)
        return page_id

    def read(self, page_id: int):
        """Unpickle one page payload back."""
        if self._dir is None:
            raise KeyError("no page %d: nothing spilled yet" % page_id)
        with open(self._file_for(page_id), "rb") as fh:
            data = fh.read()
        self.pages_read += 1
        self.bytes_read += len(data)
        return pickle.loads(data)

    def delete(self, page_id: int) -> None:
        """Remove one page file (missing files are ignored: a page may
        be deleted after a close-in-progress already swept it)."""
        if self._dir is None:
            return
        try:
            os.remove(self._file_for(page_id))
        except FileNotFoundError:
            pass

    def close(self) -> None:
        """Remove the spill directory and everything in it."""
        self.closed = True
        if self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)
            self._dir = None
