"""Fixed-capacity column pages.

A :class:`ColumnPage` holds up to :data:`PAGE_ROWS` tuples of one
schema in columnar layout (one Python list per attribute).  Pages are
built **once** from a table's row list and are immutable afterwards,
which is what lets the buffer manager evict and reload them freely:
a reloaded page reconstructs exactly the tuples it was built from.

Byte accounting goes through :mod:`repro.common.sizing` so a page
"weighs" precisely what the same rows weigh in every other budgeting
layer.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.sizing import rows_nbytes

Row = Tuple

#: Default page capacity, in rows.  Small enough that modest budgets
#: hold several pages; large enough that per-page overheads amortise.
PAGE_ROWS = 256


class ColumnPage:
    """An immutable columnar block of rows sharing one schema."""

    __slots__ = ("columns", "n_rows", "nbytes")

    def __init__(self, rows: List[Row], schema):
        width = len(schema)
        self.n_rows = len(rows)
        self.columns = [[row[i] for row in rows] for i in range(width)]
        self.nbytes = rows_nbytes(schema, self.n_rows)

    def row(self, index: int) -> Row:
        """Reconstruct one tuple by page-local index."""
        return tuple(column[index] for column in self.columns)

    def column(self, index: int) -> List:
        """One attribute's values across the page (zero-copy)."""
        return self.columns[index]

    def rows(self) -> List[Row]:
        """Reconstruct every tuple, in build order."""
        return list(zip(*self.columns)) if self.columns else []

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        return "ColumnPage(%d rows, %d bytes)" % (self.n_rows, self.nbytes)


def build_pages(rows: List[Row], schema, page_rows: int = PAGE_ROWS):
    """Split ``rows`` into column pages of at most ``page_rows`` each.

    A generator: callers building under a memory budget admit each page
    through the governor before the next one is materialised.
    """
    if page_rows < 1:
        raise ValueError("need page_rows >= 1")
    for start in range(0, len(rows), page_rows):
        yield ColumnPage(rows[start:start + page_rows], schema)
