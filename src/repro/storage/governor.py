"""The memory governor: one process-wide budget for engine state.

Admission control (:mod:`repro.service.admission`) *estimates* what a
query will buffer; the governor *enforces* what actually gets buffered.
Every byte-holding component — the buffer pool's table pages, each
stateful operator's hash state, spill spool write buffers — accounts
through a :class:`Lease`, and the governor keeps the aggregate.

The lease protocol:

* ``lease = governor.lease(label)`` — open an account;
* ``lease.grow(nbytes, ctx)`` — admit bytes.  If the grow would push
  the aggregate past the budget the governor first **reclaims**: it
  evicts unpinned buffer-pool pages (cheapest — clean table pages just
  move to the spill backend), then asks registered spillable operators
  — largest lease first — to spill hash partitions to disk.  The grow
  itself always succeeds: correctness never depends on memory, only
  residency does.  ``ctx`` is the execution context whose virtual
  clock pays for any spill I/O the reclaim performs;
* ``lease.shrink(nbytes)`` / ``lease.close()`` — return bytes.

``budget=None`` builds an accounting-only governor (used to *measure*
peak residency); queries run entirely without a governor when no
memory budget is requested, which keeps the un-governed hot path
bit-identical to the pre-storage engine.
"""

from __future__ import annotations

from typing import List, Optional

from repro.storage.disk import DiskBackend


class Lease:
    """One component's byte account with the governor."""

    __slots__ = ("governor", "label", "nbytes", "seq", "epoch", "closed")

    def __init__(self, governor: "MemoryGovernor", label: str, seq: int,
                 epoch: int):
        self.governor = governor
        self.label = label
        self.nbytes = 0
        self.seq = seq
        #: Which accounting epoch opened this lease — the service layer
        #: rolls a failed batch's epoch back wholesale.
        self.epoch = epoch
        self.closed = False

    def grow(self, nbytes: int, ctx=None) -> None:
        self.governor.request(self, nbytes, ctx)

    def shrink(self, nbytes: int) -> None:
        self.governor.release(self, nbytes)

    def close(self) -> None:
        """Return every remaining byte and retire the lease."""
        if not self.closed:
            if self.nbytes:
                self.governor.release(self, self.nbytes)
            self.closed = True

    def __repr__(self) -> str:
        return "Lease(%r, %d bytes)" % (self.label, self.nbytes)


class MemoryGovernor:
    """Holds the process-wide state budget and hands out leases."""

    def __init__(
        self,
        budget: Optional[int],
        spill_dir: Optional[str] = None,
        page_rows: Optional[int] = None,
    ):
        if budget is not None and budget < 0:
            raise ValueError("memory budget must be >= 0 bytes (or None)")
        from repro.storage.buffer import BufferManager
        from repro.storage.page import PAGE_ROWS

        self.budget = budget
        #: Page capacity (rows/records) every paged component of this
        #: run uses, so budgets relate to one page-size granularity.
        self.page_rows = page_rows or PAGE_ROWS
        self.resident_bytes = 0
        self.peak_resident_bytes = 0
        #: Grows that stayed over budget even after a full reclaim pass
        #: (nothing left to evict or spill — e.g. a zero budget, or a
        #: single page larger than the whole budget).
        self.over_budget_events = 0
        self._spillables: List = []
        self._leases: List[Lease] = []
        self._lease_seq = 0
        self._epoch = 0
        self._reclaiming = False
        self._window_peak = 0
        self._window_state_peak = 0
        self.closed = False
        #: Trace collector shared with the run's contexts, or None.
        #: Governor hook sites fire through this (not a ctx) because
        #: leases outlive any single query's context.
        self.tracer = None
        self.buffer = None  # so state accounting guards during setup
        self.backend = DiskBackend(spill_dir)
        self.buffer = BufferManager(self, self.backend)

    #: Target page payload size; pages are capped at ``page_rows``
    #: records but also at roughly this many bytes so one page of wide
    #: rows never dwarfs a small budget.
    PAGE_NBYTES_TARGET = 16384

    def page_records_for(self, record_nbytes: int) -> int:
        """How many records of ``record_nbytes`` one page should hold:
        the row cap, shrunk so a single page stays a small fraction of
        a finite budget (a page is the indivisible residency granule —
        reclaim cannot split one)."""
        target = self.PAGE_NBYTES_TARGET
        if self.budget is not None:
            target = min(target, max(1024, self.budget // 8))
        return max(1, min(self.page_rows, target // max(record_nbytes, 1)))

    # -- leases ---------------------------------------------------------

    def lease(self, label: str) -> Lease:
        self._lease_seq += 1
        lease = Lease(self, label, self._lease_seq, self._epoch)
        self._leases.append(lease)
        if self.tracer is not None:
            # Leases open during operator construction, where no query
            # clock is at hand; stamp with the trace's high-water mark.
            self.tracer.instant_now(
                "governor.lease", "governor",
                {"label": label, "seq": lease.seq},
            )
        return lease

    def _pool_nbytes(self) -> int:
        """Bytes held by the buffer pool (base-table pages)."""
        buffer = self.buffer
        return buffer.resident_bytes if buffer is not None else 0

    def request(self, lease: Lease, nbytes: int, ctx=None) -> None:
        """Admit ``nbytes`` onto ``lease``, reclaiming first if the
        aggregate would cross the budget."""
        if nbytes <= 0:
            if nbytes < 0:
                self.release(lease, -nbytes)
            return
        budget = self.budget
        if (
            budget is not None
            and not self._reclaiming
            and self.resident_bytes + nbytes > budget
        ):
            self._reclaim(self.resident_bytes + nbytes - budget, ctx)
            if self.resident_bytes + nbytes > budget:
                self.over_budget_events += 1
                if self.tracer is not None:
                    args = {
                        "lease": lease.label,
                        "resident": self.resident_bytes + nbytes,
                        "budget": budget,
                    }
                    if ctx is not None:
                        self.tracer.instant(
                            "governor.over_budget", "governor",
                            ctx.metrics.clock_ticks, args,
                        )
                    else:
                        self.tracer.instant_now(
                            "governor.over_budget", "governor", args,
                        )
        lease.nbytes += nbytes
        self.resident_bytes += nbytes
        if self.resident_bytes > self.peak_resident_bytes:
            self.peak_resident_bytes = self.resident_bytes
        if self.resident_bytes > self._window_peak:
            self._window_peak = self.resident_bytes
        state = self.resident_bytes - self._pool_nbytes()
        if state > self._window_state_peak:
            self._window_state_peak = state

    def release(self, lease: Lease, nbytes: int) -> None:
        if nbytes <= 0:
            return
        lease.nbytes -= nbytes
        self.resident_bytes -= nbytes

    # -- reclamation -----------------------------------------------------

    def register_spillable(self, handler) -> None:
        """Register an operator that can shed state to disk.  The
        handler exposes ``spillable_nbytes()`` and
        ``spill(need_bytes, ctx) -> freed_bytes``."""
        self._spillables.append(handler)

    def unregister_spillable(self, handler) -> None:
        try:
            self._spillables.remove(handler)
        except ValueError:
            pass

    def _reclaim(self, need_bytes: int, ctx) -> None:
        """Free at least ``need_bytes`` of residency, cheapest first.

        Re-entrant grows performed *by* the reclaim (spool write
        buffers filling while an operator spills) skip further
        reclamation — the spill path itself is monotonically freeing.
        """
        self._reclaiming = True
        try:
            freed = self.buffer.evict_until(need_bytes, ctx)
            if freed >= need_bytes:
                return
            # Largest holder first; registration order breaks ties so
            # the victim sequence is deterministic.  Iterate a snapshot
            # — spilling operators open fresh spools, which register.
            ranked = sorted(
                enumerate(list(self._spillables)),
                key=lambda pair: (-pair[1].spillable_nbytes(), pair[0]),
            )
            for _seq, handler in ranked:
                if freed >= need_bytes:
                    break
                if handler not in self._spillables:
                    continue  # retired by an earlier victim's spill
                freed += handler.spill(need_bytes - freed, ctx)
        finally:
            self._reclaiming = False

    # -- spill I/O charging ---------------------------------------------

    def charge_spill(self, ctx, nbytes: int, events: int = 1) -> None:
        """Bill ``nbytes`` of spill traffic (``events`` page moves) to
        the run's virtual clock and spill counters."""
        if ctx is None:
            return
        cm = ctx.cost_model
        ctx.charge_events(events, cm.spill_page_io)
        ctx.charge(nbytes * cm.spill_byte_io)
        ctx.metrics.spill_bytes += nbytes
        ctx.metrics.spill_events += events
        if self.tracer is not None:
            self.tracer.instant(
                "governor.spill", "governor", ctx.metrics.clock_ticks,
                {"bytes": nbytes, "pages": events},
            )

    # -- observation ------------------------------------------------------

    def take_window_peak(self) -> int:
        """Peak residency since the previous call; resets the window to
        the current residency."""
        peak = self._window_peak
        self._window_peak = self.resident_bytes
        return peak

    def take_window_state_peak(self) -> int:
        """Peak *operator-state* residency (total minus the buffer
        pool's base-table pages) since the previous call.  The service
        layer reads one per dispatched batch to reconcile admission
        estimates — which model operator state only, so table pages
        must not inflate the comparison."""
        peak = self._window_state_peak
        self._window_state_peak = self.resident_bytes - self._pool_nbytes()
        return peak

    # -- epochs (batch-scoped rollback) -----------------------------------

    def begin_epoch(self) -> int:
        """Open a new accounting epoch; everything leased or admitted
        from now on can be rolled back wholesale with
        :meth:`abort_epoch`.  Also prunes retired leases."""
        self._leases = [lease for lease in self._leases if not lease.closed]
        self._epoch += 1
        return self._epoch

    def abort_epoch(self, epoch: int) -> None:
        """Roll back a failed batch: close every lease opened in (or
        after) ``epoch``, drop its spill handlers, release the buffer
        frames it admitted, and discard the observation windows — dead
        operators must not hold residency, serve as reclaim victims,
        or poison the next successful batch's reconciliation."""
        self._spillables = [
            handler for handler in self._spillables
            if getattr(handler, "_lease", None) is None
            or handler._lease.epoch < epoch
        ]
        if self.buffer is not None:
            self.buffer.release_epoch(epoch)
        for lease in self._leases:
            if lease.epoch >= epoch:
                lease.close()
        self._leases = [lease for lease in self._leases if not lease.closed]
        self._window_peak = self.resident_bytes
        self._window_state_peak = self.resident_bytes - self._pool_nbytes()

    def close(self) -> None:
        """Tear down the spill directory; leases become inert."""
        self.closed = True
        self._spillables = []
        self.backend.close()

    def __repr__(self) -> str:
        return "MemoryGovernor(budget=%r, resident=%d, peak=%d)" % (
            self.budget, self.resident_bytes, self.peak_resident_bytes,
        )
