"""Paged columnar storage under a process-wide memory governor.

The engine's working sets — base-table rows streamed by scans, the
hash state of stateful operators, spilled partition runs — all live in
Python memory.  This package bounds that memory:

* :mod:`repro.storage.page` — fixed-capacity **column pages** built
  once from :class:`~repro.data.table.Table` rows, with ``nbytes``
  accounting through :mod:`repro.common.sizing`;
* :mod:`repro.storage.disk` — the spill backend: one pickle file per
  page under a private temp directory, removed on close;
* :mod:`repro.storage.buffer` — a **buffer manager** with pin/unpin
  and LRU eviction to the disk backend, plus :class:`PagedRows`, the
  sequence facade scans stream instead of materialised row lists;
* :mod:`repro.storage.spill` — append-only paged **spools** the
  stateful operators write Grace-style hash partitions through;
* :mod:`repro.storage.governor` — the :class:`MemoryGovernor` holding
  the process-wide state budget; components account through leases,
  and a grow that would cross the budget first reclaims (buffer-pool
  eviction, then operator spills, largest lease first).

With no governor attached (``memory_budget=None``) none of this is
instantiated and execution is bit-identical to the un-governed engine;
with a finite budget, results are identical while governor-observed
resident state stays under budget, and spill I/O is charged to the
virtual clock as ``spill_bytes``/``spill_events``.
"""

from repro.storage.buffer import BufferManager, PagedRows
from repro.storage.disk import DiskBackend
from repro.storage.governor import Lease, MemoryGovernor
from repro.storage.page import PAGE_ROWS, ColumnPage, build_pages
from repro.storage.spill import N_SPILL_PARTITIONS, Spool, spill_partition

__all__ = [
    "BufferManager",
    "ColumnPage",
    "DiskBackend",
    "Lease",
    "MemoryGovernor",
    "N_SPILL_PARTITIONS",
    "PAGE_ROWS",
    "PagedRows",
    "Spool",
    "build_pages",
    "spill_partition",
]
