"""SQL tokenizer."""

from __future__ import annotations

import re
from typing import List, NamedTuple

from repro.common.errors import ReproError


class SqlSyntaxError(ReproError):
    """Raised on malformed SQL text."""


class Token(NamedTuple):
    kind: str   # KEYWORD, NAME, NUMBER, STRING, OP, LPAREN, RPAREN, COMMA, STAR
    value: str
    position: int


KEYWORDS = frozenset({
    "select", "distinct", "from", "where", "and", "or", "not",
    "group", "by", "as", "like", "sum", "min", "max", "avg", "count",
})

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|<>|!=|=|<|>|\+|-|\*|/)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<dot>\.)
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> List[Token]:
    """Split SQL text into tokens; raises SqlSyntaxError on junk."""
    tokens: List[Token] = []
    pos = 0
    n = len(text)
    while pos < n:
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SqlSyntaxError(
                "unexpected character %r at position %d" % (text[pos], pos)
            )
        kind = match.lastgroup
        value = match.group()
        if kind == "ws":
            pos = match.end()
            continue
        if kind == "string":
            tokens.append(Token("STRING", value[1:-1].replace("''", "'"), pos))
        elif kind == "number":
            tokens.append(Token("NUMBER", value, pos))
        elif kind == "name":
            lowered = value.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("KEYWORD", lowered, pos))
            else:
                tokens.append(Token("NAME", lowered, pos))
        elif kind == "op":
            tokens.append(Token("OP", value, pos))
        elif kind == "lparen":
            tokens.append(Token("LPAREN", value, pos))
        elif kind == "rparen":
            tokens.append(Token("RPAREN", value, pos))
        elif kind == "comma":
            tokens.append(Token("COMMA", value, pos))
        elif kind == "dot":
            tokens.append(Token("DOT", value, pos))
        pos = match.end()
    return tokens
