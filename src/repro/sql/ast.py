"""SQL abstract syntax (source-level, pre-binding).

Distinct from :mod:`repro.expr.expressions`, which is the *bound*
expression language over plan schemas: SQL references may be
``alias.column`` or bare columns that need resolution, and aggregate
calls and scalar subqueries only make sense before decorrelation.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union


class SqlExpr:
    """Base class for source expressions."""


class ColumnRef(SqlExpr):
    """``column`` or ``alias.column``."""

    __slots__ = ("qualifier", "name")

    def __init__(self, name: str, qualifier: Optional[str] = None):
        self.name = name
        self.qualifier = qualifier

    def __repr__(self) -> str:
        if self.qualifier:
            return "ColumnRef(%s.%s)" % (self.qualifier, self.name)
        return "ColumnRef(%s)" % self.name


class Literal(SqlExpr):
    __slots__ = ("value",)

    def __init__(self, value: Union[int, float, str]):
        self.value = value

    def __repr__(self) -> str:
        return "Literal(%r)" % (self.value,)


class BinaryOp(SqlExpr):
    """Arithmetic: + - * /."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: SqlExpr, right: SqlExpr):
        self.op = op
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return "(%r %s %r)" % (self.left, self.op, self.right)


class FuncCall(SqlExpr):
    """Scalar function call (``year(...)``)."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[SqlExpr]):
        self.name = name
        self.args = list(args)

    def __repr__(self) -> str:
        return "FuncCall(%s, %r)" % (self.name, self.args)


class AggCall(SqlExpr):
    """Aggregate call: sum/min/max/avg/count."""

    __slots__ = ("func", "arg")

    def __init__(self, func: str, arg: Optional[SqlExpr]):
        self.func = func
        self.arg = arg  # None for count(*)

    def __repr__(self) -> str:
        return "AggCall(%s, %r)" % (self.func, self.arg)


class Comparison(SqlExpr):
    """``expr cmp expr`` with cmp in = != < <= > >=."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: SqlExpr, right: SqlExpr):
        self.op = op
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return "Comparison(%r %s %r)" % (self.left, self.op, self.right)


class LikePredicate(SqlExpr):
    __slots__ = ("term", "pattern")

    def __init__(self, term: SqlExpr, pattern: str):
        self.term = term
        self.pattern = pattern

    def __repr__(self) -> str:
        return "Like(%r, %r)" % (self.term, self.pattern)


class Subquery(SqlExpr):
    """A parenthesised scalar SELECT used inside a comparison."""

    __slots__ = ("query",)

    def __init__(self, query: "SelectStatement"):
        self.query = query

    def __repr__(self) -> str:
        return "Subquery(%r)" % (self.query,)


class SelectItem:
    __slots__ = ("expr", "alias")

    def __init__(self, expr: SqlExpr, alias: Optional[str] = None):
        self.expr = expr
        self.alias = alias

    def __repr__(self) -> str:
        return "SelectItem(%r as %s)" % (self.expr, self.alias)


class TableRef:
    __slots__ = ("table", "alias")

    def __init__(self, table: str, alias: Optional[str] = None):
        self.table = table
        self.alias = alias or table

    def __repr__(self) -> str:
        return "TableRef(%s as %s)" % (self.table, self.alias)


class SelectStatement:
    """One SELECT block."""

    __slots__ = ("items", "tables", "where", "group_by", "distinct")

    def __init__(
        self,
        items: Sequence[SelectItem],
        tables: Sequence[TableRef],
        where: Sequence[SqlExpr] = (),
        group_by: Sequence[SqlExpr] = (),
        distinct: bool = False,
    ):
        self.items = list(items)
        self.tables = list(tables)
        self.where = list(where)  # implicit conjunction
        self.group_by = list(group_by)
        self.distinct = distinct

    def __repr__(self) -> str:
        return "SelectStatement(%d items, %d tables, %d conjuncts)" % (
            len(self.items), len(self.tables), len(self.where),
        )
