"""Bind SQL to logical plans, decorrelating scalar subqueries.

The binder turns a parsed :class:`SelectStatement` into the bushy plan
shape the paper's Figure 1 shows:

1. resolve column references against the FROM relations (inner scope
   first, then the outer scope — an outer hit is a *correlation*);
2. plan the outer block's joins greedily (``repro.optimizer.planner``);
3. every ``expr cmp (SELECT agg ...)`` conjunct becomes: a grouped
   aggregate over the subquery's join tree keyed by its correlation
   columns, joined back to the outer tree on those columns, with the
   comparison as the join residual;
4. GROUP BY / aggregates / DISTINCT / projection go on top.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import PlanError
from repro.data.catalog import Catalog
from repro.expr import expressions as bound
from repro.expr.aggregates import AggregateSpec
from repro.optimizer.planner import ConjunctiveQuery, plan_query
from repro.plan.logical import Distinct, GroupBy, Join, LogicalNode, Project
from repro.sql import ast
from repro.sql.parser import parse


class _Scope:
    """Name resolution for one SELECT block."""

    def __init__(
        self,
        catalog: Catalog,
        tables: Sequence[ast.TableRef],
        parent: Optional["_Scope"] = None,
        forced_prefix: Optional[str] = None,
    ):
        self.catalog = catalog
        self.parent = parent
        #: (alias, table) pairs as the planner wants them.
        self.relations: List[Tuple[str, str]] = []
        #: bare column name -> resolved (prefixed) name
        self._by_column: Dict[str, List[str]] = {}
        #: alias -> {column -> resolved name}
        self._by_alias: Dict[str, Dict[str, str]] = {}

        taken = set()
        scope = parent
        while scope is not None:
            taken.update(alias for alias, _ in scope.relations)
            scope = scope.parent

        for ref in tables:
            alias = ref.alias
            if forced_prefix and alias in taken:
                alias = "%s%s" % (forced_prefix, alias)
            if alias in taken or alias in self._by_alias:
                raise PlanError("relation alias %r is ambiguous" % alias)
            taken.add(alias)
            self.relations.append((alias, ref.table))
            schema = catalog.table(ref.table).schema
            columns = {}
            for name in schema.names:
                resolved = name if alias == ref.table else "%s_%s" % (alias, name)
                columns[name] = resolved
                self._by_column.setdefault(name, []).append(resolved)
            self._by_alias[ref.alias] = columns
            if alias != ref.alias:
                self._by_alias[alias] = columns

    def resolve(self, ref: ast.ColumnRef) -> Tuple[str, bool]:
        """Resolve to ``(name, is_outer)``; inner scope wins."""
        local = self._resolve_local(ref)
        if local is not None:
            return local, False
        if self.parent is not None:
            name, _ = self.parent.resolve(ref)
            return name, True
        raise PlanError("cannot resolve column %r" % (ref,))

    def _resolve_local(self, ref: ast.ColumnRef) -> Optional[str]:
        if ref.qualifier is not None:
            columns = self._by_alias.get(ref.qualifier)
            if columns is None:
                return None
            name = columns.get(ref.name)
            if name is None:
                raise PlanError(
                    "no column %r in relation %r" % (ref.name, ref.qualifier)
                )
            return name
        candidates = self._by_column.get(ref.name, [])
        if len(candidates) > 1:
            raise PlanError("ambiguous column %r" % ref.name)
        return candidates[0] if candidates else None


class _Binder:
    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._subquery_counter = 0

    # -- expressions -----------------------------------------------------------

    def bind_expr(self, expr: ast.SqlExpr, scope: _Scope) -> bound.Expr:
        """Bind a scalar (non-aggregate) expression; correlation (outer)
        references are allowed and resolve to outer names."""
        if isinstance(expr, ast.ColumnRef):
            name, _ = scope.resolve(expr)
            return bound.Col(name)
        if isinstance(expr, ast.Literal):
            return bound.Lit(expr.value)
        if isinstance(expr, ast.BinaryOp):
            return bound.Arith(
                expr.op,
                self.bind_expr(expr.left, scope),
                self.bind_expr(expr.right, scope),
            )
        if isinstance(expr, ast.FuncCall):
            return bound.Func(
                expr.name, *(self.bind_expr(a, scope) for a in expr.args)
            )
        if isinstance(expr, ast.Comparison):
            return bound.Cmp(
                expr.op,
                self.bind_expr(expr.left, scope),
                self.bind_expr(expr.right, scope),
            )
        if isinstance(expr, ast.LikePredicate):
            return bound.Like(self.bind_expr(expr.term, scope), expr.pattern)
        if isinstance(expr, ast.AggCall):
            raise PlanError("aggregate used outside an aggregate context")
        if isinstance(expr, ast.Subquery):
            raise PlanError(
                "subqueries are only supported as 'expr cmp (select ...)'"
            )
        raise PlanError("cannot bind %r" % (expr,))

    def _split_aggregate(self, expr: ast.SqlExpr):
        """Find the single AggCall inside ``expr``; return it and the
        expression with the call replaced by a placeholder column."""
        found: List[ast.AggCall] = []

        def rewrite(node: ast.SqlExpr) -> ast.SqlExpr:
            if isinstance(node, ast.AggCall):
                found.append(node)
                return ast.ColumnRef("__agg_placeholder")
            if isinstance(node, ast.BinaryOp):
                return ast.BinaryOp(
                    node.op, rewrite(node.left), rewrite(node.right)
                )
            if isinstance(node, ast.FuncCall):
                return ast.FuncCall(node.name, [rewrite(a) for a in node.args])
            return node

        rewritten = rewrite(expr)
        if len(found) != 1:
            raise PlanError(
                "expected exactly one aggregate call, found %d" % len(found)
            )
        return found[0], rewritten

    # -- subquery decorrelation --------------------------------------------------

    def _bind_scalar_subquery(
        self,
        outer_plan: LogicalNode,
        outer_scope: _Scope,
        outer_expr: ast.SqlExpr,
        op: str,
        subquery: ast.Subquery,
    ) -> LogicalNode:
        """Join ``outer_plan`` with the decorrelated subquery."""
        self._subquery_counter += 1
        tag = "sq%d" % self._subquery_counter
        statement = subquery.query
        if len(statement.items) != 1:
            raise PlanError("scalar subquery must select exactly one value")
        if statement.group_by or statement.distinct:
            raise PlanError("scalar subqueries may not GROUP BY or DISTINCT")

        scope = _Scope(
            self.catalog, statement.tables,
            parent=outer_scope, forced_prefix="%s_" % tag,
        )

        # Partition the subquery's conjuncts.
        correlations: List[Tuple[str, str]] = []   # (outer col, inner col)
        inner_conjuncts: List[bound.Expr] = []
        for conjunct in statement.where:
            correlation = self._as_correlation(conjunct, scope)
            if correlation is not None:
                correlations.append(correlation)
                continue
            inner_conjuncts.append(self.bind_expr(conjunct, scope))
        if not correlations:
            raise PlanError(
                "uncorrelated scalar subqueries are not supported; "
                "add an equality linking the subquery to the outer block"
            )

        inner_plan = plan_query(
            self.catalog,
            ConjunctiveQuery(scope.relations, inner_conjuncts),
        )

        # The single select item: agg(...) possibly wrapped in arithmetic.
        agg_call, wrapper = self._split_aggregate(statement.items[0].expr)
        agg_input = (
            self.bind_expr(agg_call.arg, scope)
            if agg_call.arg is not None else None
        )
        agg_name = "%s_agg" % tag
        value_name = "%s_val" % tag
        keys = [inner for _, inner in correlations]
        grouped: LogicalNode = GroupBy(
            inner_plan, keys, [AggregateSpec(agg_call.func, agg_input, agg_name)],
        )

        # Apply the wrapper arithmetic (e.g. 0.2 * avg(...)).
        wrapper_bound = self._bind_placeholder_expr(wrapper, grouped, agg_name)
        outputs = [(k, bound.Col(k)) for k in keys]
        outputs.append((value_name, wrapper_bound))
        projected = Project(grouped, outputs)

        residual = bound.Cmp(
            op, self.bind_expr(outer_expr, outer_scope), bound.Col(value_name)
        )
        return Join(
            outer_plan, projected,
            [outer for outer, _ in correlations], keys,
            residual=residual,
        )

    def _bind_placeholder_expr(
        self, expr: ast.SqlExpr, node: LogicalNode, agg_name: str
    ) -> bound.Expr:
        """Bind a rewritten select item whose aggregate became the
        placeholder column, mapping it to the grouped output."""
        if isinstance(expr, ast.ColumnRef):
            if expr.name == "__agg_placeholder":
                return bound.Col(agg_name)
            raise PlanError(
                "scalar subquery select may only combine the aggregate "
                "with literals"
            )
        if isinstance(expr, ast.Literal):
            return bound.Lit(expr.value)
        if isinstance(expr, ast.BinaryOp):
            return bound.Arith(
                expr.op,
                self._bind_placeholder_expr(expr.left, node, agg_name),
                self._bind_placeholder_expr(expr.right, node, agg_name),
            )
        raise PlanError("unsupported scalar subquery select %r" % (expr,))

    def _as_correlation(
        self, conjunct: ast.SqlExpr, scope: _Scope
    ) -> Optional[Tuple[str, str]]:
        """``outer_col = inner_col`` (either order) -> (outer, inner)."""
        if not isinstance(conjunct, ast.Comparison) or conjunct.op != "=":
            return None
        if not (
            isinstance(conjunct.left, ast.ColumnRef)
            and isinstance(conjunct.right, ast.ColumnRef)
        ):
            return None
        left, left_outer = scope.resolve(conjunct.left)
        right, right_outer = scope.resolve(conjunct.right)
        if left_outer and not right_outer:
            return (left, right)
        if right_outer and not left_outer:
            return (right, left)
        return None

    # -- top level -----------------------------------------------------------------

    def bind(self, statement: ast.SelectStatement) -> LogicalNode:
        scope = _Scope(self.catalog, statement.tables)

        plain: List[bound.Expr] = []
        subqueries = []
        for conjunct in statement.where:
            sub = self._extract_subquery_comparison(conjunct)
            if sub is not None:
                subqueries.append(sub)
            else:
                plain.append(self.bind_expr(conjunct, scope))

        plan = plan_query(
            self.catalog, ConjunctiveQuery(scope.relations, plain)
        )
        for outer_expr, op, subquery in subqueries:
            plan = self._bind_scalar_subquery(
                plan, scope, outer_expr, op, subquery
            )

        return self._bind_projection(statement, plan, scope)

    @staticmethod
    def _extract_subquery_comparison(conjunct: ast.SqlExpr):
        if not isinstance(conjunct, ast.Comparison):
            return None
        if isinstance(conjunct.right, ast.Subquery):
            return (conjunct.left, conjunct.op, conjunct.right)
        if isinstance(conjunct.left, ast.Subquery):
            flip = {"=": "=", "!=": "!=", "<": ">", "<=": ">=",
                    ">": "<", ">=": "<="}
            return (conjunct.right, flip[conjunct.op], conjunct.left)
        return None

    def _bind_projection(
        self,
        statement: ast.SelectStatement,
        plan: LogicalNode,
        scope: _Scope,
    ) -> LogicalNode:
        has_aggregates = any(
            self._contains_aggregate(item.expr) for item in statement.items
        )

        if statement.group_by or has_aggregates:
            result = self._bind_aggregation(statement, plan, scope)
        else:
            projected = []
            for item in statement.items:
                expr = self.bind_expr(item.expr, scope)
                name = item.alias or _default_name(item.expr)
                projected.append((name, expr))
            result = Project(plan, projected)

        if statement.distinct:
            result = Distinct(result)
        return result

    def _bind_aggregation(
        self,
        statement: ast.SelectStatement,
        plan: LogicalNode,
        scope: _Scope,
    ) -> LogicalNode:
        """GROUP BY / aggregate binding.

        Expression keys (``group by year(o_orderdate)`` — TPC-H Q9) are
        computed in a pre-projection together with every column the
        aggregate inputs need; plain column keys group directly.
        """
        # 1. Group keys: (key_name, canonical form, bound expr or None).
        key_specs: List[Tuple[str, str, Optional[bound.Expr]]] = []
        for i, group_expr in enumerate(statement.group_by):
            canonical = self._canonical(group_expr, scope)
            if isinstance(group_expr, ast.ColumnRef):
                name, is_outer = scope.resolve(group_expr)
                if is_outer:
                    raise PlanError("GROUP BY cannot reference outer scope")
                key_specs.append((name, canonical, None))
            else:
                key_specs.append(
                    ("_gk%d" % i, canonical, self.bind_expr(group_expr, scope))
                )

        # 2. Aggregates and select outputs.
        specs: List[AggregateSpec] = []
        outputs: List[Tuple[str, Optional[ast.SqlExpr], str]] = []
        for i, item in enumerate(statement.items):
            if self._contains_aggregate(item.expr):
                agg_call, wrapper = self._split_aggregate(item.expr)
                agg_input = (
                    self.bind_expr(agg_call.arg, scope)
                    if agg_call.arg is not None else None
                )
                agg_name = "_out_agg%d" % i
                specs.append(AggregateSpec(agg_call.func, agg_input, agg_name))
                outputs.append((item.alias or agg_name, wrapper, agg_name))
            else:
                canonical = self._canonical(item.expr, scope)
                key_name = next(
                    (name for name, c, _ in key_specs if c == canonical), None
                )
                if key_name is None:
                    raise PlanError(
                        "non-aggregate select item %r must appear in "
                        "GROUP BY" % (item.expr,)
                    )
                outputs.append((item.alias or key_name, None, key_name))

        # 3. Pre-projection when any key is computed.
        if any(bound_expr is not None for _, _, bound_expr in key_specs):
            pre_outputs: List[Tuple[str, bound.Expr]] = []
            key_names = set()
            for name, _, bound_expr in key_specs:
                key_names.add(name)
                pre_outputs.append(
                    (name, bound_expr if bound_expr is not None
                     else bound.Col(name))
                )
            needed = set()
            for spec in specs:
                if spec.input is not None:
                    needed |= spec.input.columns()
            for column in sorted(needed - key_names):
                pre_outputs.append((column, bound.Col(column)))
            plan = Project(plan, pre_outputs)

        grouped = GroupBy(plan, [name for name, _, _ in key_specs], specs)
        projected = []
        for out_name, wrapper, source in outputs:
            if wrapper is None:
                projected.append((out_name, bound.Col(source)))
            else:
                projected.append((
                    out_name,
                    self._bind_placeholder_expr(wrapper, grouped, source),
                ))
        return Project(grouped, projected)

    def _canonical(self, expr: ast.SqlExpr, scope: _Scope) -> str:
        """Structural key for matching select items against GROUP BY
        expressions, with column references fully resolved."""
        if isinstance(expr, ast.ColumnRef):
            name, _ = scope.resolve(expr)
            return "col:%s" % name
        if isinstance(expr, ast.Literal):
            return "lit:%r" % (expr.value,)
        if isinstance(expr, ast.BinaryOp):
            return "(%s %s %s)" % (
                self._canonical(expr.left, scope), expr.op,
                self._canonical(expr.right, scope),
            )
        if isinstance(expr, ast.FuncCall):
            return "%s(%s)" % (
                expr.name,
                ",".join(self._canonical(a, scope) for a in expr.args),
            )
        raise PlanError("unsupported GROUP BY expression %r" % (expr,))

    @staticmethod
    def _contains_aggregate(expr: ast.SqlExpr) -> bool:
        if isinstance(expr, ast.AggCall):
            return True
        if isinstance(expr, ast.BinaryOp):
            return (
                _Binder._contains_aggregate(expr.left)
                or _Binder._contains_aggregate(expr.right)
            )
        if isinstance(expr, ast.FuncCall):
            return any(_Binder._contains_aggregate(a) for a in expr.args)
        return False


def _default_name(expr: ast.SqlExpr) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    return "expr"


def sql_to_plan(catalog: Catalog, sql: str) -> LogicalNode:
    """Parse and bind ``sql`` into an executable logical plan."""
    return _Binder(catalog).bind(parse(sql))
