"""A SQL front end for the mini-dialect the paper's Table I uses.

Supported grammar (case-insensitive keywords)::

    SELECT [DISTINCT] item [, item]*
    FROM table [alias] [, table [alias]]*
    [WHERE conjunct [AND conjunct]*]
    [GROUP BY column [, column]*]

    item     := expr [AS name]
    expr     := arithmetic over columns, literals, year(expr),
                sum/min/max/avg/count(expr) (aggregate contexts)
    conjunct := expr cmp expr | expr LIKE 'pattern'
              | expr cmp (scalar subquery)

Correlated scalar subqueries — the shape TPC-H Q2/Q17 use — are
*decorrelated* at binding time into the paper's Figure 1 plan shape: a
grouped aggregate over the subquery's join tree, keyed by the
correlation columns, joined back to the outer query with the original
comparison as the join residual.
"""

from repro.sql.parser import parse
from repro.sql.binder import sql_to_plan

__all__ = ["parse", "sql_to_plan"]
