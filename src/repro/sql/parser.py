"""Recursive-descent parser for the Table I SQL dialect."""

from __future__ import annotations

from typing import List, Optional

from repro.sql.ast import (
    AggCall, BinaryOp, ColumnRef, Comparison, FuncCall, LikePredicate,
    Literal, SelectItem, SelectStatement, Subquery, TableRef,
)
from repro.sql.tokens import SqlSyntaxError, Token, tokenize

_AGGREGATES = frozenset({"sum", "min", "max", "avg", "count"})
_CMP_MAP = {"=": "=", "<>": "!=", "!=": "!=", "<": "<", "<=": "<=",
            ">": ">", ">=": ">="}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Optional[Token]:
        index = self._pos + offset
        if index < len(self._tokens):
            return self._tokens[index]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise SqlSyntaxError("unexpected end of input")
        self._pos += 1
        return token

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        token = self._peek()
        if token is None or token.kind != kind:
            return None
        if value is not None and token.value != value:
            return None
        self._pos += 1
        return token

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self._accept(kind, value)
        if token is None:
            got = self._peek()
            raise SqlSyntaxError(
                "expected %s%s, got %r"
                % (kind, " %r" % value if value else "", got)
            )
        return token

    def _at_keyword(self, *words: str) -> bool:
        token = self._peek()
        return (
            token is not None
            and token.kind == "KEYWORD"
            and token.value in words
        )

    # -- grammar --------------------------------------------------------------

    def parse_select(self) -> SelectStatement:
        self._expect("KEYWORD", "select")
        distinct = self._accept("KEYWORD", "distinct") is not None
        items = [self._select_item()]
        while self._accept("COMMA"):
            items.append(self._select_item())

        self._expect("KEYWORD", "from")
        tables = [self._table_ref()]
        while self._accept("COMMA"):
            tables.append(self._table_ref())

        where: List = []
        if self._accept("KEYWORD", "where"):
            where.append(self._predicate())
            while self._accept("KEYWORD", "and"):
                where.append(self._predicate())

        group_by: List = []
        if self._accept("KEYWORD", "group"):
            self._expect("KEYWORD", "by")
            group_by.append(self._expression())
            while self._accept("COMMA"):
                group_by.append(self._expression())

        return SelectStatement(items, tables, where, group_by, distinct)

    def _select_item(self) -> SelectItem:
        expr = self._expression()
        alias = None
        if self._accept("KEYWORD", "as"):
            alias = self._expect("NAME").value
        return SelectItem(expr, alias)

    def _table_ref(self) -> TableRef:
        table = self._expect("NAME").value
        alias_token = self._accept("NAME")
        return TableRef(table, alias_token.value if alias_token else None)

    def _column_ref(self) -> ColumnRef:
        first = self._expect("NAME").value
        if self._accept("DOT"):
            return ColumnRef(self._expect("NAME").value, qualifier=first)
        return ColumnRef(first)

    # -- predicates ----------------------------------------------------------

    def _predicate(self):
        left = self._expression()
        if self._accept("KEYWORD", "like"):
            pattern = self._expect("STRING").value
            return LikePredicate(left, pattern)
        op_token = self._expect("OP")
        op = _CMP_MAP.get(op_token.value)
        if op is None:
            raise SqlSyntaxError(
                "expected comparison operator, got %r" % op_token.value
            )
        right = self._expression()
        return Comparison(op, left, right)

    # -- expressions (precedence: additive < multiplicative < primary) --------

    def _expression(self):
        left = self._term()
        while True:
            token = self._peek()
            if token is not None and token.kind == "OP" and token.value in "+-":
                self._next()
                left = BinaryOp(token.value, left, self._term())
            else:
                return left

    def _term(self):
        left = self._primary()
        while True:
            token = self._peek()
            if token is not None and token.kind == "OP" and token.value in "*/":
                self._next()
                left = BinaryOp(token.value, left, self._primary())
            else:
                return left

    def _primary(self):
        token = self._peek()
        if token is None:
            raise SqlSyntaxError("unexpected end of expression")

        if token.kind == "NUMBER":
            self._next()
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)

        if token.kind == "STRING":
            self._next()
            return Literal(token.value)

        if token.kind == "LPAREN":
            self._next()
            if self._at_keyword("select"):
                inner = self.parse_select()
                self._expect("RPAREN")
                return Subquery(inner)
            expr = self._expression()
            self._expect("RPAREN")
            return expr

        if token.kind == "KEYWORD" and token.value in _AGGREGATES:
            self._next()
            self._expect("LPAREN")
            if token.value == "count" and self._accept("OP", "*"):
                self._expect("RPAREN")
                return AggCall("count", None)
            arg = self._expression()
            self._expect("RPAREN")
            return AggCall(token.value, arg)

        if token.kind == "NAME":
            # function call, qualified column, or bare column
            nxt = self._peek(1)
            if nxt is not None and nxt.kind == "LPAREN":
                self._next()
                self._next()
                args = [self._expression()]
                while self._accept("COMMA"):
                    args.append(self._expression())
                self._expect("RPAREN")
                return FuncCall(token.value, args)
            return self._column_ref()

        raise SqlSyntaxError("unexpected token %r" % (token,))


def parse(text: str) -> SelectStatement:
    """Parse one SELECT statement."""
    parser = _Parser(tokenize(text))
    statement = parser.parse_select()
    leftover = parser._peek()
    if leftover is not None:
        raise SqlSyntaxError("trailing input at %r" % (leftover,))
    return statement
