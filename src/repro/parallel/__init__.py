"""Real wall-clock parallel execution.

Everything else in the engine runs on one deterministic *virtual*
clock inside one process; this package maps the existing partition
fan-out (and whole service queries) onto actual OS-level parallelism
with a persistent ``multiprocessing`` worker pool:

* :mod:`repro.parallel.pool` — the spawn-safe pool of warm workers;
* :mod:`repro.parallel.tasks` — picklable task specs (the wire format);
* :mod:`repro.parallel.worker` — the worker-process main loop;
* :mod:`repro.parallel.replay` — the arrival model that replays
  worker-computed arrival times on the master, keeping rows
  bit-identical to serial execution;
* :mod:`repro.parallel.executor` — the coordinator side: fragment
  collection, dispatch, deterministic merge and metric fold-in.

See DESIGN.md section 11 for the wire format, worker lifecycle and
determinism guarantees.
"""

from repro.parallel.pool import WorkerPool
from repro.parallel.tasks import CatalogSpec, CrashTask, FragmentTask, QueryTask

__all__ = [
    "WorkerPool",
    "CatalogSpec",
    "CrashTask",
    "FragmentTask",
    "QueryTask",
]
