"""Arrival replay: the determinism bridge between workers and master.

A fragment worker computes, for its partition, exactly the arrival
times the serial engine would have computed — same fresh
:class:`~repro.exec.arrival.ArrivalModel`, same per-row float
accumulation — and ships back the surviving ``(when, row)`` pairs.
The coordinator then swaps each partition scan's arrival model for a
:class:`ReplayArrival` over those recorded times, and runs the normal
engine: every surviving row enters the heap at its *serial* arrival
time, so the cross-scan interleaving — and therefore the result row
order — is bit-identical to serial execution, for any worker count.

Mid-flight source filters (AIP summaries shipped to a partition source
while the query runs) still work: the replay honours
``activation_time`` against each row's recorded arrival time.  Because
worker-side evaluation removed the rows a prefetch-time filter would
have dropped, a mid-flight filter can only prune rows the downstream
semijoin would discard anyway, so the result multiset is unaffected.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.exec.arrival import ArrivalModel
from repro.exec.metrics import seconds_to_ticks

Row = Tuple


class ReplayArrival(ArrivalModel):
    """Replays pre-computed arrival times for a reduced row list.

    ``times[i]`` is the recorded arrival time of ``rows[i]`` as the
    serial model would have produced it.  ``template`` carries the
    original model's constructor parameters so byte accounting
    (``bandwidth``/``row_bytes``/``fanout``) matches; the coordinator
    additionally presets :attr:`rows_transferred` with the worker-side
    transfer count of the rows that did *not* survive, so the final
    ``bytes_transferred`` equals the serial run's.
    """

    def __init__(self, times: List[float], template: dict):
        super().__init__(**template)
        self._times = times

    # -- arrival computation -------------------------------------------

    def next_arrival(self, rows, start: int) -> Optional[Tuple[int, float, Row]]:
        i = start
        n = len(rows)
        times = self._times
        while i < n:
            row = rows[i]
            when = times[i]
            i += 1
            self._emitted += 1
            # The recorded time doubles as the filter-activation clock:
            # a summary shipped mid-run prunes rows recorded after its
            # activation, exactly as the live link would.
            self._link_time = when
            if not self._passes_active_filters(row):
                self.rows_filtered_at_source += 1
                continue
            self.rows_transferred += 1
            return (i, when, row)
        return None

    def next_batch(
        self,
        rows,
        start: int,
        now_ticks: int,
        boundary_when: Optional[float] = None,
        boundary_first: bool = False,
    ):
        # The parent's trivial-source fast path assumes every remaining
        # row shares one arrival time; replayed rows each carry their
        # own, so this override is the parent's general loop only.
        batch: List[Row] = []
        cursor = start
        while True:
            found = self.next_arrival(rows, cursor)
            if found is None:
                return cursor, batch, None
            cursor, when, row = found
            if seconds_to_ticks(when) <= now_ticks and (
                boundary_when is None
                or when < boundary_when
                or (when == boundary_when and not boundary_first)
            ):
                batch.append(row)
                continue
            return cursor, batch, (when, row)
