"""A persistent, spawn-safe multiprocessing worker pool.

The pool is the process-level mirror of the engine's partition fan-out:
``n_workers`` OS processes, each initialised **once** with the warm
catalog (rebuilt deterministically from a :class:`CatalogSpec`, so
table rows are bit-identical across processes), then fed picklable
task specs over a shared task queue.  Results stream back over one
result queue; :meth:`gather` demultiplexes by task id, so fragment
pages interleave freely with other tasks' completions.

Fault handling: a worker that dies mid-task (crash, OOM kill,
:class:`~repro.parallel.tasks.CrashTask`) is detected by liveness
polling; its in-flight tasks fail with a recorded error, a replacement
worker is spawned with the same warm init, and tasks still queued run
unaffected.  The pool itself stays usable after any number of crashes.

All timing here is *wall-clock* (`time.monotonic`): the pool exists to
buy real elapsed-time parallelism, unlike the engine's virtual clock.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_mod
import time
import traceback
from typing import Dict, List, Optional

from repro.common.errors import ExecutionError
from repro.parallel.tasks import CatalogSpec
from repro.parallel.worker import _worker_main

#: Seconds between liveness sweeps while waiting on the result queue.
POLL_SECONDS = 0.1

#: Seconds to wait for all workers' ready acks at startup.
READY_TIMEOUT = 120.0


class TaskResult:
    """Terminal state of one submitted task."""

    __slots__ = ("task_id", "ok", "payload", "pages", "error")

    def __init__(self, task_id: int):
        self.task_id = task_id
        self.ok = False
        #: The worker's ``done`` payload dict (None until finished).
        self.payload = None
        #: Fragment result pages, indexed by ``page_seq``.
        self.pages: Dict[int, list] = {}
        #: Human-readable failure description (worker traceback or a
        #: dead-worker notice); None on success.
        self.error: Optional[str] = None

    @property
    def finished(self) -> bool:
        return self.ok or self.error is not None

    def entries(self) -> list:
        """All fragment ``(when, row)`` pairs, in page order."""
        out: list = []
        for page_seq in sorted(self.pages):
            out.extend(self.pages[page_seq])
        return out


class _WorkerHandle:
    __slots__ = ("index", "process", "ready", "busy_since", "busy_seconds",
                 "current_task")

    def __init__(self, index: int, process):
        self.index = index
        self.process = process
        self.ready = False
        self.busy_since: Optional[float] = None
        self.busy_seconds = 0.0
        self.current_task: Optional[int] = None


class WorkerPool:
    """``n_workers`` warm processes executing picklable task specs.

    Parameters
    ----------
    n_workers:
        Pool size; also the fan-out the engine assumes when deciding
        how many fragments to dispatch concurrently.
    catalog_spec:
        Warm-init spec each worker resolves at startup (and the guard
        fragment prefetch checks against the live context's catalog).
        None starts cold workers that resolve specs per task.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; the pool
        maintains ``pool.workers``/``pool.queue_depth`` gauges,
        dispatch/complete/fail/respawn counters and per-worker busy
        fractions under it.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; task dispatch and
        completion are recorded as instants.
    """

    def __init__(
        self,
        n_workers: int,
        catalog_spec: Optional[CatalogSpec] = None,
        registry=None,
        tracer=None,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1; got %r" % n_workers)
        self.n_workers = n_workers
        self.catalog_spec = catalog_spec
        self.registry = registry
        self.tracer = tracer
        self._mp = multiprocessing.get_context("spawn")
        self._task_q = self._mp.Queue()
        self._result_q = self._mp.Queue()
        self._init_bytes = pickle.dumps(catalog_spec)
        self._workers: Dict[int, _WorkerHandle] = {}
        self._next_task_id = 0
        self._inflight: Dict[int, TaskResult] = {}
        self._started_at = time.monotonic()
        self._closed = False
        self._started = False

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "WorkerPool":
        """Spawn the workers and block until every warm init acks."""
        if self._started:
            return self
        self._started = True
        for index in range(self.n_workers):
            self._spawn(index)
        deadline = time.monotonic() + READY_TIMEOUT
        while any(not h.ready for h in self._workers.values()):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.close()
                raise ExecutionError(
                    "worker pool start timed out after %.0fs" % READY_TIMEOUT
                )
            try:
                message = self._result_q.get(timeout=min(remaining, POLL_SECONDS))
            except queue_mod.Empty:
                dead = [
                    h.index for h in self._workers.values()
                    if not h.ready and not h.process.is_alive()
                ]
                if dead:
                    self.close()
                    raise ExecutionError(
                        "worker(s) %s died during warm init (spawn "
                        "start-method requires an importable __main__)"
                        % dead
                    )
                continue
            self._handle_message(message)
        self._set_gauges()
        return self

    def _spawn(self, index: int) -> None:
        process = self._mp.Process(
            target=_worker_main,
            args=(index, self._init_bytes, self._task_q, self._result_q),
            daemon=True,
            name="repro-worker-%d" % index,
        )
        process.start()
        self._workers[index] = _WorkerHandle(index, process)

    def close(self) -> None:
        """Shut the pool down: sentinel every worker, join, reap."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers.values():
            if handle.process.is_alive():
                try:
                    self._task_q.put(None)
                except (OSError, ValueError):
                    break
        for handle in self._workers.values():
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2.0)
        self._task_q.close()
        self._result_q.close()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission / gathering ----------------------------------------

    def submit(self, task) -> int:
        """Enqueue ``task``; returns its id for :meth:`gather`."""
        if self._closed:
            raise ExecutionError("worker pool is closed")
        if not self._started:
            self.start()
        task_id = self._next_task_id
        self._next_task_id += 1
        self._inflight[task_id] = TaskResult(task_id)
        self._task_q.put((task_id, task))
        if self.registry is not None:
            self.registry.counter("pool.tasks_dispatched").inc()
        if self.tracer is not None:
            self.tracer.instant_now(
                "pool.dispatch", "pool",
                {"task": task_id, "kind": type(task).__name__},
            )
        self._set_gauges()
        return task_id

    def gather(
        self, task_ids: List[int], timeout: Optional[float] = None
    ) -> List[TaskResult]:
        """Block until every task in ``task_ids`` is terminal; returns
        their :class:`TaskResult`\\ s in argument order.

        Worker exceptions and deaths surface as ``result.error`` — the
        call itself only raises on pool-level failures (init failure,
        overall ``timeout`` exceeded).
        """
        wanted = [self._inflight[task_id] for task_id in task_ids]
        deadline = None if timeout is None else time.monotonic() + timeout
        while not all(result.finished for result in wanted):
            try:
                message = self._result_q.get(timeout=POLL_SECONDS)
            except queue_mod.Empty:
                self._sweep_dead_workers()
                if deadline is not None and time.monotonic() > deadline:
                    raise ExecutionError(
                        "worker pool gather timed out after %.1fs" % timeout
                    )
                continue
            self._handle_message(message)
        for result in wanted:
            self._inflight.pop(result.task_id, None)
        self._set_gauges()
        return wanted

    def run(self, task, timeout: Optional[float] = None) -> TaskResult:
        """Submit one task and gather it."""
        return self.gather([self.submit(task)], timeout=timeout)[0]

    # -- message handling ----------------------------------------------

    def _handle_message(self, message) -> None:
        kind = message[0]
        if kind == "ready":
            handle = self._workers.get(message[1])
            if handle is not None:
                handle.ready = True
            return
        if kind == "init_error":
            _, index, tb = message
            raise ExecutionError(
                "worker %d failed to initialise:\n%s" % (index, tb)
            )
        if kind == "start":
            _, task_id, index = message
            handle = self._workers.get(index)
            if handle is not None:
                handle.current_task = task_id
                handle.busy_since = time.monotonic()
            return
        if kind == "page":
            _, task_id, page_seq, entries = message
            result = self._inflight.get(task_id)
            if result is not None:
                result.pages[page_seq] = entries
            return
        if kind == "done":
            _, task_id, index, payload = message
            self._worker_idle(index)
            result = self._inflight.get(task_id)
            if result is not None:
                result.ok = True
                result.payload = payload
            if self.registry is not None:
                self.registry.counter("pool.tasks_completed").inc()
            if self.tracer is not None:
                self.tracer.instant_now(
                    "pool.complete", "pool",
                    {"task": task_id, "worker": index},
                )
            return
        if kind == "error":
            _, task_id, index, tb = message
            self._worker_idle(index)
            self._fail_task(task_id, "worker %d raised:\n%s" % (index, tb))
            return
        raise ExecutionError("unknown pool message %r" % (message,))

    def _worker_idle(self, index: int) -> None:
        handle = self._workers.get(index)
        if handle is None:
            return
        if handle.busy_since is not None:
            handle.busy_seconds += time.monotonic() - handle.busy_since
        handle.busy_since = None
        handle.current_task = None

    def _fail_task(self, task_id: int, error: str) -> None:
        result = self._inflight.get(task_id)
        if result is not None and not result.finished:
            result.error = error
        if self.registry is not None:
            self.registry.counter("pool.tasks_failed").inc()

    def _sweep_dead_workers(self) -> None:
        """Fail tasks owned by dead workers and spawn replacements."""
        for index, handle in list(self._workers.items()):
            if handle.process.is_alive():
                continue
            dead_task = handle.current_task
            exitcode = handle.process.exitcode
            self._worker_idle(index)
            if dead_task is not None:
                self._fail_task(
                    dead_task,
                    "worker %d died (exit code %r) while running task %d"
                    % (index, exitcode, dead_task),
                )
            self._spawn(index)
            if self.registry is not None:
                self.registry.counter("pool.workers_respawned").inc()
        self._set_gauges()

    # -- observability -------------------------------------------------

    def _set_gauges(self) -> None:
        if self.registry is None:
            return
        alive = sum(
            1 for h in self._workers.values() if h.process.is_alive()
        )
        self.registry.gauge("pool.workers").set(alive)
        self.registry.gauge("pool.queue_depth").set(
            sum(1 for r in self._inflight.values() if not r.finished)
        )

    def busy_fractions(self) -> Dict[int, float]:
        """Fraction of each worker's pool lifetime spent running tasks."""
        now = time.monotonic()
        lifetime = max(now - self._started_at, 1e-9)
        out: Dict[int, float] = {}
        for index, handle in self._workers.items():
            busy = handle.busy_seconds
            if handle.busy_since is not None:
                busy += now - handle.busy_since
            out[index] = min(busy / lifetime, 1.0)
        return out

    def record_busy_fractions(self) -> None:
        """Publish per-worker busy fractions as registry gauges."""
        if self.registry is None:
            return
        for index, fraction in sorted(self.busy_fractions().items()):
            self.registry.gauge("pool.worker.%d.busy_fraction" % index).set(
                fraction
            )
