"""Picklable task specifications shipped to pool workers.

These classes are the *wire format* between the coordinator and the
worker processes (DESIGN.md section 11).  Everything here must survive
``pickle.dumps`` under the spawn start-method: plain data, expression
ASTs and schemas only — never compiled closures, operator trees wired
to a live context, or open handles.  Compiled predicates are rebuilt
worker-side from their ASTs; AIP summaries travel as their existing
``to_payload`` wire form when they have one (Bloom filters) and as
plain pickled value objects otherwise (hash sets, bounds, histograms
hold only sets/lists).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.summaries.bloom import BigIntBloomFilter, BloomFilter

#: Arrival-model constructor kwargs copied into a fragment task.  The
#: mutable cursor fields (``_emitted``/``_link_time``/counters) are
#: deliberately absent: the worker builds a *fresh* model and replays
#: the whole partition from the start, reproducing the serial float
#: accumulation exactly.
ARRIVAL_PARAMS = (
    "initial_delay", "per_tuple", "batch_size", "batch_delay",
    "bandwidth", "row_bytes", "source_read", "fanout",
)

_BLOOM_CLASSES = {
    "BloomFilter": BloomFilter,
    "BigIntBloomFilter": BigIntBloomFilter,
}


def summary_to_spec(summary) -> Tuple:
    """Encode one AIP summary for shipping: Bloom filters use their
    existing wire payload, everything else pickles as a value object."""
    to_payload = getattr(summary, "to_payload", None)
    if to_payload is not None and type(summary).__name__ in _BLOOM_CLASSES:
        return ("payload", type(summary).__name__, to_payload())
    return ("object", summary)


def summary_from_spec(spec: Tuple):
    """Decode :func:`summary_to_spec`'s encoding."""
    if spec[0] == "payload":
        _, class_name, payload = spec
        return _BLOOM_CLASSES[class_name].from_payload(payload)
    return spec[1]


class CatalogSpec:
    """How a worker (re)builds the coordinator's catalog.

    ``("tpch", ...)`` names a deterministic generator — workers call
    :func:`repro.data.tpch.cached_tpch` with the same parameters and
    the :class:`DeterministicRng` guarantees bit-identical rows in
    every process.  ``("object", catalog)`` ships the catalog itself
    (used by tests with small hand-built tables); it is pickled once
    into the worker init payload, not per task.  ``("warm",)`` names
    *whatever catalog the receiving worker warm-loaded at init* — the
    symbolic reference tasks use so an object catalog is shipped once,
    never per task; it resolves only inside a worker process.
    """

    __slots__ = ("kind", "scale_factor", "skew", "seed", "catalog")

    def __init__(self, kind, scale_factor=None, skew=None, seed=None,
                 catalog=None):
        self.kind = kind
        self.scale_factor = scale_factor
        self.skew = skew
        self.seed = seed
        self.catalog = catalog

    @classmethod
    def tpch(cls, scale_factor: float, skew: float = 0.0, seed: int = 7):
        return cls(
            "tpch", scale_factor=scale_factor, skew=skew, seed=seed,
        )

    @classmethod
    def from_object(cls, catalog) -> "CatalogSpec":
        return cls("object", catalog=catalog)

    @classmethod
    def warm(cls) -> "CatalogSpec":
        """The catalog the receiving worker warm-loaded at init."""
        return cls("warm")

    def resolve(self):
        """The catalog this spec denotes, built (or memo-hit) locally."""
        if self.kind == "tpch":
            from repro.data.tpch import cached_tpch
            return cached_tpch(
                scale_factor=self.scale_factor, skew=self.skew,
                seed=self.seed,
            )
        if self.kind == "warm":
            raise ValueError(
                "a warm CatalogSpec resolves only inside a pool worker"
            )
        return self.catalog

    def matches(self, catalog) -> bool:
        """True when ``catalog`` is the very object this spec resolves
        to in *this* process — the guard fragment prefetch uses before
        assuming the workers' warm tables equal the context's."""
        if self.kind == "warm":
            return False
        return self.resolve() is catalog

    def key(self) -> Tuple:
        if self.kind == "tpch":
            return ("tpch", self.scale_factor, self.skew, self.seed)
        if self.kind == "warm":
            return ("warm",)
        return ("object", id(self.catalog))

    def __getstate__(self):
        return (self.kind, self.scale_factor, self.skew, self.seed,
                self.catalog)

    def __setstate__(self, state) -> None:
        (self.kind, self.scale_factor, self.skew, self.seed,
         self.catalog) = state

    def __repr__(self) -> str:
        if self.kind == "tpch":
            return "CatalogSpec(tpch, sf=%s, skew=%s, seed=%s)" % (
                self.scale_factor, self.skew, self.seed,
            )
        return "CatalogSpec(%s)" % self.kind


class FragmentTask:
    """One partition of a fanned-out scan, evaluated in a worker.

    The worker rebuilds the partition's rows from the warm catalog
    (same deterministic split), walks the arrival model over them
    (identical float accumulation to the serial engine, so arrival
    times match to the bit), probes the shipped scan-level AIP
    summaries, applies the post-merge filter chain, and streams back
    the surviving ``(arrival_time, row)`` pairs as ordered pages.
    """

    __slots__ = (
        "catalog_spec", "table_name", "schema", "spec_fields",
        "partition_index", "arrival_params", "scan_filters", "chain",
        "page_rows",
    )

    def __init__(
        self,
        catalog_spec: CatalogSpec,
        table_name: str,
        schema,
        spec_fields: Tuple,
        partition_index: int,
        arrival_params: Dict,
        scan_filters: List[Tuple],
        chain: List[Tuple],
        page_rows: int = 4096,
    ):
        self.catalog_spec = catalog_spec
        self.table_name = table_name
        #: Scan *output* schema (post-rename): filter predicates and
        #: shipped summaries address attributes by these names.
        self.schema = schema
        #: ``(table, key, sites, scheme, bounds)`` — enough to rebuild
        #: the :class:`PartitionSpec` value-identically.
        self.spec_fields = spec_fields
        self.partition_index = partition_index
        self.arrival_params = arrival_params
        #: ``[(attr_name, summary_spec), ...]`` — AIP filters injected
        #: on the scan at prefetch time, in registration order.
        self.scan_filters = scan_filters
        #: ``[(node_id, predicate_ast), ...]`` — the stacked filters
        #: directly above the partition merge, bottom-up.
        self.chain = chain
        self.page_rows = page_rows

    def __getstate__(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state) -> None:
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)

    def __repr__(self) -> str:
        return "FragmentTask(%s[%d], %d filters, chain=%d)" % (
            self.table_name, self.partition_index,
            len(self.scan_filters), len(self.chain),
        )


class QueryTask:
    """One whole admitted query, executed start-to-finish in a worker.

    Ships the *logical* plan (plain AST — site/partition stamps
    included) plus the strategy name; the worker translates and runs it
    against its warm catalog exactly as the serial service batch loop
    would, and returns the result rows, metrics and trace events.
    """

    __slots__ = (
        "catalog_spec", "plan", "strategy_name", "strategy_kwargs",
        "short_circuit", "batch_execution", "page_execution",
        "network", "trace", "label",
    )

    def __init__(
        self,
        catalog_spec: CatalogSpec,
        plan,
        strategy_name: str,
        strategy_kwargs: Optional[dict] = None,
        short_circuit: bool = True,
        batch_execution: bool = True,
        page_execution: bool = True,
        network=None,
        trace: bool = False,
        label: str = "",
    ):
        self.catalog_spec = catalog_spec
        self.plan = plan
        self.strategy_name = strategy_name
        self.strategy_kwargs = dict(strategy_kwargs or {})
        self.short_circuit = short_circuit
        self.batch_execution = batch_execution
        self.page_execution = page_execution
        self.network = network
        self.trace = trace
        self.label = label

    def __getstate__(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state) -> None:
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)

    def __repr__(self) -> str:
        return "QueryTask(%s, strategy=%s)" % (
            self.label or "<unlabelled>", self.strategy_name,
        )


class CrashTask:
    """Fault injection: the receiving worker acknowledges the task and
    then dies with ``os._exit(exit_code)``.  Exists so the crash-
    recovery path (dead-worker detection, task failure, respawn) is
    exercised by tests and drills rather than only by real faults."""

    __slots__ = ("exit_code",)

    def __init__(self, exit_code: int = 17):
        self.exit_code = exit_code

    def __getstate__(self):
        return (self.exit_code,)

    def __setstate__(self, state) -> None:
        (self.exit_code,) = state
