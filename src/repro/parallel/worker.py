"""The worker-process side of the pool.

``_worker_main`` is the spawn entry point: it rebuilds the warm state
(catalogs resolve through the same deterministic generators the
coordinator used, so table rows are bit-identical in every process),
acknowledges readiness, and then loops over the task queue.  Fragment
tasks replay one partition's arrival schedule and stream surviving
rows back as ordered pages; query tasks run a whole plan through the
normal serial engine and return the result wholesale.

Message protocol (worker → coordinator), all tuples on the result
queue:

==========================================  ===========================
``("ready", worker_index)``                 warm init finished
``("init_error", worker_index, tb)``        init failed; worker exits
``("start", task_id, worker_index)``        task picked up
``("page", task_id, page_seq, entries)``    one fragment result page
``("done", task_id, worker_index, payload)``  task finished
``("error", task_id, worker_index, tb)``    task raised; worker lives
==========================================  ===========================
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
from typing import Dict, List, Optional

from repro.parallel.tasks import (
    ARRIVAL_PARAMS, CatalogSpec, CrashTask, FragmentTask, QueryTask,
    summary_from_spec,
)


class WorkerState:
    """Per-process warm state: resolved catalogs, keyed by spec."""

    def __init__(self, index: int):
        self.index = index
        self._catalogs: Dict[tuple, object] = {}
        #: The catalog resolved from the pool's init spec; tasks refer
        #: to it symbolically via ``CatalogSpec.warm()`` so an object
        #: catalog ships once at init, never per task.
        self.warm_catalog = None

    def catalog(self, spec: CatalogSpec):
        if spec.kind == "warm":
            if self.warm_catalog is None:
                raise ValueError(
                    "task names the warm catalog but this worker was "
                    "started cold (pool has no catalog_spec)"
                )
            return self.warm_catalog
        key = spec.key()
        catalog = self._catalogs.get(key)
        if catalog is None:
            catalog = spec.resolve()
            self._catalogs[key] = catalog
        return catalog


def arrival_params_of(arrival) -> Dict:
    """The constructor kwargs that rebuild ``arrival`` fresh."""
    return {name: getattr(arrival, name) for name in ARRIVAL_PARAMS}


def run_fragment(state: WorkerState, task: FragmentTask, emit_page) -> Dict:
    """Evaluate one partition fragment; stream pages via ``emit_page``.

    The arrival walk is a fresh :class:`ArrivalModel` over the full
    partition row list — the identical float accumulation the serial
    engine performs — so every surviving row's arrival time matches the
    serial run to the bit.  Shipped scan-level AIP summaries and the
    post-merge filter chain are applied here; the coordinator re-applies
    them to the (all-surviving) replayed rows and folds the counter
    deltas so totals equal the serial run's exactly.
    """
    from repro.distributed.site import PartitionSpec
    from repro.exec.arrival import ArrivalModel
    from repro.expr.compiler import compile_predicate

    started = time.perf_counter()
    catalog = state.catalog(task.catalog_spec)
    table = catalog.table(task.table_name)
    spec = PartitionSpec(*task.spec_fields)
    key_index = table.schema.index_of(spec.key)
    rows = table.partition_rows(spec, key_index)[task.partition_index]

    arrival = ArrivalModel(**task.arrival_params)
    schema = task.schema
    scan_filters = [
        (schema.index_of(attr), summary_from_spec(summary_spec))
        for attr, summary_spec in task.scan_filters
    ]
    predicate_fns = [
        compile_predicate(predicate, schema) for _, predicate in task.chain
    ]

    raw = len(rows)
    scan_pruned = 0
    chain_out = [0] * len(predicate_fns)
    entries: List = []
    page_seq = 0
    cursor = 0
    while True:
        found = arrival.next_arrival(rows, cursor)
        if found is None:
            break
        cursor, when, row = found
        alive = True
        for filter_index, summary in scan_filters:
            if row[filter_index] not in summary:
                scan_pruned += 1
                alive = False
                break
        if not alive:
            continue
        for stage, fn in enumerate(predicate_fns):
            if not fn(row):
                alive = False
                break
            chain_out[stage] += 1
        if not alive:
            continue
        entries.append((when, row))
        if len(entries) >= task.page_rows:
            emit_page(page_seq, entries)
            page_seq += 1
            entries = []
    if entries:
        emit_page(page_seq, entries)
        page_seq += 1

    transferred = arrival.rows_transferred
    scan_out = transferred - scan_pruned
    survivors = chain_out[-1] if chain_out else scan_out
    return {
        "raw": raw,
        "transferred": transferred,
        "scan_pruned": scan_pruned,
        "scan_out": scan_out,
        "chain_out": chain_out,
        "survivors": survivors,
        "pages": page_seq,
        "wall_seconds": time.perf_counter() - started,
    }


def run_query(state: WorkerState, task: QueryTask) -> Dict:
    """Run one whole plan through the serial engine, exactly as the
    service's serial batch loop would, and return the result."""
    from repro.distributed.coordinator import remote_arrival_resolver
    from repro.exec.context import ExecutionContext
    from repro.exec.engine import execute_plan
    from repro.harness.strategies import make_strategy
    from repro.obs.trace import Tracer
    from repro.plan.logical import ensure_node_ids_above

    started = time.perf_counter()
    catalog = state.catalog(task.catalog_spec)
    # The shipped plan carries the *coordinator's* node ids; push this
    # process's counter past them so fresh ids (result sink, partition
    # scans) cannot collide with imported nodes.
    ensure_node_ids_above(max(node.node_id for node in task.plan.walk()))
    ctx = ExecutionContext(
        catalog,
        strategy=make_strategy(task.strategy_name, **task.strategy_kwargs),
        short_circuit=task.short_circuit,
        batch_execution=task.batch_execution,
        page_execution=task.page_execution,
    )
    tracer = Tracer() if task.trace else None
    ctx.tracer = tracer
    resolver = None
    if task.network is not None:
        default_link = task.network.link_to("__default__")
        ctx.cost_model.network_bandwidth = default_link.bandwidth
        ctx.cost_model.network_latency = default_link.latency
        ctx.network = task.network
        resolver = remote_arrival_resolver(task.network)
    result = execute_plan(task.plan, ctx, resolver)
    return {
        "result": result,
        "trace_events": list(tracer.events) if tracer is not None else [],
        "wall_seconds": time.perf_counter() - started,
    }


def _worker_main(index: int, init_bytes: bytes, task_q, result_q) -> None:
    """Entry point of one pool worker process (spawn-safe: top-level,
    state rebuilt locally, nothing inherited but the two queues)."""
    state = WorkerState(index)
    try:
        warm_spec = pickle.loads(init_bytes)
        if warm_spec is not None:
            state.warm_catalog = state.catalog(warm_spec)
    except BaseException:
        result_q.put(("init_error", index, traceback.format_exc()))
        return
    result_q.put(("ready", index))
    while True:
        item = task_q.get()
        if item is None:
            return
        task_id, task = item
        result_q.put(("start", task_id, index))
        if isinstance(task, CrashTask):
            # Fault injection: die *after* the start ack reaches the
            # pipe so the coordinator attributes the loss to this
            # worker.  ``put`` only hands the ack to the queue's feeder
            # thread; an immediate ``os._exit`` can kill the feeder
            # before it writes, leaving the task unattributable (and
            # the coordinator's gather waiting forever) — close and
            # join the feeder to force the flush first.
            result_q.close()
            result_q.join_thread()
            os._exit(task.exit_code)
        try:
            if isinstance(task, FragmentTask):
                def emit_page(page_seq: int, entries) -> None:
                    result_q.put(("page", task_id, page_seq, entries))
                payload = run_fragment(state, task, emit_page)
            elif isinstance(task, QueryTask):
                payload = run_query(state, task)
            else:
                raise TypeError("unknown task type %r" % type(task).__name__)
        except BaseException:
            result_q.put(("error", task_id, index, traceback.format_exc()))
            continue
        result_q.put(("done", task_id, index, payload))
