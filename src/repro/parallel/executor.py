"""Coordinator side of fragment-parallel execution.

``prefetch_partition_fragments`` is called by ``execute_plan`` after
strategy attach when the context carries a worker pool: it collects
every eligible partition scan of the translated plan, ships one
:class:`~repro.parallel.tasks.FragmentTask` per partition to the pool,
and rewires each scan to replay the worker-computed arrival schedule
(:class:`~repro.parallel.replay.ReplayArrival`) over only the rows
that survived the worker-side filters.  The master then drives the
normal serial engine: surviving rows enter the event heap at their
exact serial arrival times, so cross-scan interleaving — and the
result rows — are bit-identical to serial execution.

Determinism note: merging is by ``(partition, page_seq)``, never by
wall-clock receipt order, so any worker count and any scheduling of
the pool produce the same replayed row lists.

Counter accounting: the worker absorbed the scan's arrival walk, its
injected-filter probes, and the post-merge filter chain, so the
replayed run under-counts those operators.  The returned *fold*
callable (run **after** the engine finishes, so mid-run strategy
decisions never observe pre-seeded counters) adds the exact deltas;
totals for ``tuples_in``/``tuples_out``/``tuples_pruned`` then equal
the serial run's.  The virtual clock is **not** part of the parallel
contract — replay charges per-tuple costs only for surviving rows.
"""

from __future__ import annotations

import pickle
from typing import Callable, Dict, List, Optional

from repro.common.errors import ExecutionError
from repro.exec.arrival import ArrivalModel
from repro.exec.operators.filter import PFilter
from repro.exec.operators.merge import PMerge
from repro.parallel.replay import ReplayArrival
from repro.parallel.tasks import CatalogSpec, FragmentTask, summary_to_spec
from repro.parallel.worker import arrival_params_of


class _Fragment:
    """One dispatched partition scan awaiting its worker result."""

    __slots__ = ("scan", "task", "task_id", "chain_ops")

    def __init__(self, scan, task, chain_ops):
        self.scan = scan
        self.task = task
        self.task_id = None
        self.chain_ops = chain_ops


def _filter_chain(merge: PMerge) -> List[PFilter]:
    """The stacked filters directly above ``merge``, bottom-up.

    The chain stops at the first operator that is not a plain
    single-parent :class:`PFilter`, or that already carries injected
    AIP filters (those probe *before* the predicate; absorbing the
    predicate worker-side while a pre-installed summary waits on the
    master would reorder observable per-filter counters).
    """
    chain: List[PFilter] = []
    op = merge
    while len(op.parents) == 1:
        parent, _port = op.parents[0]
        if not isinstance(parent, PFilter):
            break
        if any(parent._filters[port] for port in range(len(parent._filters))):
            break
        chain.append(parent)
        op = parent
    return chain


def _eligible_scan(scan, ctx) -> bool:
    """A partition scan the pool may absorb without changing results."""
    if scan.partition_index is None or getattr(scan, "logical", None) is None:
        return False
    if scan._cursor != 0 or scan._pending is not None:
        return False
    arrival = scan.arrival
    # Replay reproduces exactly the base model's float accumulation; a
    # subclass (or a model already carrying source filters, whose
    # pruning would change later rows' times) must stay serial.
    if type(arrival) is not ArrivalModel:
        return False
    if arrival.filters or arrival._emitted:
        return False
    # Governed scans stream PagedRows facades, not plain lists.
    return type(scan.rows) is list


def prefetch_partition_fragments(plan, ctx) -> Optional[Callable[[], None]]:
    """Fan eligible partition scans out to the context's worker pool.

    Returns a fold callable to run after the engine finishes (adds the
    worker-absorbed counter deltas), or None when nothing was
    dispatched.  Any worker failure raises :class:`ExecutionError`.
    """
    pool = ctx.pool
    if pool is None or ctx.governor is not None:
        return None
    catalog_spec = pool.catalog_spec
    if catalog_spec is None or not catalog_spec.matches(ctx.catalog):
        return None

    fragments: List[_Fragment] = []
    chains: Dict[int, List[PFilter]] = {}
    for scan in plan.scans:
        if not _eligible_scan(scan, ctx):
            continue
        logical = scan.logical
        spec = logical.partition
        merge = plan.by_node_id.get(logical.node_id)
        if not isinstance(merge, PMerge):
            continue
        chain = chains.get(logical.node_id)
        if chain is None:
            chain = chains[logical.node_id] = _filter_chain(merge)
        try:
            scan_filters = [
                (f.attr_name, summary_to_spec(f.summary))
                for f in scan.filters_on(0)
            ]
            task = FragmentTask(
                # matches() above proved the workers' warm catalog is
                # this context's; name it symbolically so an object
                # catalog is never re-shipped per fragment.
                catalog_spec=CatalogSpec.warm(),
                table_name=logical.table_name,
                schema=scan.out_schema,
                spec_fields=(
                    spec.table, spec.key, tuple(spec.sites), spec.scheme,
                    list(spec.bounds) if spec.bounds is not None else None,
                ),
                partition_index=scan.partition_index,
                arrival_params=arrival_params_of(scan.arrival),
                scan_filters=scan_filters,
                chain=[(op.op_id, op.predicate) for op in chain],
            )
            # Validate picklability *before* handing the task to the
            # queue's feeder thread, where a failure would surface as a
            # hang instead of an error; unpicklable specs stay serial.
            pickle.dumps(task)
        except Exception:
            continue
        fragments.append(_Fragment(scan, task, chain))

    if not fragments:
        return None
    for fragment in fragments:
        fragment.task_id = pool.submit(fragment.task)
    results = pool.gather([fragment.task_id for fragment in fragments])

    deltas: Dict[int, List[int]] = {}

    def bump(op_id: int, d_in: int, d_out: int, d_pruned: int) -> None:
        delta = deltas.get(op_id)
        if delta is None:
            delta = deltas[op_id] = [0, 0, 0]
        delta[0] += d_in
        delta[1] += d_out
        delta[2] += d_pruned

    for fragment, result in zip(fragments, results):
        if result.error is not None:
            raise ExecutionError(
                "parallel fragment %r failed: %s"
                % (fragment.task, result.error)
            )
        payload = result.payload
        entries = result.entries()
        survivors = payload["survivors"]
        if len(entries) != survivors:
            raise ExecutionError(
                "parallel fragment %r returned %d rows, counters say %d"
                % (fragment.task, len(entries), survivors)
            )
        scan = fragment.scan
        template = arrival_params_of(scan.arrival)
        replay = ReplayArrival([when for when, _ in entries], template)
        # Pre-seed the transfer count of the non-surviving rows so the
        # end-of-run byte accounting equals the serial run's.
        replay.rows_transferred = payload["transferred"] - survivors
        scan.rows = [row for _, row in entries]
        scan.arrival = replay
        scan.exhausted = False

        transferred = payload["transferred"]
        scan_out = payload["scan_out"]
        bump(scan.op_id, transferred - survivors, scan_out - survivors,
             payload["scan_pruned"])
        merge = plan.by_node_id[scan.logical.node_id]
        bump(merge.op_id, scan_out - survivors, scan_out - survivors, 0)
        stage_in = scan_out
        for op, stage_out in zip(fragment.chain_ops, payload["chain_out"]):
            bump(op.op_id, stage_in - survivors, stage_out - survivors, 0)
            stage_in = stage_out

    if ctx.tracer is not None:
        ctx.tracer.instant_now(
            "parallel.prefetch", "pool",
            {
                "fragments": len(fragments),
                "workers": pool.n_workers,
                "rows_replayed": sum(len(f.scan.rows) for f in fragments),
            },
        )

    metrics = ctx.metrics

    def fold() -> None:
        for op_id, (d_in, d_out, d_pruned) in deltas.items():
            if not (d_in or d_out or d_pruned):
                continue  # don't materialise counters the run never touched
            counters = metrics.counters(op_id)
            counters.tuples_in += d_in
            counters.tuples_out += d_out
            counters.tuples_pruned += d_pruned

    return fold
