"""Per-fingerprint runtime feedback: the recording half of the loop.

Tukwila's cardinality counters exist so the optimizer can be re-grounded
by what actually happened.  :class:`FeedbackStore` closes the recording
side of that loop *across queries*: at query completion the service
walks the executed plan, pairs each logical node's **estimated** rows
with the operator's **actual** output counter, and files the pair under
the node's structural signature (:func:`repro.service.fingerprint
.plan_signature`) — the same node-id-free key the result and AIP caches
use, so a later query built independently from the same subexpression
can look its observed cardinality up.  The consuming half (feeding
records back into :class:`~repro.optimizer.estimator
.CardinalityEstimator` priors) is the ROADMAP's "engine-wide
runtime-feedback optimization" item; this store is its substrate.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import PlanError
from repro.service.fingerprint import plan_signature


class FeedbackRecord:
    """Accumulated observations for one structural fingerprint."""

    __slots__ = (
        "signature", "operator", "observations", "estimated_rows",
        "actual_rows", "input_rows", "pruned_rows",
    )

    def __init__(self, signature: str, operator: str):
        self.signature = signature
        self.operator = operator
        self.observations = 0
        self.estimated_rows = 0.0
        self.actual_rows = 0
        self.input_rows = 0
        self.pruned_rows = 0

    @property
    def mean_actual_rows(self) -> float:
        return self.actual_rows / self.observations if self.observations else 0.0

    @property
    def mean_estimated_rows(self) -> float:
        return (
            self.estimated_rows / self.observations if self.observations else 0.0
        )

    @property
    def selectivity(self) -> Optional[float]:
        """Observed output/input ratio; None for sources (no input)."""
        if self.input_rows == 0:
            return None
        return self.actual_rows / self.input_rows

    @property
    def estimation_error(self) -> Optional[float]:
        """Mean estimated/actual ratio (>1 = overestimate)."""
        if self.actual_rows == 0:
            return None
        return self.estimated_rows / self.actual_rows

    def as_dict(self) -> Dict:
        return {
            "signature": self.signature,
            "operator": self.operator,
            "observations": self.observations,
            "mean_estimated_rows": self.mean_estimated_rows,
            "mean_actual_rows": self.mean_actual_rows,
            "selectivity": self.selectivity,
            "estimation_error": self.estimation_error,
            "pruned_rows": self.pruned_rows,
        }


class FeedbackStore:
    """Observed cardinalities and selectivities keyed by fingerprint."""

    def __init__(self):
        self._records: Dict[str, FeedbackRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def get(self, signature: str) -> Optional[FeedbackRecord]:
        return self._records.get(signature)

    def record(
        self,
        signature: str,
        operator: str,
        estimated_rows: float,
        actual_rows: int,
        input_rows: int = 0,
        pruned_rows: int = 0,
    ) -> FeedbackRecord:
        """Fold one completed execution's numbers into the store."""
        rec = self._records.get(signature)
        if rec is None:
            rec = FeedbackRecord(signature, operator)
            self._records[signature] = rec
        rec.observations += 1
        rec.estimated_rows += estimated_rows
        rec.actual_rows += actual_rows
        rec.input_rows += input_rows
        rec.pruned_rows += pruned_rows
        return rec

    def record_plan(self, physical, metrics, estimator) -> int:
        """Record every node of one completed plan; returns node count.

        ``physical`` is an executed :class:`~repro.exec.translate
        .PhysicalPlan`, ``metrics`` the query's engine metrics, and
        ``estimator`` a :class:`~repro.optimizer.estimator
        .CardinalityEstimator` giving the *pre-execution* estimates the
        observed rows are compared against.  Nodes the translator
        rewrote away (no physical operator) and nodes that cannot be
        fingerprinted are skipped, not errors: partial feedback from an
        oddly shaped plan is still feedback.
        """
        recorded = 0
        seen = set()

        def visit(node) -> None:
            if node.node_id in seen:
                return
            seen.add(node.node_id)
            for child in node.children:
                visit(child)
            op = physical.by_node_id.get(node.node_id)
            if op is None:
                return
            counters = metrics.operators.get(op.op_id)
            if counters is None:
                return
            try:
                signature = plan_signature(node)
            except PlanError:
                return
            self.record(
                signature,
                type(node).__name__,
                estimated_rows=estimator.estimate(node).rows,
                actual_rows=counters.tuples_out,
                input_rows=counters.tuples_in,
                pruned_rows=counters.tuples_pruned,
            )
            nonlocal recorded
            recorded += 1

        visit(physical.logical_root)
        return recorded

    def export(self) -> List[Dict]:
        """JSON-ready records, deterministically ordered by signature."""
        return [
            self._records[sig].as_dict() for sig in sorted(self._records)
        ]
