"""Prometheus text-format export of the metrics registry.

:func:`to_prometheus` renders a :class:`~repro.obs.registry
.MetricsRegistry` in the Prometheus text exposition format (version
0.0.4): counters as ``_total`` samples, gauges as plain samples, and
histograms as cumulative ``_bucket{le=...}`` series with ``_sum`` and
``_count``.  Labeled children (``counter.labels(tenant="a")``) become
labeled sample lines; when a metric has children, only the children
are emitted — the parent is their roll-up, and emitting both would
double every ``sum()`` a scraper computes.

The exporter reads *live* metric objects (via ``registry.metric``),
not snapshots — a flat snapshot discards the bucket boundaries and
per-bucket counts the ``_bucket`` series need.

:func:`validate_prometheus` is the matching format checker, wired into
``python -m repro.obs.validate --prom`` so CI can assert the exporter
never drifts from the format scrapers parse.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import Counter, Gauge, Histogram

#: Default metric-name prefix (the "namespace" in Prometheus terms).
PREFIX = "repro_"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_PAIR = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"$')


def metric_name(name: str, prefix: str = PREFIX) -> str:
    """Registry name → valid Prometheus metric name (dots become
    underscores; anything else illegal is squashed the same way)."""
    return prefix + re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _series_of(metric) -> List[Tuple[Optional[str], object]]:
    """(label-string, live metric) pairs to emit for one registry
    entry: the children when any exist, else the unlabeled parent."""
    children = metric.series
    if children:
        return [(key, child) for key, child in sorted(children.items())]
    return [(None, metric)]


def _merge_labels(labels: Optional[str], extra: str = "") -> str:
    parts = [part for part in (labels, extra) if part]
    return "{%s}" % ",".join(parts) if parts else ""


def _render_histogram(out: List[str], name: str, labels: Optional[str],
                      hist: Histogram) -> None:
    cumulative = 0
    for index, bound in enumerate(hist.boundaries):
        cumulative += hist.counts[index]
        out.append("%s_bucket%s %d" % (
            name, _merge_labels(labels, 'le="%g"' % bound), cumulative,
        ))
    out.append("%s_bucket%s %d" % (
        name, _merge_labels(labels, 'le="+Inf"'), hist.count,
    ))
    out.append("%s_sum%s %s" % (name, _merge_labels(labels),
                                _fmt(hist.total)))
    out.append("%s_count%s %d" % (name, _merge_labels(labels), hist.count))


def to_prometheus(registry, prefix: str = PREFIX) -> str:
    """The registry as one Prometheus text-format page."""
    out: List[str] = []
    for raw_name in registry.names():
        metric = registry.metric(raw_name)
        if metric is None:
            continue
        name = metric_name(raw_name, prefix)
        if isinstance(metric, Counter):
            out.append("# TYPE %s_total counter" % name)
            for labels, series in _series_of(metric):
                out.append("%s_total%s %s" % (
                    name, _merge_labels(labels), _fmt(series.value),
                ))
        elif isinstance(metric, Gauge):
            out.append("# TYPE %s gauge" % name)
            for labels, series in _series_of(metric):
                out.append("%s%s %s" % (
                    name, _merge_labels(labels), _fmt(series.value),
                ))
        elif isinstance(metric, Histogram):
            out.append("# TYPE %s histogram" % name)
            for labels, series in _series_of(metric):
                _render_histogram(out, name, labels, series)
    return "\n".join(out) + "\n" if out else ""


# -- format checking -------------------------------------------------------

def _parse_sample(line: str):
    match = _SAMPLE.match(line)
    if match is None:
        return None
    labels: Dict[str, str] = {}
    raw = match.group("labels")
    if raw is not None:
        if not raw:
            return None
        for pair in raw.split(","):
            if not _LABEL_PAIR.match(pair):
                return None
            key, value = pair.split("=", 1)
            labels[key] = value[1:-1]
    try:
        value = float(match.group("value"))
    except ValueError:
        return None
    return match.group("name"), labels, value


def validate_prometheus(text: str) -> List[str]:
    """Schema-check one Prometheus text-format page.

    Returns human-readable problems (empty list = valid and
    non-empty).  Beyond line syntax it checks the invariants scrapers
    rely on: every sample is typed, counter samples end in ``_total``,
    and each histogram series has monotone cumulative buckets whose
    ``+Inf`` bucket equals its ``_count``.
    """
    errors: List[str] = []
    types: Dict[str, str] = {}
    #: (base-name, label-string-minus-le) -> list of (le, value)
    buckets: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, str], float] = {}
    samples = 0

    def fail(lineno: int, message: str) -> None:
        if len(errors) < 20:
            errors.append("line %d: %s" % (lineno, message))
        elif len(errors) == 20:
            errors.append("... further errors suppressed")

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    fail(lineno, "malformed TYPE comment: %r" % line)
                    continue
                if not _NAME_OK.match(parts[2]):
                    fail(lineno, "bad metric name in TYPE: %r" % parts[2])
                    continue
                types[parts[2]] = parts[3]
            elif len(parts) >= 2 and parts[1] == "HELP":
                pass  # free text; nothing to check
            else:
                pass  # arbitrary comment, allowed
            continue
        parsed = _parse_sample(line)
        if parsed is None:
            fail(lineno, "unparseable sample: %r" % line)
            continue
        name, labels, value = parsed
        samples += 1
        base = name
        for suffix in ("_bucket", "_sum", "_count", "_total"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                break
        declared = types.get(name) or types.get(base) or types.get(
            base + "_total"
        )
        if declared is None:
            fail(lineno, "sample %r has no preceding TYPE" % name)
            continue
        if declared == "counter":
            if not name.endswith("_total"):
                fail(lineno, "counter sample %r must end in _total" % name)
            if value < 0:
                fail(lineno, "counter %r is negative" % name)
        if declared == "histogram":
            key_labels = ",".join(sorted(
                '%s="%s"' % (k, v) for k, v in labels.items() if k != "le"
            ))
            if name.endswith("_bucket"):
                le = labels.get("le")
                if le is None:
                    fail(lineno, "bucket sample %r lacks le" % name)
                    continue
                bound = float("inf") if le == "+Inf" else float(le)
                buckets.setdefault((base, key_labels), []).append(
                    (bound, value)
                )
            elif name.endswith("_count"):
                counts[(base, key_labels)] = value

    for (base, key_labels), series in sorted(buckets.items()):
        where = base + ("{%s}" % key_labels if key_labels else "")
        bounds = [bound for bound, _ in series]
        if bounds != sorted(bounds):
            errors.append("%s: buckets out of order" % where)
        values = [value for _, value in series]
        if any(b < a for a, b in zip(values, values[1:])):
            errors.append("%s: cumulative bucket counts decrease" % where)
        if not series or series[-1][0] != float("inf"):
            errors.append("%s: missing le=\"+Inf\" bucket" % where)
        elif (base, key_labels) in counts and (
            series[-1][1] != counts[(base, key_labels)]
        ):
            errors.append(
                "%s: +Inf bucket (%g) != _count (%g)"
                % (where, series[-1][1], counts[(base, key_labels)])
            )
    if samples == 0 and not errors:
        errors.append("no samples: the exporter emitted nothing")
    return errors
