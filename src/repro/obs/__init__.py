"""Observability: structured tracing, a metrics registry, runtime
feedback recording, and EXPLAIN ANALYZE.

The paper's adaptivity rests on runtime introspection — "All query
operators are supplemented with cardinality counters" (Section V-A) —
and this package is that idea promoted to a first-class subsystem:

* :mod:`repro.obs.trace` — a structured trace collector.  Spans and
  instant events are stamped with the engine's virtual clock **ticks**
  and exported as Chrome-trace/Perfetto JSON.  Tracing is off by
  default and the disabled path is a single ``is None`` check at every
  hook site, so untraced execution is bit-identical to a build without
  the subsystem (the batch-equivalence suite pins this).
* :mod:`repro.obs.registry` — counters, gauges and fixed-bucket
  histograms aggregating per-query and service-lifetime views
  (latency percentiles, AIP selectivity, cache hit rates, spill
  traffic).
* :mod:`repro.obs.feedback` — a :class:`FeedbackStore` recording
  observed cardinalities and selectivities per structural plan
  fingerprint at query completion: the recording half of the
  runtime-feedback optimization loop.
* :mod:`repro.obs.analyze` — ``EXPLAIN ANALYZE``: execute a plan and
  render its tree annotated with estimated vs actual cardinality,
  attributed CPU ticks, peak state and prune counts per operator.
* :mod:`repro.obs.profiles` — a bounded ring of retained per-query
  profiles (plan signature, est-vs-actual per operator, latency
  breakdown), the substrate of the ``profile`` admin frame and the
  slow-query log.
* :mod:`repro.obs.eventlog` — append-only JSONL lifecycle/slow-query
  log with size rotation.
* :mod:`repro.obs.export` — Prometheus text-format export of the
  registry, with per-tenant labeled series.
"""

from repro.obs.eventlog import EventLog
from repro.obs.export import to_prometheus, validate_prometheus
from repro.obs.feedback import FeedbackStore
from repro.obs.profiles import ProfileRing, QueryProfile
from repro.obs.registry import MetricsRegistry, percentile
from repro.obs.trace import Tracer, validate_chrome_trace

__all__ = [
    "EventLog",
    "FeedbackStore",
    "MetricsRegistry",
    "ProfileRing",
    "QueryProfile",
    "Tracer",
    "percentile",
    "to_prometheus",
    "validate_chrome_trace",
    "validate_prometheus",
]
