"""EXPLAIN ANALYZE: run a plan, then render estimates against reality.

:mod:`repro.optimizer.explain` renders what the optimizer *believes*;
this module executes the plan and puts the belief next to what the
cardinality counters actually saw — estimated vs actual rows, CPU ticks
attributed to each operator, its peak buffered state, and how many of
its inputs AIP filters pruned.  The per-operator tick and state columns
come from the attribution mode of :class:`~repro.exec.metrics.Metrics`
(``attribute_ops``), which is enabled only here so the normal hot path
pays nothing for it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.data.catalog import Catalog
from repro.exec.context import ExecutionContext
from repro.exec.costs import CostModel
from repro.exec.engine import Engine, QueryResult
from repro.exec.translate import ArrivalResolver, translate
from repro.harness.strategies import make_strategy
from repro.optimizer.estimator import CardinalityEstimator
from repro.plan.logical import LogicalNode


class AnalyzeRow:
    """One rendered line: a logical operator with its observed numbers."""

    __slots__ = (
        "depth", "label", "node_id", "shared", "est_rows", "actual_rows",
        "ticks", "peak_state_bytes", "pruned",
    )

    def __init__(self, depth, label, node_id, shared=False, est_rows=0.0,
                 actual_rows=0, ticks=0, peak_state_bytes=0, pruned=0):
        self.depth = depth
        self.label = label
        self.node_id = node_id
        self.shared = shared
        self.est_rows = est_rows
        self.actual_rows = actual_rows
        self.ticks = ticks
        self.peak_state_bytes = peak_state_bytes
        self.pruned = pruned


class AnalyzeReport:
    """The executed plan's per-operator table plus its QueryResult."""

    def __init__(self, rows: List[AnalyzeRow], result: QueryResult,
                 strategy_name: str):
        self.rows = rows
        self.result = result
        self.strategy_name = strategy_name

    def render(self) -> str:
        lines = [
            "%-44s %11s %11s %14s %11s %9s" % (
                "operator", "est. rows", "actual", "ticks",
                "peak state", "pruned",
            ),
            "-" * 105,
        ]
        for row in self.rows:
            label = "  " * row.depth + row.label
            if row.shared:
                marker = " (shared)"
                lines.append("%-44s %11s %11s %14s %11s %9s" % (
                    label[: 44 - len(marker)] + marker, "", "", "", "", "",
                ))
                continue
            lines.append("%-44s %11.1f %11d %14d %11d %9d" % (
                label[:44], row.est_rows, row.actual_rows, row.ticks,
                row.peak_state_bytes, row.pruned,
            ))
        metrics = self.result.metrics
        lines.append("-" * 105)
        lines.append(
            "strategy %s: %d rows in %.6f virtual s "
            "(cpu %.6f, idle %.6f); peak state %.3f MB; %d pruned"
            % (
                self.strategy_name, len(self.result), metrics.clock,
                metrics.cpu_time, metrics.idle_time,
                metrics.peak_state_bytes / 1e6, metrics.total_pruned,
            )
        )
        return "\n".join(lines)

    def by_label(self) -> Dict[str, AnalyzeRow]:
        """Last-wins label lookup, for tests poking at one operator."""
        return {row.label: row for row in self.rows}


def explain_analyze(
    plan: LogicalNode,
    catalog: Catalog,
    strategy: str = "baseline",
    cost_model: Optional[CostModel] = None,
    tracer=None,
    short_circuit: bool = True,
    batch_execution: bool = True,
    arrival_resolver: Optional[ArrivalResolver] = None,
) -> AnalyzeReport:
    """Execute ``plan`` with per-operator attribution and report.

    Estimates are taken from a fresh :class:`CardinalityEstimator`
    before execution (no runtime observations), so the est-vs-actual
    columns show exactly the error the static optimizer would have
    committed to.
    """
    estimator = CardinalityEstimator(catalog)
    estimates = {}

    def pre_visit(node) -> None:
        if node.node_id in estimates:
            return
        estimates[node.node_id] = estimator.estimate(node).rows
        for child in node.children:
            pre_visit(child)

    pre_visit(plan)

    ctx = ExecutionContext(
        catalog,
        cost_model=cost_model,
        strategy=make_strategy(strategy),
        short_circuit=short_circuit,
        batch_execution=batch_execution,
    )
    ctx.tracer = tracer
    ctx.metrics.attribute_ops = True
    physical = translate(plan, ctx, arrival_resolver)
    ctx.strategy.attach(ctx, physical)
    result = Engine(ctx).run(physical)

    metrics = ctx.metrics
    rows: List[AnalyzeRow] = []
    seen = set()

    def visit(node, depth) -> None:
        label = node._label()
        if node.node_id in seen:
            rows.append(AnalyzeRow(depth, label, node.node_id, shared=True))
            return
        seen.add(node.node_id)
        op = physical.by_node_id.get(node.node_id)
        actual = ticks = peak = pruned = 0
        if op is not None:
            counters = metrics.operators.get(op.op_id)
            if counters is not None:
                actual = counters.tuples_out
                pruned = counters.tuples_pruned
            ticks = metrics.op_ticks.get(op.op_id, 0)
            peak = metrics.op_state_peaks.get(op.op_id, 0)
        rows.append(AnalyzeRow(
            depth, label, node.node_id,
            est_rows=estimates.get(node.node_id, 0.0),
            actual_rows=actual, ticks=ticks,
            peak_state_bytes=peak, pruned=pruned,
        ))
        for child in node.children:
            visit(child, depth + 1)

    visit(plan, 0)
    return AnalyzeReport(rows, result, strategy)
