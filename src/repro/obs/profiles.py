"""Retained per-query profiles: what each completed query cost.

The trace (:mod:`repro.obs.trace`) answers "what happened on the
timeline"; the registry (:mod:`repro.obs.registry`) answers "what does
the service look like in aggregate".  Neither can answer the operator's
question five minutes after the fact: *what did query 4217 cost, and
where was the optimizer wrong?*  A :class:`QueryProfile` is that
answer — plan signature, per-operator estimated-vs-actual rows (from
the same ``charge_op`` cardinality counters the feedback store reads),
the latency breakdown on the service clock, and the spill/AIP/quota
counters — and a :class:`ProfileRing` retains the last N of them so
the ``profile`` admin frame and the slow-query log can look finished
queries up by sequence number.

Profiles are JSON-ready end to end (:meth:`QueryProfile.as_dict` is
the ``profile`` frame's payload verbatim), and :meth:`QueryProfile
.render` produces the EXPLAIN-ANALYZE-style table the slow-query log
embeds.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional

#: Default ring capacity; overridden by ``ServiceConfig
#: .profile_retention``.
DEFAULT_RETENTION = 128


def operator_table(physical, metrics, estimator) -> List[Dict]:
    """Per-operator est-vs-actual rows for one executed plan.

    Walks the logical tree exactly like :meth:`~repro.obs.feedback
    .FeedbackStore.record_plan` (same node skipping rules: rewritten
    nodes and shared subtrees contribute once), pairing each node's
    pre-execution estimate with the executed operator's cardinality
    counters.  Returns JSON-ready dicts, depth-annotated so the tree
    can be re-rendered client-side.
    """
    rows: List[Dict] = []
    seen = set()

    def visit(node, depth) -> None:
        if node.node_id in seen:
            return
        seen.add(node.node_id)
        op = physical.by_node_id.get(node.node_id)
        if op is not None:
            counters = metrics.operators.get(op.op_id)
            rows.append({
                "depth": depth,
                "operator": type(node).__name__,
                "label": node._label(),
                "est_rows": estimator.estimate(node).rows,
                "actual_rows": (
                    counters.tuples_out if counters is not None else 0
                ),
                "tuples_in": (
                    counters.tuples_in if counters is not None else 0
                ),
                "pruned": (
                    counters.tuples_pruned if counters is not None else 0
                ),
            })
        for child in node.children:
            visit(child, depth + 1)

    visit(physical.logical_root, 0)
    return rows


class QueryProfile:
    """Everything retained about one finished query."""

    __slots__ = (
        "seq", "label", "status", "tenant", "strategy", "signature",
        "batch", "arrival", "start", "finish", "rows", "reason",
        "state_estimate", "aip_filters_injected", "aip_tuples_pruned",
        "metrics", "operators",
    )

    def __init__(self, seq, label, status, tenant, strategy, signature,
                 batch, arrival, start, finish, rows, reason=None,
                 state_estimate=0.0, aip_filters_injected=0,
                 aip_tuples_pruned=0, metrics=None, operators=None):
        self.seq = seq
        self.label = label
        self.status = status
        self.tenant = tenant
        self.strategy = strategy
        self.signature = signature
        self.batch = batch
        #: Virtual-clock milestones; ``start - arrival`` is queue wait,
        #: ``finish - start`` is execute time.
        self.arrival = arrival
        self.start = start
        self.finish = finish
        self.rows = rows
        self.reason = reason
        self.state_estimate = state_estimate
        self.aip_filters_injected = aip_filters_injected
        self.aip_tuples_pruned = aip_tuples_pruned
        #: Flat engine-counter summary (same shape as the public
        #: result's ``metrics``); empty for sheds.
        self.metrics: Dict = metrics or {}
        #: Per-operator est-vs-actual table from :func:`operator_table`
        #: (empty when attribution was unavailable, e.g. pool workers).
        self.operators: List[Dict] = operators or []

    @property
    def latency(self) -> float:
        return self.finish - self.arrival

    @property
    def queue_wait(self) -> float:
        return self.start - self.arrival

    @property
    def execute_seconds(self) -> float:
        return self.finish - self.start

    @classmethod
    def from_outcome(cls, outcome, signature: str,
                     operators: Optional[List[Dict]] = None,
                     ) -> "QueryProfile":
        """Build a profile from a service :class:`QueryOutcome`."""
        result = outcome.result
        return cls(
            outcome.seq, outcome.label, outcome.status, outcome.tenant,
            outcome.strategy, signature, outcome.batch,
            outcome.arrival, outcome.start, outcome.finish,
            len(result) if result is not None else 0,
            reason=outcome.reason,
            state_estimate=outcome.state_estimate,
            aip_filters_injected=outcome.aip_filters_injected,
            aip_tuples_pruned=outcome.aip_tuples_pruned,
            metrics=(
                result.metrics.summary() if result is not None else {}
            ),
            operators=operators,
        )

    def as_dict(self) -> Dict:
        """The ``profile`` admin frame's JSON payload."""
        return {
            "seq": self.seq,
            "label": self.label,
            "status": self.status,
            "tenant": self.tenant,
            "strategy": self.strategy,
            "signature": self.signature,
            "batch": self.batch,
            "arrival": self.arrival,
            "start": self.start,
            "finish": self.finish,
            "latency_s": self.latency,
            "queue_wait_s": self.queue_wait,
            "execute_s": self.execute_seconds,
            "rows": self.rows,
            "reason": self.reason,
            "state_estimate_bytes": self.state_estimate,
            "aip_filters_injected": self.aip_filters_injected,
            "aip_tuples_pruned": self.aip_tuples_pruned,
            "metrics": dict(self.metrics),
            "operators": [dict(row) for row in self.operators],
        }

    def render(self) -> str:
        """EXPLAIN-ANALYZE-style text, embedded by the slow-query log."""
        lines = [
            "query #%d %s [%s] strategy=%s tenant=%s" % (
                self.seq, self.label, self.status, self.strategy,
                self.tenant,
            ),
            "latency %.6f vs (queue %.6f + execute %.6f); %d rows%s" % (
                self.latency, self.queue_wait, self.execute_seconds,
                self.rows,
                " (%s)" % self.reason if self.reason else "",
            ),
        ]
        if self.operators:
            lines.append("%-44s %11s %11s %9s" % (
                "operator", "est. rows", "actual", "pruned",
            ))
            lines.append("-" * 78)
            for row in self.operators:
                label = "  " * row["depth"] + row["label"]
                lines.append("%-44s %11.1f %11d %9d" % (
                    label[:44], row["est_rows"], row["actual_rows"],
                    row["pruned"],
                ))
        if self.metrics:
            lines.append(
                "engine: cpu %.6f s; %.3f MB peak state; "
                "%d pruned; %d spill bytes" % (
                    self.metrics.get("cpu_seconds", 0.0),
                    self.metrics.get("peak_state_mb", 0.0),
                    self.metrics.get("tuples_pruned", 0),
                    self.metrics.get("spill_bytes", 0),
                )
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "QueryProfile(#%d %s %s: %.4fs)" % (
            self.seq, self.label, self.status, self.latency,
        )


class ProfileRing:
    """Bounded, thread-safe retention of the last N query profiles.

    Keyed by service sequence number.  The dispatcher records while
    admin handler threads look up and list, so every access takes the
    ring's lock; recording past capacity evicts the oldest profile and
    bumps :attr:`evicted`.
    """

    def __init__(self, capacity: int = DEFAULT_RETENTION):
        if capacity < 1:
            raise ValueError("profile retention must be >= 1")
        self.capacity = capacity
        self.evicted = 0
        self._profiles: "OrderedDict[int, QueryProfile]" = OrderedDict()
        self._lock = threading.Lock()

    def record(self, profile: QueryProfile) -> None:
        with self._lock:
            self._profiles[profile.seq] = profile
            self._profiles.move_to_end(profile.seq)
            while len(self._profiles) > self.capacity:
                self._profiles.popitem(last=False)
                self.evicted += 1

    def get(self, seq: int) -> Optional[QueryProfile]:
        with self._lock:
            return self._profiles.get(seq)

    def last(self, n: Optional[int] = None) -> List[QueryProfile]:
        """The most recent profiles, oldest first."""
        with self._lock:
            profiles = list(self._profiles.values())
        return profiles if n is None else profiles[-n:]

    def __len__(self) -> int:
        with self._lock:
            return len(self._profiles)
