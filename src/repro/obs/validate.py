"""Chrome-trace schema checker, runnable as a module.

Usage::

    python -m repro.obs.validate trace1.json [trace2.json ...]

Exits non-zero when any file is unreadable, malformed, or records an
empty trace — the CI observability smoke job runs a traced workload and
then this checker, so instrumentation that silently stops emitting
events fails the build rather than rotting.
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional

from repro.obs.trace import validate_chrome_trace


def main(argv: Optional[List[str]] = None) -> int:
    paths = sys.argv[1:] if argv is None else argv
    if not paths:
        print("usage: python -m repro.obs.validate TRACE.json [...]",
              file=sys.stderr)
        return 2
    failures = 0
    for path in paths:
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, ValueError) as exc:
            print("%s: unreadable (%s)" % (path, exc))
            failures += 1
            continue
        errors = validate_chrome_trace(payload)
        if errors:
            for message in errors:
                print("%s: %s" % (path, message))
            failures += 1
        else:
            print("%s: ok (%d events)" % (path, len(payload["traceEvents"])))
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
