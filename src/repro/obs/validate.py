"""Observability format checkers, runnable as a module.

Usage::

    python -m repro.obs.validate trace1.json [trace2.json ...]
    python -m repro.obs.validate --prom metrics.prom [...]

The default mode schema-checks Chrome-trace JSON; ``--prom`` checks
Prometheus text-format pages instead.  Exits non-zero when any file is
unreadable, malformed, or records nothing — the CI observability smoke
job runs a traced workload (and a live server's ``stats --prom``) and
then this checker, so instrumentation that silently stops emitting
fails the build rather than rotting.
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional

from repro.obs.trace import validate_chrome_trace


def _check_trace(path: str) -> List[str]:
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as exc:
        return ["unreadable (%s)" % exc]
    errors = validate_chrome_trace(payload)
    if not errors:
        print("%s: ok (%d events)" % (path, len(payload["traceEvents"])))
    return errors


def _check_prom(path: str) -> List[str]:
    from repro.obs.export import validate_prometheus

    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as exc:
        return ["unreadable (%s)" % exc]
    errors = validate_prometheus(text)
    if not errors:
        samples = sum(
            1 for line in text.splitlines()
            if line.strip() and not line.startswith("#")
        )
        print("%s: ok (%d samples)" % (path, samples))
    return errors


def main(argv: Optional[List[str]] = None) -> int:
    paths = list(sys.argv[1:] if argv is None else argv)
    prom = False
    if paths and paths[0] == "--prom":
        prom = True
        paths = paths[1:]
    if not paths:
        print(
            "usage: python -m repro.obs.validate [--prom] FILE [...]",
            file=sys.stderr,
        )
        return 2
    check = _check_prom if prom else _check_trace
    failures = 0
    for path in paths:
        errors = check(path)
        if errors:
            for message in errors:
                print("%s: %s" % (path, message))
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
