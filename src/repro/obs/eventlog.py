"""Structured lifecycle event log + slow-query log, as append-only JSONL.

Traces are for engineers replaying a run; the event log is for
operators tailing a file.  Every service lifecycle decision — admit,
shed (admission / SLO / quota), spill pressure, worker crash — is one
JSON object on one line, so ``tail -f | jq`` works and log shippers
ingest it without a parser.  Queries whose latency crosses the
configured threshold additionally get a ``slow_query`` entry embedding
the retained profile and its EXPLAIN-ANALYZE-style rendering
(:meth:`repro.obs.profiles.QueryProfile.render`), which is the
"why was this slow" artifact five minutes after the fact.

Rotation is by size: when an append would push the file past
``max_bytes`` the current file is renamed to ``<path>.1`` (replacing
the previous generation) and a fresh file is started — bounded disk,
and the most recent events are always in ``<path>``.

Every entry carries ``ts`` (wall-clock epoch seconds, for correlating
with the outside world) and, when the emitter supplies it, ``clock``
(service virtual seconds, for correlating with traces and profiles).
Wall time never feeds back into execution, so results stay
bit-identical with the log enabled.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Optional

#: Default rotation threshold (bytes).
DEFAULT_MAX_BYTES = 4 * 1024 * 1024


class EventLog:
    """Append-only JSONL sink with size-based rotation."""

    def __init__(self, path: str, max_bytes: int = DEFAULT_MAX_BYTES):
        if max_bytes < 1024:
            raise ValueError("event log max_bytes must be >= 1024")
        self.path = path
        self.max_bytes = max_bytes
        self.rotations = 0
        self.events_written = 0
        self._lock = threading.Lock()
        self._fh = open(path, "a", encoding="utf-8")
        self._size = self._fh.tell()

    def emit(self, event: str, clock: Optional[float] = None,
             **fields) -> None:
        """Append one event; ``fields`` must be JSON-serialisable."""
        entry: Dict = {"event": event, "ts": time.time()}
        if clock is not None:
            entry["clock"] = clock
        entry.update(fields)
        line = json.dumps(entry, sort_keys=True) + "\n"
        encoded = len(line.encode("utf-8"))
        with self._lock:
            if self._fh is None:
                return  # closed: late emitters drop silently
            if self._size and self._size + encoded > self.max_bytes:
                self._rotate()
            self._fh.write(line)
            self._fh.flush()
            self._size += encoded
            self.events_written += 1

    def _rotate(self) -> None:
        # Caller holds the lock.  One rotated generation is kept; the
        # point is bounding disk, not archiving history.
        self._fh.close()
        os.replace(self.path, self.path + ".1")
        self._fh = open(self.path, "a", encoding="utf-8")
        self._size = 0
        self.rotations += 1

    def tail(self, n: int = 10) -> List[Dict]:
        """The last ``n`` events in the current file (oldest first).

        Reads the live file only (not the rotated generation); meant
        for tests and the CLI, not high-volume consumption.
        """
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
        entries: List[Dict] = []
        try:
            with open(self.path, encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if line:
                        entries.append(json.loads(line))
        except OSError:
            return []
        return entries[-n:]

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def open_event_log(spec, max_bytes: int = DEFAULT_MAX_BYTES,
                   ) -> Optional[EventLog]:
    """Coerce a config value into an :class:`EventLog` (or pass one
    through).  ``None`` stays None — the disabled path everywhere is a
    single ``is None`` check, like the tracer's."""
    if spec is None or isinstance(spec, EventLog):
        return spec
    return EventLog(str(spec), max_bytes=max_bytes)
