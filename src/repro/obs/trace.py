"""Structured trace collection on the virtual clock.

A :class:`Tracer` records *spans* (work with a duration) and *instant
events* (point occurrences), both stamped in integer virtual-clock
**ticks** (1 tick = 1 ps; see :mod:`repro.exec.metrics`).  Hook sites
throughout the engine, AIP layer, storage governor and service layer
call the tracer only after an ``is None`` guard, so the disabled path
costs one attribute load per hook and execution stays bit-identical to
an untraced build.

The event taxonomy (DESIGN.md section 9):

========================  ====  =======================================
name                      ph    recorded at
========================  ====  =======================================
``query``                 X     one engine run, start→finish
``concurrent-batch``      X     one shared-clock multi-query loop
``service.batch``         X     one dispatched service batch
``drive:<scan>``          X     one scan drive (an arrival run on the
                                batch path; one tuple on the row path)
``emit:<op>``             i     an operator forwarding an output batch
``page:<op>``             i     a column-page kernel invocation (rows
                                in, rows selected)
``flush:<op>``            i     an operator completing its output
``aip.publish``           i     a completed AIP set published
``aip.inject``            i     a semijoin filter registered on a port
``aip.probe:<op>``        i     a batch probed against injected filters
``admission.<decision>``  i     admit / queue / shed
``sched.pick``            i     a scheduler ordering one ready set
``cache.result.<h/m>``    i     result-cache hit / first miss
``cache.aip.<hit/miss>``  i     AIP-cache probe per stateful input
``governor.lease``        i     a component opening a byte account
``governor.evict``        i     buffer-pool eviction pass (freed bytes)
``governor.spill``        i     spill I/O charged (bytes, page moves)
``governor.over_budget``  i     a grow still over budget post-reclaim
``partition.fanout``      i     a scan fanned out across partitions
========================  ====  =======================================

Export is Chrome-trace JSON (the array-of-events form inside an object,
which both ``chrome://tracing`` and Perfetto load).  The ``ts``/``dur``
fields carry raw virtual ticks; the trace metadata names the unit so a
reader knows 1 displayed microsecond = 1 virtual tick = 1 ps.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, List, Optional

#: Phases used in exported events.
PH_COMPLETE = "X"
PH_INSTANT = "i"

#: Default retention: a runaway per-tuple trace must not consume
#: unbounded memory.  The buffer is a *ring* — a long-lived server
#: keeps the most recent ``max_events`` events and counts what it
#: evicted, instead of freezing the trace at hour one and silently
#: discarding everything after.
MAX_EVENTS = 1_000_000


class Tracer:
    """Collects trace events stamped in virtual-clock ticks.

    Retention is a bounded ring: once ``max_events`` events are
    buffered, each new event evicts the oldest and bumps
    :attr:`dropped` (surfaced as the ``trace.dropped_events`` counter
    in server stats), so a multi-hour ``repro serve`` degrades to a
    sliding window rather than a truncated head.
    """

    __slots__ = ("events", "max_events", "dropped", "last_ts", "offset")

    def __init__(self, max_events: int = MAX_EVENTS):
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        #: Raw events as ``(ph, name, cat, ts, dur, args)`` tuples,
        #: oldest first; a full ring evicts from the front.
        self.events: Deque[tuple] = deque(maxlen=max_events)
        self.max_events = max_events
        #: Events evicted from the ring after it filled.
        self.dropped = 0
        #: Largest timestamp seen; hook sites with no clock at hand
        #: (lease creation during operator construction) reuse it via
        #: :meth:`instant_now`.
        self.last_ts = 0
        #: Added to every ``ts`` passed to :meth:`instant`/:meth:`
        #: complete`.  Each batch's engine clock restarts at zero; the
        #: service sets this to its own clock before dispatching a
        #: batch so all batches land on one timeline.
        self.offset = 0

    def _record(self, ph, name, cat, ts, dur, args) -> None:
        if ts > self.last_ts:
            self.last_ts = ts
        if len(self.events) >= self.max_events:
            self.dropped += 1  # the append below evicts the oldest
        self.events.append((ph, name, cat, ts, dur, args))

    def instant(
        self, name: str, cat: str, ts: int, args: Optional[Dict] = None
    ) -> None:
        """Record a point event at ``ts`` virtual ticks (plus offset)."""
        self._record(PH_INSTANT, name, cat, ts + self.offset, 0, args)

    def instant_now(
        self, name: str, cat: str, args: Optional[Dict] = None
    ) -> None:
        """Instant at the trace's high-water mark, for hook sites with
        no query clock at hand (e.g. lease creation during operator
        construction; offset is already folded into ``last_ts``)."""
        self._record(PH_INSTANT, name, cat, self.last_ts, 0, args)

    def complete(
        self,
        name: str,
        cat: str,
        ts: int,
        dur: int,
        args: Optional[Dict] = None,
    ) -> None:
        """Record a span covering ``[ts, ts + dur]`` virtual ticks."""
        self._record(PH_COMPLETE, name, cat, ts + self.offset, dur, args)

    def replay(self, events, offset: int = 0) -> None:
        """Fold another tracer's raw event tuples onto this timeline.

        Used by the parallel service to merge trace events a pool
        worker collected on its own zero-based query clock: ``offset``
        shifts them to where the batch sits on the service timeline.
        ``self.offset`` is deliberately not applied on top — the caller
        computed the placement already.
        """
        for ph, name, cat, ts, dur, args in events:
            self._record(ph, name, cat, ts + offset, dur, args)

    def __len__(self) -> int:
        return len(self.events)

    # -- export ----------------------------------------------------------

    def to_chrome(self) -> Dict:
        """The Chrome-trace/Perfetto JSON object for this trace."""
        trace_events = []
        for ph, name, cat, ts, dur, args in self.events:
            event = {
                "name": name,
                "cat": cat,
                "ph": ph,
                "ts": ts,
                "pid": 0,
                "tid": 0,
            }
            if ph == PH_COMPLETE:
                event["dur"] = dur
            else:
                event["s"] = "g"  # global instant scope
            if args:
                event["args"] = dict(args)
            trace_events.append(event)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "virtual ticks (1 trace us = 1 tick = 1 ps)",
                "dropped_events": self.dropped,
            },
        }

    def write_chrome(self, path: str) -> None:
        """Serialise :meth:`to_chrome` to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh, indent=1, sort_keys=True)
            fh.write("\n")


#: Phases a valid exported event may carry ("M" = metadata, which other
#: tools emit; we accept it so traces can be post-processed and merged).
_VALID_PHASES = {"X", "i", "I", "C", "M", "B", "E"}


def validate_chrome_trace(payload) -> List[str]:
    """Schema-check one Chrome-trace JSON object.

    Returns a list of human-readable problems; an empty list means the
    trace is well-formed **and non-empty** — an empty ``traceEvents``
    array is reported as an error, because the CI smoke job exists to
    catch instrumentation silently recording nothing.
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["top level must be a JSON object with 'traceEvents'"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' must be an array"]
    if not events:
        return ["'traceEvents' is empty: the trace recorded nothing"]
    for index, event in enumerate(events):
        where = "traceEvents[%d]" % index
        if not isinstance(event, dict):
            errors.append("%s: not an object" % where)
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            errors.append("%s: missing or empty 'name'" % where)
        ph = event.get("ph")
        if ph not in _VALID_PHASES:
            errors.append("%s: bad phase %r" % (where, ph))
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            errors.append("%s: 'ts' must be a non-negative number" % where)
        if ph == "X":
            dur = event.get("dur")
            if (
                not isinstance(dur, (int, float))
                or isinstance(dur, bool)
                or dur < 0
            ):
                errors.append(
                    "%s: complete event needs non-negative 'dur'" % where
                )
        for field in ("pid", "tid"):
            value = event.get(field)
            if not isinstance(value, int) or isinstance(value, bool):
                errors.append("%s: '%s' must be an integer" % (where, field))
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            errors.append("%s: 'args' must be an object" % where)
        if len(errors) >= 20:
            errors.append("... further errors suppressed")
            break
    return errors
