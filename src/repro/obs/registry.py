"""The metrics registry: counters, gauges, fixed-bucket histograms.

The engine's :class:`~repro.exec.metrics.Metrics` store is *per
query execution* and deliberately minimal (it sits on the hot path and
its clock must be bit-identical across execution paths).  The registry
is the aggregation layer above it: the service folds each finished
batch's engine counters, latencies and cache/governor observations into
one registry, giving service-lifetime views — p50/p95/p99 latency, AIP
selectivity, spill traffic — without touching per-tuple code.

Histograms use fixed bucket boundaries so aggregation is one integer
increment per observation and quantiles are reproducible: the same
observations always yield the same (interpolated) percentile, which is
what lets tail-latency numbers be baselined in the CI regression gate.

**Labeled children** (``counter.labels(tenant="a").inc()``) carve one
metric into per-label series without ad-hoc name mangling.  A child is
a full metric of the same kind; counter and histogram children *roll
up* into their parent automatically (one ``labels(...).inc()`` feeds
both the per-tenant series and the total), so the parent stays the
aggregate view the service reports have always read.  Gauge children
are independent point-in-time series (summing gauges is rarely
meaningful).  Snapshots nest the children under ``"series"`` keyed by
the canonical ``k="v"`` label string, and the Prometheus exporter
(:mod:`repro.obs.export`) turns them into labeled sample lines.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence

#: Default latency buckets (virtual seconds): geometric-ish coverage
#: from sub-millisecond interactive queries to minutes-long scans.
LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
)

#: Default ratio buckets (selectivities, fill fractions, hit rates).
RATIO_BUCKETS = tuple(i / 20.0 for i in range(1, 20))


def percentile(values: Sequence[float], q: float) -> float:
    """Exact linear-interpolated percentile of ``values``.

    ``q`` is in [0, 100].  Used where the raw observations are at hand
    (per-run latency lists); histograms answer the same question
    approximately from bucket counts.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be in [0, 100]; got %r" % q)
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    frac = rank - low
    if frac == 0.0 or low + 1 >= len(ordered):
        return ordered[low]
    return ordered[low] * (1.0 - frac) + ordered[low + 1] * frac


def label_key(labels: Dict[str, object]) -> str:
    """Canonical ``k="v"`` string for one label set (sorted by key)."""
    if not labels:
        raise ValueError("labels() needs at least one label")
    return ",".join(
        '%s="%s"' % (key, labels[key]) for key in sorted(labels)
    )


class _Labeled:
    """Shared child-series machinery for all three metric kinds."""

    __slots__ = ()

    def labels(self, **labels):
        """The child series for one label set, created on first use.

        Children are the same metric kind as their parent; see the
        module docstring for the roll-up rules.
        """
        key = label_key(labels)
        children = self._children
        if children is None:
            children = self._children = {}
        child = children.get(key)
        if child is None:
            # setdefault: two threads racing on first use keep one.
            child = children.setdefault(key, self._make_child())
        return child

    @property
    def series(self) -> Dict[str, "_Labeled"]:
        """Live child metrics keyed by canonical label string."""
        return dict(self._children or {})

    def _series_snapshot(self, snap: Dict) -> Dict:
        if self._children:
            snap["series"] = {
                key: child.snapshot()
                for key, child in sorted(self._children.items())
            }
        return snap


class Counter(_Labeled):
    """A monotonically increasing count.

    A labeled child's ``inc`` also increments its parent, so the
    unlabeled value remains the total across every label set.
    """

    __slots__ = ("value", "_children", "_parent")

    def __init__(self, parent: Optional["Counter"] = None):
        self.value = 0
        self._children = None
        self._parent = parent

    def _make_child(self) -> "Counter":
        return Counter(parent=self)

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; got %r" % amount)
        self.value += amount
        if self._parent is not None:
            self._parent.inc(amount)

    def snapshot(self) -> Dict:
        return self._series_snapshot({"type": "counter", "value": self.value})


class Gauge(_Labeled):
    """A point-in-time value, with its observed extremes kept.

    Gauge children are independent series — a parent gauge is *not*
    the sum of its children (point-in-time values don't roll up the
    way counts do).
    """

    __slots__ = ("value", "max_value", "min_value", "updates", "_children")

    def __init__(self):
        self.value = 0.0
        self.max_value = None
        self.min_value = None
        self.updates = 0
        self._children = None

    def _make_child(self) -> "Gauge":
        return Gauge()

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        if self.min_value is None or value < self.min_value:
            self.min_value = value

    def inc(self, delta: float = 1.0) -> None:
        """Adjust relative to the current value (connection counts and
        other net-layer levels move by deltas, not absolutes)."""
        self.set(self.value + delta)

    def dec(self, delta: float = 1.0) -> None:
        self.set(self.value - delta)

    def snapshot(self) -> Dict:
        return self._series_snapshot({
            "type": "gauge",
            "value": self.value,
            "max": self.max_value,
            "min": self.min_value,
        })


class Histogram(_Labeled):
    """Fixed-boundary bucket histogram with interpolated quantiles.

    ``boundaries`` are the bucket upper bounds; one overflow bucket
    catches everything above the last boundary.  Quantiles interpolate
    linearly inside the winning bucket (the overflow bucket reports the
    maximum observed value, so p99 of a trace with outliers is still
    finite and meaningful).

    A labeled child shares its parent's boundaries, and its ``observe``
    also feeds the parent — the unlabeled distribution remains the
    aggregate across every label set.
    """

    __slots__ = (
        "boundaries", "counts", "count", "total", "vmin", "vmax",
        "_children", "_parent",
    )

    def __init__(self, boundaries: Sequence[float] = LATENCY_BUCKETS,
                 parent: Optional["Histogram"] = None):
        bounds = list(boundaries)
        if not bounds or sorted(bounds) != bounds:
            raise ValueError("histogram boundaries must be sorted, non-empty")
        self.boundaries = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None
        self._children = None
        self._parent = parent

    def _make_child(self) -> "Histogram":
        return Histogram(self.boundaries, parent=self)

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value
        if self._parent is not None:
            self._parent.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate percentile (``q`` in [0, 100]) from buckets."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("quantile must be in [0, 100]; got %r" % q)
        if self.count == 0:
            return 0.0
        target = (q / 100.0) * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative < target:
                continue
            if index >= len(self.boundaries):
                return self.vmax if self.vmax is not None else 0.0
            upper = self.boundaries[index]
            lower = self.boundaries[index - 1] if index else (
                self.vmin if self.vmin is not None else 0.0
            )
            lower = min(lower, upper)
            frac = (target - previous) / bucket_count
            return lower + (upper - lower) * frac
        return self.vmax if self.vmax is not None else 0.0

    def snapshot(self) -> Dict:
        return self._series_snapshot({
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.vmin,
            "max": self.vmax,
            "p50": self.quantile(50),
            "p95": self.quantile(95),
            "p99": self.quantile(99),
            "buckets": {
                "le:%g" % bound: self.counts[index]
                for index, bound in enumerate(self.boundaries)
                if self.counts[index]
            },
            "overflow": self.counts[-1],
        })


class MetricsRegistry:
    """Name-keyed store of counters, gauges and histograms.

    Metric *updates* are engine-side and effectively single-threaded;
    the lock here only guards metric *creation* and whole-registry
    iteration (``snapshot``/``names``), because a live server's admin
    handler threads snapshot the registry while the dispatcher may be
    registering new names mid-batch.
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind, factory):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = factory()
                    self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise TypeError(
                "metric %r is a %s, not a %s"
                % (name, type(metric).__name__, kind.__name__)
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, Gauge)

    def histogram(
        self, name: str, boundaries: Sequence[float] = LATENCY_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(boundaries))

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def metric(self, name: str):
        """The live metric object under ``name``, or None.

        The Prometheus exporter uses this to reach bucket boundaries
        and label children that a flat snapshot would flatten away.
        """
        return self._metrics.get(name)

    def snapshot(self) -> Dict[str, Dict]:
        """Flat, JSON-ready view of every registered metric."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: metric.snapshot() for name, metric in items}
