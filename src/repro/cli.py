"""Command-line interface.

Usage (``python -m repro ...``)::

    python -m repro list
    python -m repro tables --scale 0.01
    python -m repro run Q1A --strategy feedforward --scale 0.01
    python -m repro run Q2A --strategy all --delayed
    python -m repro run Q2A --strategy costbased --trace-out trace.json
    python -m repro explain Q3A --scale 0.01
    python -m repro explain Q3A --analyze --strategy costbased
    python -m repro workload "Q2A*3,Q1A" --scheduler sjf
    python -m repro workload "Q2A*3" --trace-out t.json --metrics-out m.json
    python -m repro serve --port 7734 --quota tenant-a=2:64m
    python -m repro serve --slow-query-ms 50 --event-log events.jsonl
    python -m repro serve --stdin --scale 0.01
    python -m repro stats --port 7734
    python -m repro stats --port 7734 --prom
    python -m repro top --port 7734 --interval 2
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.data.tpch import cached_tpch
from repro.harness.runner import run_workload_query
from repro.harness.strategies import STRATEGIES
from repro.optimizer.explain import explain
from repro.workloads.registry import QUERIES, get_query


def _parse_nbytes(text: str) -> int:
    """Parse a byte count with an optional k/m/g suffix ('64m')."""
    raw = text.strip().lower()
    multiplier = 1
    if raw and raw[-1] in "kmg":
        multiplier = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}[raw[-1]]
        raw = raw[:-1]
    try:
        value = int(float(raw) * multiplier)
    except (ValueError, OverflowError):  # OverflowError: 'inf', '1e400'
        raise argparse.ArgumentTypeError(
            "expected bytes like 500000, 512k or 8m; got %r" % text
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError("memory budget must be >= 0")
    return value


def _parse_quota(text: str):
    """Parse ``--quota TENANT=CONCURRENT[:STATE_BYTES]``.

    Either axis may be left empty: ``t1=2`` caps concurrency only,
    ``t1=:64m`` caps estimated state only, ``t1=2:64m`` caps both.
    """
    from repro.service import TenantQuota

    tenant, sep, caps = text.partition("=")
    tenant = tenant.strip()
    if not sep or not tenant:
        raise argparse.ArgumentTypeError(
            "expected TENANT=CONCURRENT[:STATE_BYTES]; got %r" % text
        )
    concurrent_raw, _, state_raw = caps.partition(":")
    try:
        max_concurrent = (
            int(concurrent_raw) if concurrent_raw.strip() else None
        )
        max_state = (
            float(_parse_nbytes(state_raw)) if state_raw.strip() else None
        )
        quota = TenantQuota(
            max_concurrent=max_concurrent, max_state_bytes=max_state,
        )
    except (ValueError, argparse.ArgumentTypeError) as exc:
        raise argparse.ArgumentTypeError(
            "bad quota %r: %s" % (text, exc)
        ) from None
    if max_concurrent is None and max_state is None:
        raise argparse.ArgumentTypeError(
            "quota %r caps neither axis; give CONCURRENT and/or "
            ":STATE_BYTES" % text
        )
    return tenant, quota


def _cmd_list(args) -> int:
    print("%-6s %-28s %-8s %-6s %s" % (
        "id", "title", "family", "skew", "notes",
    ))
    for qid in sorted(QUERIES):
        query = QUERIES[qid]
        notes = []
        if query.is_distributed:
            notes.append("remote:%s" % ",".join(query.remote_tables))
        if query.has_magic:
            notes.append("magic")
        print("%-6s %-28s %-8s %-6g %s" % (
            qid, query.title, query.family, query.skew, " ".join(notes),
        ))
    return 0


def _cmd_tables(args) -> int:
    catalog = cached_tpch(scale_factor=args.scale)
    print("TPC-H at scale factor %g:" % args.scale)
    total = 0
    for name in catalog.table_names():
        table = catalog.table(name)
        total += len(table)
        print("  %-10s %9d rows  %10d bytes (est.)"
              % (name, len(table), table.byte_size()))
    print("  %-10s %9d rows" % ("total", total))
    return 0


def _cmd_run(args) -> int:
    strategies = (
        list(STRATEGIES) if args.strategy == "all" else [args.strategy]
    )
    tracer = None
    if args.trace_out:
        if args.strategy == "all":
            print("error: --trace-out records one execution; pick a "
                  "single --strategy", file=sys.stderr)
            return 2
        from repro.obs.trace import Tracer
        tracer = Tracer()
    query = get_query(args.qid)
    if not query.has_magic and "magic" in strategies:
        strategies = [s for s in strategies if s != "magic"]
    if args.delayed and args.partitions:
        print("error: --delayed and --partitions are different arrival "
              "regimes; pick one", file=sys.stderr)
        return 2
    notes = ""
    if args.delayed:
        notes += ", delayed %s" % query.delayed_table
    if args.partitions:
        notes += ", %d partitions" % args.partitions
    if args.memory_budget is not None:
        notes += ", %d-byte memory budget" % args.memory_budget
    print("%s — %s (scale %g%s)" % (
        query.qid, query.title, args.scale, notes,
    ))
    print("%-14s %8s %12s %12s %9s %7s" % (
        "strategy", "rows", "time (vs)", "state (MB)", "pruned", "sets",
    ))
    storage_lines = []
    for strategy in strategies:
        record = run_workload_query(
            args.qid, strategy,
            scale_factor=args.scale, delayed=args.delayed,
            partitions=args.partitions,
            memory_budget=args.memory_budget,
            tracer=tracer,
            parallel=args.parallel,
        )
        s = record.summary
        print("%-14s %8d %12.4f %12.4f %9d %7d" % (
            strategy, s["result_rows"], s["virtual_seconds"],
            s["peak_state_mb"], s["tuples_pruned"], s["aip_sets_created"],
        ))
        if record.storage is not None:
            storage_lines.append(
                "-- %s: peak resident %d bytes (budget %d), "
                "%d spilled, %d evictions" % (
                    strategy,
                    record.storage["peak_resident_bytes"],
                    record.storage["budget"],
                    record.storage["spilled_bytes"],
                    record.storage["evictions"],
                )
            )
    for line in storage_lines:
        print(line)
    if tracer is not None:
        tracer.write_chrome(args.trace_out)
        print("-- trace: %d events written to %s"
              % (len(tracer), args.trace_out))
    return 0


def _cmd_sql(args) -> int:
    from repro.exec.context import ExecutionContext
    from repro.exec.engine import execute_plan
    from repro.sql import sql_to_plan

    catalog = cached_tpch(scale_factor=args.scale)
    plan = sql_to_plan(catalog, args.query)
    if args.explain:
        print(explain(plan, catalog))
        return 0
    from repro.harness.strategies import make_strategy
    ctx = ExecutionContext(catalog, strategy=make_strategy(args.strategy))
    result = execute_plan(plan, ctx)
    for row in result.sorted_rows()[: args.limit]:
        print("  ".join(str(v) for v in row))
    m = result.metrics
    print("-- %d rows; %.4f virtual s; %.3f MB peak state; %d pruned"
          % (len(result), m.clock, m.peak_state_bytes / 1e6, m.total_pruned))
    return 0


def _make_service(args, skew: float = 0.0, tracer=None):
    from repro.service import QueryService, ServiceConfig

    catalog = cached_tpch(scale_factor=args.scale, skew=skew)
    budget = None
    if args.budget_mb is not None:
        budget = args.budget_mb * 1e6
    catalog_spec = None
    if args.parallel:
        # Workers rebuild the same deterministic catalog from its
        # parameters instead of unpickling the table data.
        from repro.parallel import CatalogSpec
        catalog_spec = CatalogSpec.tpch(scale_factor=args.scale, skew=skew)
    config = ServiceConfig(
        strategy=args.strategy,
        scheduler=args.scheduler,
        memory_budget_bytes=budget,
        max_concurrent=args.max_concurrent,
        aip_cache=not args.no_aip_cache,
        result_cache=not args.no_result_cache,
        memory_budget=args.memory_budget,
        tracer=tracer,
        parallel=args.parallel,
        catalog_spec=catalog_spec,
        slo_seconds=args.slo_seconds,
        quotas=dict(getattr(args, "quota", None) or []),
        slow_query_ms=getattr(args, "slow_query_ms", None),
        event_log=getattr(args, "event_log", None),
    )
    return QueryService(catalog, config)


def _cmd_workload(args) -> int:
    from repro.service.workload import (
        WorkloadItem, parse_inline, parse_workload,
    )

    if os.path.isfile(args.stream):
        with open(args.stream) as fh:
            base_items = parse_workload(fh.read())
    else:
        base_items = parse_inline(args.stream)
        if " " not in args.stream and base_items[0].kind == "sql":
            # A space-free argument that is not a workload-id list
            # cannot be SQL either — it is a mistyped script path or
            # query id; don't mask that as a SQL syntax error.
            print("error: no such workload script or query id: %s"
                  % args.stream, file=sys.stderr)
            return 2

    # Each repetition's arrivals shift by the stream's span; a stream
    # with no explicit arrivals repeats as a concurrent load multiple.
    span = max((item.arrival for item in base_items), default=0.0)
    items = [
        WorkloadItem(item.kind, item.text, item.arrival + k * span,
                     item.strategy, item.label, tenant=item.tenant)
        for k in range(args.repeat) for item in base_items
    ]
    if not items:
        print("error: empty workload stream", file=sys.stderr)
        return 2

    # The skewed variants (Q1B/Q2B/Q3B) run on Zipf data; honour that,
    # but one catalog serves the whole stream, so skews must agree.
    skews = {
        get_query(item.text).skew for item in items if item.kind == "qid"
    }
    if len(skews) > 1:
        print("error: stream mixes data skews %s; one catalog serves the "
              "whole stream" % sorted(skews), file=sys.stderr)
        return 2
    skew = skews.pop() if skews else 0.0
    if skew and any(item.kind == "sql" for item in items):
        print("warning: SQL items run on the Zipf-%g catalog selected by "
              "the stream's workload ids" % skew, file=sys.stderr)

    from repro.common.errors import ReproError
    tracer = None
    if args.trace_out:
        from repro.obs.trace import Tracer
        tracer = Tracer()
    # The service is a context manager owning its spill dir and worker
    # pool; every exit path — errors included — releases them.
    try:
        with _make_service(args, skew=skew, tracer=tracer) as service:
            report = service.run_workload(items)
            print("workload of %d queries (strategy %s, scheduler %s)" % (
                len(items), args.strategy, service.scheduler.describe(),
            ))
            print(report.render())
            if tracer is not None:
                tracer.write_chrome(args.trace_out)
                print("-- trace: %d events written to %s"
                      % (len(tracer), args.trace_out))
            if args.metrics_out:
                import json

                payload = {
                    "registry": service.registry.snapshot(),
                    "feedback": service.feedback.export(),
                    "summary": report.summary(),
                }
                with open(args.metrics_out, "w") as fh:
                    json.dump(payload, fh, indent=1, sort_keys=True)
                    fh.write("\n")
                print("-- metrics: %d feedback records written to %s"
                      % (len(payload["feedback"]), args.metrics_out))
    except (ReproError, ValueError) as exc:
        # ValueError: bad strategy/scheduler names from stream
        # overrides, or out-of-range service options.
        print("error: %s" % exc, file=sys.stderr)
        return 2
    return 0


def _cmd_serve(args) -> int:
    """The front door: a socket server by default, or the legacy
    line-per-query stdin REPL behind ``--stdin``."""
    try:
        service = _make_service(args)
    except ValueError as exc:  # out-of-range service options
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.stdin:
        print("repro query service — SQL or workload id per line; "
              "'quit' to exit")
        try:
            return _serve_loop(service, args)
        finally:
            # Ctrl-C / stdin errors included: never strand the spill dir.
            service.close()
    from repro.net.protocol import PROTOCOL_VERSION
    from repro.net.server import ReproServer

    # The server owns the service: leaving the with-block — clean
    # shutdown frame, Ctrl-C, or a crash — closes spill dirs and pools.
    with ReproServer(service, host=args.host, port=args.port,
                     prom_out=args.prom_out,
                     prom_interval_s=args.prom_interval) as server:
        print("repro server listening on %s:%d (protocol v%d) — "
              "repro.connect(port=%d), or a shutdown frame, to talk"
              % (server.host, server.port, PROTOCOL_VERSION, server.port))
        sys.stdout.flush()
        try:
            server.wait()
        except KeyboardInterrupt:
            pass
    print("-- server stopped after %d queries; %.4f virtual s served"
          % (server._served_queries, service.clock))
    return 0


def _serve_loop(service, args) -> int:
    for raw in sys.stdin:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.lower() in ("quit", "exit"):
            break
        if line in QUERIES and get_query(line).skew:
            print("warning: %s expects Zipf-%g data; serving from the "
                  "unskewed catalog" % (line, get_query(line).skew),
                  file=sys.stderr)
        try:
            # submit() dates arrivals from the service's current clock.
            seq = service.submit(line)
            report = service.run()
        except Exception as exc:  # surface, keep serving
            print("error: %s" % exc, file=sys.stderr)
            continue
        for outcome in report.outcomes:
            if outcome.seq != seq:
                continue
            if outcome.result is None:
                print("-- query %s (estimated state %.3f MB over budget "
                      "policy)" % (outcome.status,
                                   outcome.state_estimate / 1e6))
                continue
            for row in outcome.result.sorted_rows()[: args.limit]:
                print("  ".join(str(v) for v in row))
            print("-- %d rows; %s; %.4f vs latency; %.4f vs queue wait"
                  % (outcome.rows, outcome.status, outcome.latency,
                     outcome.queue_wait))
    if service.batches_run or service.clock:
        print("-- served %.4f virtual s; peak state %.3f MB"
              % (service.clock, service.peak_state_bytes / 1e6))
    return 0


def _connect_admin(args):
    from repro.client import connect

    return connect(host=args.host, port=args.port, tenant=args.tenant)


def _cmd_stats(args) -> int:
    """One-shot introspection of a running server."""
    import json

    from repro.common.errors import ReproError

    try:
        with _connect_admin(args) as client:
            if args.prom:
                sys.stdout.write(client.prometheus())
            else:
                json.dump(client.stats(), sys.stdout,
                          indent=1, sort_keys=True)
                sys.stdout.write("\n")
    except (OSError, ReproError) as exc:
        print("error: cannot reach %s:%d: %s"
              % (args.host, args.port, exc), file=sys.stderr)
        return 2
    return 0


def _top_screen(health, stats, queries) -> str:
    """Render one ``repro top`` refresh from the admin payloads."""
    registry = stats.get("registry", {})
    server = stats.get("server", {})
    service = stats.get("service", {})

    def counter(name):
        metric = registry.get(name) or {}
        return int(metric.get("value", 0))

    def quantile(name, q):
        return (registry.get(name) or {}).get(q)

    lines = [
        "repro top — %s  uptime %.0fs  conns %d  inflight %d  "
        "queue %d" % (
            health.get("status", "?"),
            server.get("uptime_wall_s", 0.0),
            server.get("connections", 0),
            server.get("inflight", 0),
            server.get("queue_depth", 0),
        ),
        "queries: %d served  %d cached  %d shed  %d slow  |  "
        "batches %d  clock %.3f vs" % (
            server.get("served_queries", 0),
            counter("cache.result.hits"),
            counter("admission.shed") + counter("slo.shed")
            + counter("quota.shed"),
            counter("queries.slow"),
            service.get("batches_run", 0),
            service.get("clock", 0.0),
        ),
    ]
    latency = registry.get("query.latency_s") or {}
    if latency.get("count"):
        parts = []
        for q in ("p50", "p95", "p99"):
            value = quantile("query.latency_s", q)
            if value is not None:
                parts.append("%s %.4f" % (q, value))
        lines.append("latency (vs): %s  over %d queries"
                     % ("  ".join(parts) or "n/a", latency["count"]))
    lines.append(
        "state: peak %.3f MB  profiles %d kept/%d evicted  "
        "feedback %d fingerprints" % (
            service.get("peak_state_bytes", 0) / 1e6,
            service.get("profiles_retained", 0),
            service.get("profiles_evicted", 0),
            service.get("feedback_fingerprints", 0),
        )
    )
    lines.append("")
    lines.append("%-5s %-12s %-12s %-10s %9s %9s %10s %6s" % (
        "qid", "tenant", "label", "phase", "wall (s)", "virt (s)",
        "est MB", "wkr",
    ))
    if not queries:
        lines.append("  (no queries in flight)")
    for row in queries:
        estimate = row.get("state_estimate_bytes")
        lines.append("%-5s %-12s %-12s %-10s %9.3f %9.4f %10s %6s" % (
            row.get("qid", "?"),
            (row.get("tenant") or "-")[:12],
            (row.get("label") or "-")[:12],
            row.get("phase", "?"),
            row.get("elapsed_wall_s") or 0.0,
            row.get("virtual_elapsed_s") or 0.0,
            "%.3f" % (estimate / 1e6) if estimate is not None else "-",
            row.get("worker") if row.get("worker") is not None else "-",
        ))
    return "\n".join(lines)


def _cmd_top(args) -> int:
    """A live text dashboard: poll stats + proclist, redraw."""
    import time

    from repro.common.errors import ReproError

    refreshes = 0
    try:
        with _connect_admin(args) as client:
            while True:
                screen = _top_screen(
                    client.health(), client.stats(), client.proclist(),
                )
                if args.plain:
                    sys.stdout.write(screen + "\n--\n")
                else:
                    # Home the cursor and clear below: a flicker-free
                    # redraw that leaves scrollback alone.
                    sys.stdout.write("\x1b[H\x1b[J" + screen + "\n")
                sys.stdout.flush()
                refreshes += 1
                if args.iterations is not None \
                        and refreshes >= args.iterations:
                    return 0
                time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except (OSError, ReproError) as exc:
        print("error: cannot reach %s:%d: %s"
              % (args.host, args.port, exc), file=sys.stderr)
        return 2


def _cmd_explain(args) -> int:
    from repro.harness.strategies import uses_magic_plan

    query = get_query(args.qid)
    catalog = cached_tpch(scale_factor=args.scale, skew=query.skew)
    use_magic = args.magic or (args.analyze and uses_magic_plan(args.strategy))
    if use_magic and not query.has_magic:
        print("error: %s has no magic-sets plan" % args.qid, file=sys.stderr)
        return 2
    plan = (
        query.build_magic(catalog) if use_magic
        else query.build_baseline(catalog)
    )
    if not args.analyze:
        print(explain(plan, catalog))
        return 0
    from repro.obs.analyze import explain_analyze
    from repro.obs.trace import Tracer

    tracer = Tracer() if args.trace_out else None
    report = explain_analyze(
        plan, catalog, strategy=args.strategy, tracer=tracer,
    )
    print("%s — %s (scale %g)" % (query.qid, query.title, args.scale))
    print(report.render())
    if tracer is not None:
        tracer.write_chrome(args.trace_out)
        print("-- trace: %d events written to %s"
              % (len(tracer), args.trace_out))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sideways Information Passing reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list Table I workload queries")

    p_tables = sub.add_parser("tables", help="show generated table sizes")
    p_tables.add_argument("--scale", type=float, default=0.01)

    p_run = sub.add_parser("run", help="run one workload query")
    p_run.add_argument("qid", help="query id, e.g. Q1A")
    p_run.add_argument(
        "--strategy", default="all",
        choices=list(STRATEGIES) + ["all"],
    )
    p_run.add_argument("--scale", type=float, default=0.01)
    p_run.add_argument("--delayed", action="store_true",
                       help="delay the query's large input (Section VI-B)")
    p_run.add_argument("--partitions", type=int, default=0,
                       help="hash partition the query's big relation "
                            "across N remote sites (partition-parallel)")
    p_run.add_argument("--memory-budget", type=_parse_nbytes, default=None,
                       metavar="BYTES",
                       help="enforced engine state budget in bytes "
                            "(k/m/g suffixes ok): scans stream "
                            "buffer-pool pages and stateful operators "
                            "spill to disk under pressure")
    p_run.add_argument("--parallel", type=int, default=None, metavar="N",
                       help="evaluate partitioned-scan fragments on N "
                            "real worker processes (wall-clock "
                            "parallelism; rows stay identical to the "
                            "serial run)")
    p_run.add_argument("--trace-out", default=None, metavar="PATH",
                       help="record a Chrome-trace/Perfetto JSON timeline "
                            "of the execution (requires one --strategy)")

    p_explain = sub.add_parser("explain", help="show a plan with estimates")
    p_explain.add_argument("qid")
    p_explain.add_argument("--scale", type=float, default=0.01)
    p_explain.add_argument("--magic", action="store_true",
                           help="explain the magic-sets plan")
    p_explain.add_argument("--analyze", action="store_true",
                           help="execute the plan and annotate every "
                                "operator with estimated vs actual rows, "
                                "virtual ticks, peak state and prunes")
    p_explain.add_argument("--strategy", default="baseline",
                           choices=list(STRATEGIES),
                           help="execution strategy for --analyze "
                                "(magic implies the magic-sets plan)")
    p_explain.add_argument("--trace-out", default=None, metavar="PATH",
                           help="with --analyze, also record a "
                                "Chrome-trace JSON timeline")

    p_sql = sub.add_parser("sql", help="run a SQL query over generated data")
    p_sql.add_argument("query", help="SQL text (Table I dialect)")
    p_sql.add_argument("--scale", type=float, default=0.01)
    p_sql.add_argument(
        "--strategy", default="baseline",
        choices=["baseline", "feedforward", "costbased"],
    )
    p_sql.add_argument("--limit", type=int, default=20,
                       help="max rows to print")
    p_sql.add_argument("--explain", action="store_true",
                       help="show the bound plan instead of running")

    def add_service_options(p):
        from repro.service.schedulers import SCHEDULERS
        p.add_argument("--scale", type=float, default=0.01)
        p.add_argument("--strategy", default="feedforward",
                       choices=list(STRATEGIES))
        p.add_argument("--scheduler", default="fifo",
                       choices=list(SCHEDULERS))
        p.add_argument("--budget-mb", type=float, default=None,
                       help="admission-control intermediate-state "
                            "budget estimate (MB; default unbounded)")
        p.add_argument("--memory-budget", type=_parse_nbytes, default=None,
                       metavar="BYTES",
                       help="enforced engine state budget in bytes "
                            "(k/m/g suffixes ok); the memory governor "
                            "spills operator state past it")
        p.add_argument("--max-concurrent", type=int, default=4,
                       help="max queries per concurrent batch")
        p.add_argument("--no-aip-cache", action="store_true",
                       help="disable the cross-query AIP-set cache")
        p.add_argument("--no-result-cache", action="store_true",
                       help="disable the result cache")
        p.add_argument("--parallel", type=int, default=None, metavar="N",
                       help="run each admitted batch on N real worker "
                            "processes (wall-clock concurrency; "
                            "disables the cross-query AIP cache's "
                            "in-batch injection)")
        p.add_argument("--slo", type=float, default=None, metavar="SECONDS",
                       dest="slo_seconds",
                       help="latency objective in virtual seconds: shed "
                            "queries whose projected latency exceeds it")
        p.add_argument("--quota", type=_parse_quota, action="append",
                       default=None, metavar="TENANT=CONC[:BYTES]",
                       help="hard per-tenant cap, repeatable: concurrent "
                            "queries and/or estimated state bytes "
                            "(k/m/g suffixes ok); over-quota queries "
                            "are shed with a retry hint")
        p.add_argument("--slow-query-ms", type=float, default=None,
                       metavar="MS",
                       help="slow-query threshold in milliseconds of "
                            "virtual latency: completed queries at or "
                            "past it are counted and logged with their "
                            "full profile")
        p.add_argument("--event-log", default=None, metavar="PATH",
                       help="append lifecycle events (admit/shed/spill/"
                            "crash/slow_query/batch_complete) as JSON "
                            "lines to PATH, rotating by size")

    p_workload = sub.add_parser(
        "workload",
        help="replay a scripted query stream through the service layer",
    )
    p_workload.add_argument(
        "stream",
        help="workload script path, inline ids like 'Q2A*3,Q1A', or SQL",
    )
    add_service_options(p_workload)
    p_workload.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="record a Chrome-trace/Perfetto JSON timeline of the whole "
             "service run (all batches on one virtual timeline)",
    )
    p_workload.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the service metrics registry, per-fingerprint "
             "feedback records and report summary as JSON",
    )
    p_workload.add_argument(
        "--repeat", type=int, default=1,
        help="replay the stream this many times (each repetition's "
             "arrivals shift by the stream's span; with no @arrivals "
             "the copies arrive together as a load multiple)",
    )

    p_serve = sub.add_parser(
        "serve",
        help="serve the query service over a socket (or --stdin REPL)",
    )
    add_service_options(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="listen address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=7734,
                         help="listen port; 0 picks an ephemeral port "
                              "(default 7734)")
    p_serve.add_argument("--stdin", action="store_true",
                         help="legacy line-per-query REPL on stdin "
                              "instead of the socket server")
    p_serve.add_argument("--limit", type=int, default=20,
                         help="max rows to print per query (--stdin only)")
    p_serve.add_argument("--prom-out", default=None, metavar="PATH",
                         help="write a Prometheus text-format metrics "
                              "snapshot to PATH periodically (and once "
                              "at shutdown) for a node-exporter-style "
                              "textfile collector")
    p_serve.add_argument("--prom-interval", type=float, default=5.0,
                         metavar="SECONDS",
                         help="seconds between --prom-out snapshots "
                              "(default 5)")

    def add_admin_options(p):
        p.add_argument("--host", default="127.0.0.1",
                       help="server address (default 127.0.0.1)")
        p.add_argument("--port", type=int, default=7734,
                       help="server port (default 7734)")
        p.add_argument("--tenant", default=None,
                       help="tenant name to identify as")

    p_stats = sub.add_parser(
        "stats",
        help="print a running server's stats (JSON or Prometheus text)",
    )
    add_admin_options(p_stats)
    p_stats.add_argument("--prom", action="store_true",
                         help="print the Prometheus text-format page "
                              "instead of the JSON snapshot")

    p_top = sub.add_parser(
        "top",
        help="live dashboard over a running server (stats + proclist)",
    )
    add_admin_options(p_top)
    p_top.add_argument("--interval", type=float, default=2.0,
                       metavar="SECONDS",
                       help="seconds between refreshes (default 2)")
    p_top.add_argument("--iterations", type=int, default=None, metavar="N",
                       help="stop after N refreshes (default: run until "
                            "interrupted)")
    p_top.add_argument("--plain", action="store_true",
                       help="print each refresh as a plain block instead "
                            "of redrawing the screen (for logs/CI)")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "tables": _cmd_tables,
        "run": _cmd_run,
        "explain": _cmd_explain,
        "sql": _cmd_sql,
        "workload": _cmd_workload,
        "serve": _cmd_serve,
        "stats": _cmd_stats,
        "top": _cmd_top,
    }
    try:
        return handlers[args.command](args)
    except KeyError as exc:  # unknown query id from get_query
        print("error: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
