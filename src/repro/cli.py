"""Command-line interface.

Usage (``python -m repro ...``)::

    python -m repro list
    python -m repro tables --scale 0.01
    python -m repro run Q1A --strategy feedforward --scale 0.01
    python -m repro run Q2A --strategy all --delayed
    python -m repro explain Q3A --scale 0.01
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.data.tpch import cached_tpch
from repro.harness.runner import run_workload_query
from repro.harness.strategies import STRATEGIES
from repro.optimizer.explain import explain
from repro.workloads.registry import QUERIES, get_query


def _cmd_list(args) -> int:
    print("%-6s %-28s %-8s %-6s %s" % (
        "id", "title", "family", "skew", "notes",
    ))
    for qid in sorted(QUERIES):
        query = QUERIES[qid]
        notes = []
        if query.is_distributed:
            notes.append("remote:%s" % ",".join(query.remote_tables))
        if query.has_magic:
            notes.append("magic")
        print("%-6s %-28s %-8s %-6g %s" % (
            qid, query.title, query.family, query.skew, " ".join(notes),
        ))
    return 0


def _cmd_tables(args) -> int:
    catalog = cached_tpch(scale_factor=args.scale)
    print("TPC-H at scale factor %g:" % args.scale)
    total = 0
    for name in catalog.table_names():
        table = catalog.table(name)
        total += len(table)
        print("  %-10s %9d rows  %10d bytes (est.)"
              % (name, len(table), table.byte_size()))
    print("  %-10s %9d rows" % ("total", total))
    return 0


def _cmd_run(args) -> int:
    strategies = (
        list(STRATEGIES) if args.strategy == "all" else [args.strategy]
    )
    query = get_query(args.qid)
    if not query.has_magic and "magic" in strategies:
        strategies = [s for s in strategies if s != "magic"]
    print("%s — %s (scale %g%s)" % (
        query.qid, query.title, args.scale,
        ", delayed %s" % query.delayed_table if args.delayed else "",
    ))
    print("%-14s %8s %12s %12s %9s %7s" % (
        "strategy", "rows", "time (vs)", "state (MB)", "pruned", "sets",
    ))
    for strategy in strategies:
        record = run_workload_query(
            args.qid, strategy,
            scale_factor=args.scale, delayed=args.delayed,
        )
        s = record.summary
        print("%-14s %8d %12.4f %12.4f %9d %7d" % (
            strategy, s["result_rows"], s["virtual_seconds"],
            s["peak_state_mb"], s["tuples_pruned"], s["aip_sets_created"],
        ))
    return 0


def _cmd_sql(args) -> int:
    from repro.exec.context import ExecutionContext
    from repro.exec.engine import execute_plan
    from repro.sql import sql_to_plan

    catalog = cached_tpch(scale_factor=args.scale)
    plan = sql_to_plan(catalog, args.query)
    if args.explain:
        print(explain(plan, catalog))
        return 0
    from repro.harness.strategies import make_strategy
    ctx = ExecutionContext(catalog, strategy=make_strategy(args.strategy))
    result = execute_plan(plan, ctx)
    for row in result.sorted_rows()[: args.limit]:
        print("  ".join(str(v) for v in row))
    m = result.metrics
    print("-- %d rows; %.4f virtual s; %.3f MB peak state; %d pruned"
          % (len(result), m.clock, m.peak_state_bytes / 1e6, m.total_pruned))
    return 0


def _cmd_explain(args) -> int:
    query = get_query(args.qid)
    catalog = cached_tpch(scale_factor=args.scale, skew=query.skew)
    plan = (
        query.build_magic(catalog) if args.magic
        else query.build_baseline(catalog)
    )
    print(explain(plan, catalog))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sideways Information Passing reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list Table I workload queries")

    p_tables = sub.add_parser("tables", help="show generated table sizes")
    p_tables.add_argument("--scale", type=float, default=0.01)

    p_run = sub.add_parser("run", help="run one workload query")
    p_run.add_argument("qid", help="query id, e.g. Q1A")
    p_run.add_argument(
        "--strategy", default="all",
        choices=list(STRATEGIES) + ["all"],
    )
    p_run.add_argument("--scale", type=float, default=0.01)
    p_run.add_argument("--delayed", action="store_true",
                       help="delay the query's large input (Section VI-B)")

    p_explain = sub.add_parser("explain", help="show a plan with estimates")
    p_explain.add_argument("qid")
    p_explain.add_argument("--scale", type=float, default=0.01)
    p_explain.add_argument("--magic", action="store_true",
                           help="explain the magic-sets plan")

    p_sql = sub.add_parser("sql", help="run a SQL query over generated data")
    p_sql.add_argument("query", help="SQL text (Table I dialect)")
    p_sql.add_argument("--scale", type=float, default=0.01)
    p_sql.add_argument(
        "--strategy", default="baseline",
        choices=["baseline", "feedforward", "costbased"],
    )
    p_sql.add_argument("--limit", type=int, default=20,
                       help="max rows to print")
    p_sql.add_argument("--explain", action="store_true",
                       help="show the bound plan instead of running")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "tables": _cmd_tables,
        "run": _cmd_run,
        "explain": _cmd_explain,
        "sql": _cmd_sql,
    }
    try:
        return handlers[args.command](args)
    except KeyError as exc:  # unknown query id from get_query
        print("error: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
