"""EXPLAIN: render a plan with the optimizer's estimates.

Mirrors what Tukwila exposes to its operators — cardinality estimates
and costs — in a human-readable tree, so plan shapes and estimate
quality can be inspected without running anything.
"""

from __future__ import annotations

from typing import List, Optional

from repro.data.catalog import Catalog
from repro.exec.costs import CostModel
from repro.optimizer.cost import PlanCoster
from repro.optimizer.estimator import CardinalityEstimator
from repro.plan.logical import LogicalNode


def explain(
    plan: LogicalNode,
    catalog: Catalog,
    cost_model: Optional[CostModel] = None,
) -> str:
    """Multi-line rendering: one row per operator with estimates."""
    estimator = CardinalityEstimator(catalog)
    coster = PlanCoster(catalog, cost_model, estimator)
    lines: List[str] = [
        "%-64s %12s %12s" % ("operator", "est. rows", "est. cost (s)"),
        "-" * 90,
    ]

    def visit(node: LogicalNode, depth: int, seen) -> None:
        label = "  " * depth + node._label()
        if node.node_id in seen:
            lines.append("%-64s %12s %12s" % (label + " (shared)", "", ""))
            return
        seen.add(node.node_id)
        est = estimator.estimate(node)
        cost = coster.local_cost(node)
        lines.append(
            "%-64s %12.1f %12.6f" % (label[:64], est.rows, cost)
        )
        for child in node.children:
            visit(child, depth + 1, seen)

    visit(plan, 0, set())
    lines.append("-" * 90)
    lines.append(
        "total estimated cost: %.6f virtual seconds"
        % coster.total_cost(plan)
    )
    return "\n".join(lines)
