"""The source-predicate graph (Section IV-A of the paper).

"During query optimization, the system creates a source-predicate graph
describing the predicates (edges) between table variables (nodes)."
Its essential service — for both AIP algorithms — is the function
``EQ``: the set of attributes *transitively equated* by the query's
correlation predicates.  We implement it as a union-find over attribute
names, fed by:

* equi-join key pairs,
* semijoin key pairs,
* ``col = col`` conjuncts in filters and join residuals,
* projection passthroughs (an output column renaming an input column
  refers to the same values).

Attribute names must be unique across independent branches of a query
(the workload queries guarantee this with scan prefixes), so name-based
equivalence is sound.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.expr.expressions import Col, conjuncts_of
from repro.plan.logical import (
    Filter, Join, LogicalNode, Project, Scan, SemiJoin,
)


class UnionFind:
    """Disjoint sets over hashable items, with path compression."""

    def __init__(self):
        self._parent: Dict = {}

    def find(self, item):
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb

    def same(self, a, b) -> bool:
        return self.find(a) == self.find(b)

    def members(self, item) -> FrozenSet:
        root = self.find(item)
        return frozenset(
            x for x in self._parent if self.find(x) == root
        )

    def groups(self) -> List[FrozenSet]:
        by_root: Dict = {}
        for item in list(self._parent):
            by_root.setdefault(self.find(item), set()).add(item)
        return [frozenset(g) for g in by_root.values()]


class PredicateEdge:
    """One correlation predicate between two plan attributes."""

    __slots__ = ("left_attr", "right_attr", "node_id")

    def __init__(self, left_attr: str, right_attr: str, node_id: int):
        self.left_attr = left_attr
        self.right_attr = right_attr
        self.node_id = node_id

    def __repr__(self) -> str:
        return "PredicateEdge(%s = %s @#%d)" % (
            self.left_attr, self.right_attr, self.node_id,
        )


class SourcePredicateGraph:
    """Attribute equivalence plus bookkeeping about where attributes live."""

    def __init__(self):
        self.eq = UnionFind()
        self.edges: List[PredicateEdge] = []
        #: attr name -> ids of scan nodes whose output carries it
        self.attr_scans: Dict[str, Set[int]] = {}
        #: attr name -> base (table, column) origin where known
        self.origins: Dict[str, Tuple[str, str]] = {}

    @classmethod
    def from_plan(cls, root: LogicalNode) -> "SourcePredicateGraph":
        graph = cls()
        for node in root.walk():
            graph._absorb(node)
        return graph

    def _absorb(self, node: LogicalNode) -> None:
        self.origins.update(node.column_origins)
        if isinstance(node, Scan):
            for name in node.schema.names:
                self.attr_scans.setdefault(name, set()).add(node.node_id)
            return
        if isinstance(node, Join):
            for lk, rk in node.key_pairs():
                self._add_equality(lk, rk, node.node_id)
            for conjunct in conjuncts_of(node.residual):
                self._maybe_equality(conjunct, node.node_id)
            return
        if isinstance(node, SemiJoin):
            for p, s in zip(node.probe_keys, node.source_keys):
                self._add_equality(p, s, node.node_id)
            return
        if isinstance(node, Filter):
            for conjunct in conjuncts_of(node.predicate):
                self._maybe_equality(conjunct, node.node_id)
            return
        if isinstance(node, Project):
            for name, expr in node.outputs:
                if isinstance(expr, Col) and expr.name != name:
                    self._add_equality(name, expr.name, node.node_id)
            return
        # GroupBy and Distinct keep attribute names; nothing to absorb.

    def _maybe_equality(self, conjunct, node_id: int) -> None:
        pair = getattr(conjunct, "is_column_equality", lambda: None)()
        if pair is not None:
            self._add_equality(pair[0], pair[1], node_id)

    def _add_equality(self, a: str, b: str, node_id: int) -> None:
        self.eq.union(a, b)
        self.edges.append(PredicateEdge(a, b, node_id))

    # -- queries --------------------------------------------------------

    def eq_class(self, attr: str) -> FrozenSet[str]:
        """``EQ(attr)``: all attributes transitively equated to it."""
        return self.eq.members(attr)

    def are_equated(self, a: str, b: str) -> bool:
        return self.eq.same(a, b)

    def eq_classes(self) -> List[FrozenSet[str]]:
        """All non-singleton equivalence classes (connected components)."""
        return [g for g in self.eq.groups() if len(g) > 1]

    def equated_elsewhere(self, attr: str) -> FrozenSet[str]:
        """Attributes equated to ``attr`` but distinct from it."""
        return self.eq_class(attr) - frozenset((attr,))
