"""Plan cost estimation.

Uses the *same* per-event constants as the executing engine
(:class:`repro.exec.costs.CostModel`), so a cost prediction for a
subtree is directly comparable to virtual seconds the engine would
spend on it.  This mirrors Tukwila, where "the optimizer and its
subcomponents can be invoked at any time during execution" — the
cost-based AIP manager calls into this module from inside a running
query (``ESTIMATEBENEFIT``, Figure 4 of the paper).
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import OptimizerError
from repro.data.catalog import Catalog
from repro.exec.costs import CostModel
from repro.optimizer.estimator import CardinalityEstimator, Estimate
from repro.plan.logical import (
    Distinct, Filter, GroupBy, Join, LogicalNode, Project, Scan, SemiJoin,
)


class PlanCoster:
    """Estimates the engine cost (virtual seconds) of plan subtrees."""

    def __init__(
        self,
        catalog: Catalog,
        cost_model: Optional[CostModel] = None,
        estimator: Optional[CardinalityEstimator] = None,
    ):
        self.catalog = catalog
        self.cost_model = cost_model or CostModel()
        self.estimator = estimator or CardinalityEstimator(catalog)

    # -- totals -----------------------------------------------------------

    def total_cost(self, node: LogicalNode) -> float:
        """Full cost of computing ``node``, including its inputs.
        Shared subexpressions (DAG plans) are counted once — the push
        engine executes them once."""
        return sum(self.local_cost(n) for n in node.walk())

    def local_cost(self, node: LogicalNode) -> float:
        """Cost of the node itself, given estimated input cardinalities."""
        cm = self.cost_model
        est = self.estimator.estimate(node)

        if isinstance(node, Scan):
            return est.rows * cm.scan_read

        if isinstance(node, Filter):
            in_rows = self.estimator.estimate(node.child).rows
            return in_rows * (cm.tuple_base + cm.predicate_eval)

        if isinstance(node, Project):
            in_rows = self.estimator.estimate(node.child).rows
            return in_rows * (cm.tuple_base + cm.output_build)

        if isinstance(node, Join):
            left = self.estimator.estimate(node.left).rows
            right = self.estimator.estimate(node.right).rows
            return self.join_local_cost(left, right, est.rows)

        if isinstance(node, SemiJoin):
            probe = self.estimator.estimate(node.probe).rows
            source = self.estimator.estimate(node.source).rows
            per_probe = cm.tuple_base + cm.hash_probe
            per_source = cm.tuple_base + cm.hash_insert
            return probe * per_probe + source * per_source + est.rows * cm.output_build

        if isinstance(node, GroupBy):
            in_rows = self.estimator.estimate(node.child).rows
            n_aggs = max(len(node.aggregates), 1)
            per_row = cm.tuple_base + cm.hash_probe + n_aggs * cm.agg_update
            return in_rows * per_row + est.rows * (cm.hash_insert + cm.output_build)

        if isinstance(node, Distinct):
            in_rows = self.estimator.estimate(node.child).rows
            return (
                in_rows * (cm.tuple_base + cm.hash_probe)
                + est.rows * cm.hash_insert
            )

        raise OptimizerError("cannot cost node %r" % node)

    # -- pieces used by the AIP manager ------------------------------------

    def join_local_cost(self, left_rows: float, right_rows: float,
                        out_rows: float) -> float:
        """Cost of a pipelined hash join given its input/output sizes."""
        cm = self.cost_model
        per_input = cm.tuple_base + cm.hash_probe + cm.hash_insert
        return (left_rows + right_rows) * per_input + out_rows * cm.output_build

    def filter_probe_cost(self, rows: float) -> float:
        """Cost of probing ``rows`` tuples against one AIP filter."""
        return rows * self.cost_model.semijoin_probe

    def aip_build_cost(self, state_rows: float) -> float:
        """Cost of scanning operator state to build an AIP set."""
        return state_rows * self.cost_model.aip_build_per_row

    def state_bytes(self, node: LogicalNode) -> float:
        """Estimated bytes to buffer ``node``'s full output."""
        from repro.common.sizing import rows_nbytes
        est = self.estimator.estimate(node)
        return rows_nbytes(node.schema, est.rows)
