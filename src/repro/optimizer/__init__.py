"""Optimizer services: statistics, cost estimation, predicate analysis,
and the magic-sets rewriting baseline."""

from repro.optimizer.predicate_graph import SourcePredicateGraph, UnionFind
from repro.optimizer.estimator import CardinalityEstimator, Estimate, Observation
from repro.optimizer.cost import PlanCoster
from repro.optimizer.magic import apply_magic, magic_filter_set

__all__ = [
    "SourcePredicateGraph",
    "UnionFind",
    "CardinalityEstimator",
    "Estimate",
    "Observation",
    "PlanCoster",
    "apply_magic",
    "magic_filter_set",
]
