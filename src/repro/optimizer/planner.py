"""Greedy bushy join-order planning.

The paper's Tukwila optimizer "chooses maximally pipelined plans,
emphasizing the pipelined hash join, hash-based aggregation, and bushy
plans" with "a top-down search strategy similar to Volcano's".  The
workload queries in this repository hand-specify their plan shapes (as
the paper's figures do); this module provides the optimizer service for
*new* queries: given a conjunctive query — relations plus a predicate
list — it builds a bushy plan greedily, at each step joining the pair
of components with the smallest estimated output.

The greedy strategy is a standard stand-in for full plan-space search;
it produces bushy (not only linear) trees because any two components
may be combined, which is the property push-style AIP depends on.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.common.errors import PlanError
from repro.data.catalog import Catalog
from repro.expr.expressions import Cmp, Expr, conjuncts_of
from repro.optimizer.estimator import CardinalityEstimator
from repro.plan.logical import Filter, Join, LogicalNode, Scan


class ConjunctiveQuery:
    """A select-project-join query in declarative form.

    ``relations`` maps an alias to a table name; every attribute of the
    relation is exposed as ``alias_column`` when the alias differs from
    the table name (otherwise bare column names are used).
    ``predicates`` is a list of boolean expressions over those names.
    """

    def __init__(
        self,
        relations: Sequence[Tuple[str, str]],
        predicates: Sequence[Expr] = (),
    ):
        if not relations:
            raise PlanError("a query needs at least one relation")
        seen = set()
        for alias, _table in relations:
            if alias in seen:
                raise PlanError("duplicate relation alias %r" % alias)
            seen.add(alias)
        self.relations = list(relations)
        self.predicates = list(predicates)


class _Component:
    """A connected sub-plan under construction."""

    __slots__ = ("node", "columns")

    def __init__(self, node: LogicalNode):
        self.node = node
        self.columns: Set[str] = set(node.schema.names)


def plan_query(
    catalog: Catalog,
    query: ConjunctiveQuery,
    estimator: Optional[CardinalityEstimator] = None,
) -> LogicalNode:
    """Build a bushy plan for ``query`` greedily by estimated size."""
    estimator = estimator or CardinalityEstimator(catalog)

    conjuncts: List[Expr] = []
    for predicate in query.predicates:
        conjuncts.extend(conjuncts_of(predicate))

    components = [
        _Component(_leaf(catalog, alias, table))
        for alias, table in query.relations
    ]

    # Attach single-component predicates as filters immediately.
    conjuncts = _apply_local_filters(components, conjuncts)

    while len(components) > 1:
        best = _best_pair(components, conjuncts, estimator)
        if best is None:
            raise PlanError(
                "query is not connected by equi-join predicates; "
                "cross products are not planned"
            )
        i, j, join_pairs, used = best
        left, right = components[i], components[j]
        left_keys = [lk for lk, _ in join_pairs]
        right_keys = [rk for _, rk in join_pairs]
        joined = Join(left.node, right.node, left_keys, right_keys)
        remaining = [c for c in conjuncts if c not in used]

        merged = _Component(joined)
        components = [
            c for k, c in enumerate(components) if k not in (i, j)
        ]
        components.append(merged)
        # Predicates now covered by the merged component become filters.
        conjuncts = _apply_local_filters(components, remaining)

    root = components[0].node
    if conjuncts:
        raise PlanError(
            "predicates reference columns not produced by any relation: %r"
            % conjuncts
        )
    return root


def _leaf(catalog: Catalog, alias: str, table: str) -> LogicalNode:
    schema = catalog.table(table).schema
    renames = None
    if alias != table:
        renames = {name: "%s_%s" % (alias, name) for name in schema.names}
    return Scan(table, schema, renames=renames)


def _apply_local_filters(
    components: List[_Component], conjuncts: List[Expr]
) -> List[Expr]:
    """Turn conjuncts fully covered by one component into filters;
    return the conjuncts still pending."""
    pending: List[Expr] = []
    for conjunct in conjuncts:
        columns = conjunct.columns()
        owner = None
        for component in components:
            if columns <= component.columns:
                owner = component
                break
        if owner is None:
            pending.append(conjunct)
            continue
        # Column-equality conjuncts spanning... within one component are
        # ordinary filters too (self-correlations).
        owner.node = Filter(owner.node, conjunct)
    return pending


def _best_pair(
    components: List[_Component],
    conjuncts: List[Expr],
    estimator: CardinalityEstimator,
):
    """The pair of components connected by at least one column equality
    whose join has the smallest estimated output."""
    best = None
    best_rows = None
    for i in range(len(components)):
        for j in range(i + 1, len(components)):
            pairs, used = _connecting_equalities(
                components[i], components[j], conjuncts
            )
            if not pairs:
                continue
            trial = Join(
                components[i].node, components[j].node,
                [lk for lk, _ in pairs], [rk for _, rk in pairs],
            )
            rows = estimator.estimate(trial).rows
            if best_rows is None or rows < best_rows:
                best = (i, j, pairs, used)
                best_rows = rows
    return best


def _connecting_equalities(
    a: _Component, b: _Component, conjuncts: List[Expr]
) -> Tuple[List[Tuple[str, str]], List[Expr]]:
    pairs: List[Tuple[str, str]] = []
    used: List[Expr] = []
    for conjunct in conjuncts:
        if not isinstance(conjunct, Cmp):
            continue
        equality = conjunct.is_column_equality()
        if equality is None:
            continue
        x, y = equality
        if x in a.columns and y in b.columns:
            pairs.append((x, y))
            used.append(conjunct)
        elif y in a.columns and x in b.columns:
            pairs.append((y, x))
            used.append(conjunct)
    return pairs, used
