"""Magic-sets rewriting (the paper's comparison baseline).

Following the paper's Section VI setup: "we extended Tukwila to perform
magic sets rewritings using the approach of [18] (Seshadri et al.,
SIGMOD 1996).  We adopt [18]'s heuristics in pruning the optimizer
search space: (1) the filter set is computed from the entire outer
query, and (2) the filter set contains the largest number of attributes
that can be joined.  Our implementation performs full pipelining when
computing the filter set: the filter set is computed simultaneously
with the main query and the subquery."

Mechanically the rewriting:

1. takes the *entire outer query* plan (shared, not recomputed — the
   plan becomes a DAG and the push engine executes shared operators
   once);
2. projects it to the correlation attributes and removes duplicates:
   that is the **magic (filter) set**;
3. semijoins the subquery's input with the filter set before the
   subquery's aggregation.

Everything is pipelined: the filter set streams into the semijoin's
source port while the subquery's input streams into the probe port.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.common.errors import PlanError
from repro.expr.expressions import Col
from repro.plan.logical import Distinct, LogicalNode, Project, SemiJoin


def magic_filter_set(
    outer: LogicalNode, key_attrs: Sequence[str]
) -> LogicalNode:
    """``DISTINCT π_keys(outer)`` — the magic set of [18].

    ``outer`` is shared with the rest of the plan (DAG), matching the
    paper's fully pipelined filter-set computation.
    """
    if not key_attrs:
        raise PlanError("magic set needs at least one key attribute")
    for attr in key_attrs:
        if attr not in outer.schema:
            raise PlanError(
                "magic key %r is not produced by the outer query" % attr
            )
    projected = Project(outer, [(a, Col(a)) for a in key_attrs])
    return Distinct(projected)


def apply_magic(
    sub_input: LogicalNode,
    outer: LogicalNode,
    on: Sequence[Tuple[str, str]],
) -> LogicalNode:
    """Filter ``sub_input`` by the magic set of ``outer``.

    ``on`` maps subquery attributes to outer-query attributes:
    ``[(sub_attr, outer_attr), ...]``.  Per heuristic (2) of [18], pass
    every joinable correlation attribute.
    """
    if not on:
        raise PlanError("magic rewriting needs correlation attributes")
    sub_keys: List[str] = [s for s, _ in on]
    outer_keys: List[str] = [o for _, o in on]
    filter_set = magic_filter_set(outer, outer_keys)
    return SemiJoin(sub_input, filter_set, sub_keys, outer_keys)
