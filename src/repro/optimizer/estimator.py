"""Cardinality estimation.

Faithful to the Tukwila design the paper describes (Section V-A): "its
cost modeler does not require histograms: instead, it relies on
cardinality estimates and information about keys and foreign keys when
estimating the selectivity of join conditions ... assuming uniform
distribution and uncorrelated attributes."

The estimator additionally accepts runtime *observations* — actual
operator output counts and completion flags — which is how the
cost-based AIP manager's ``UPDATEESTIMATES`` step (Figure 4, line 1)
re-grounds estimates mid-execution.
"""

from __future__ import annotations

import datetime
from typing import Dict, Optional

from repro.common.errors import OptimizerError
from repro.data.catalog import Catalog
from repro.data.schema import DATE
from repro.expr.expressions import (
    And, Cmp, Col, Expr, Like, Lit, Not, Or,
)
from repro.plan.logical import (
    Distinct, Filter, GroupBy, Join, LogicalNode, Project, Scan, SemiJoin,
)

#: Fallbacks when nothing better is known (classic System R constants).
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_LIKE_SELECTIVITY = 0.2
MIN_ROWS = 1.0


class Estimate:
    """Estimated output of one plan node."""

    __slots__ = ("rows", "distinct")

    def __init__(self, rows: float, distinct: Dict[str, float]):
        self.rows = max(rows, 0.0)
        self.distinct = distinct

    def distinct_of(self, attr: str) -> float:
        d = self.distinct.get(attr)
        if d is None or d <= 0:
            return max(self.rows, MIN_ROWS)
        return d

    def __repr__(self) -> str:
        return "Estimate(rows=%.1f)" % self.rows


class Observation:
    """Runtime feedback about one operator's output."""

    __slots__ = ("rows_out", "complete")

    def __init__(self, rows_out: int, complete: bool):
        self.rows_out = rows_out
        self.complete = complete


class CardinalityEstimator:
    """Estimates node output cardinalities and per-attribute distincts."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._observations: Dict[int, Observation] = {}
        self._cache: Dict[int, Estimate] = {}

    # -- runtime feedback -------------------------------------------------

    def observe(self, node_id: int, rows_out: int, complete: bool) -> None:
        """Record actual output progress for a node (UPDATEESTIMATES)."""
        self._observations[node_id] = Observation(rows_out, complete)
        self._cache.clear()

    def clear_observations(self) -> None:
        self._observations.clear()
        self._cache.clear()

    # -- entry point --------------------------------------------------------

    def estimate(self, node: LogicalNode) -> Estimate:
        cached = self._cache.get(node.node_id)
        if cached is not None:
            return cached
        est = self._estimate_fresh(node)
        obs = self._observations.get(node.node_id)
        if obs is not None:
            if obs.complete:
                rows = float(obs.rows_out)
            else:
                # Still running: the true output is at least what we saw.
                rows = max(est.rows, float(obs.rows_out))
            est = Estimate(
                rows,
                {a: min(d, max(rows, MIN_ROWS)) for a, d in est.distinct.items()},
            )
        self._cache[node.node_id] = est
        return est

    # -- per-node rules ------------------------------------------------------

    def _estimate_fresh(self, node: LogicalNode) -> Estimate:
        if isinstance(node, Scan):
            return self._scan(node)
        if isinstance(node, Filter):
            child = self.estimate(node.child)
            sel = self.selectivity(node.predicate, node.child, child)
            return self._scaled(child, child.rows * sel, node.schema.names)
        if isinstance(node, Project):
            child = self.estimate(node.child)
            distinct = {}
            for name, expr in node.outputs:
                if isinstance(expr, Col):
                    distinct[name] = child.distinct_of(expr.name)
                else:
                    distinct[name] = max(child.rows, MIN_ROWS)
            return Estimate(child.rows, distinct)
        if isinstance(node, Join):
            return self._join(node)
        if isinstance(node, SemiJoin):
            return self._semijoin(node)
        if isinstance(node, GroupBy):
            return self._group_by(node)
        if isinstance(node, Distinct):
            child = self.estimate(node.child)
            bound = 1.0
            for attr in node.schema.names:
                bound *= child.distinct_of(attr)
                if bound >= child.rows:
                    break
            rows = min(child.rows, bound)
            return self._scaled(child, rows, node.schema.names)
        raise OptimizerError("cannot estimate node %r" % node)

    def _scan(self, node: Scan) -> Estimate:
        stats = self.catalog.stats(node.table_name)
        distinct = {}
        for out_name, (_, base_col) in node.column_origins.items():
            distinct[out_name] = float(stats.distinct.get(base_col, stats.row_count))
        return Estimate(float(stats.row_count), distinct)

    def _join(self, node: Join) -> Estimate:
        left = self.estimate(node.left)
        right = self.estimate(node.right)
        rows = left.rows * right.rows
        for lk, rk in node.key_pairs():
            denom = max(left.distinct_of(lk), right.distinct_of(rk), 1.0)
            rows /= denom
        if node.residual is not None:
            combined = dict(left.distinct)
            combined.update(right.distinct)
            pseudo = Estimate(rows, combined)
            rows *= self.selectivity(node.residual, node, pseudo)
        distinct = {}
        for attr, d in left.distinct.items():
            distinct[attr] = min(d, max(rows, MIN_ROWS))
        for attr, d in right.distinct.items():
            distinct[attr] = min(d, max(rows, MIN_ROWS))
        return Estimate(rows, distinct)

    def _semijoin(self, node: SemiJoin) -> Estimate:
        probe = self.estimate(node.probe)
        source = self.estimate(node.source)
        rows = probe.rows
        for pk, sk in zip(node.probe_keys, node.source_keys):
            d_probe = probe.distinct_of(pk)
            d_source = source.distinct_of(sk)
            rows *= min(1.0, d_source / max(d_probe, 1.0))
        return self._scaled(probe, rows, node.schema.names)

    def _group_by(self, node: GroupBy) -> Estimate:
        child = self.estimate(node.child)
        groups = 1.0
        for key in node.keys:
            groups *= child.distinct_of(key)
            if groups >= child.rows:
                break
        rows = max(min(child.rows, groups), MIN_ROWS if child.rows else 0.0)
        distinct = {}
        for key in node.keys:
            distinct[key] = min(child.distinct_of(key), max(rows, MIN_ROWS))
        for spec in node.aggregates:
            distinct[spec.output_name] = max(rows, MIN_ROWS)
        return Estimate(rows, distinct)

    def _scaled(self, child: Estimate, rows: float, names) -> Estimate:
        rows = max(rows, 0.0)
        return Estimate(
            rows,
            {a: min(child.distinct_of(a), max(rows, MIN_ROWS)) for a in names},
        )

    # -- predicate selectivity -------------------------------------------

    def selectivity(
        self, predicate: Expr, node: LogicalNode, est: Estimate
    ) -> float:
        """Estimated fraction of rows satisfying ``predicate``."""
        if isinstance(predicate, And):
            out = 1.0
            for term in predicate.terms:
                out *= self.selectivity(term, node, est)
            return out
        if isinstance(predicate, Or):
            out = 1.0
            for term in predicate.terms:
                out *= 1.0 - self.selectivity(term, node, est)
            return 1.0 - out
        if isinstance(predicate, Not):
            return 1.0 - self.selectivity(predicate.term, node, est)
        if isinstance(predicate, Like):
            return DEFAULT_LIKE_SELECTIVITY
        if isinstance(predicate, Cmp):
            return self._cmp_selectivity(predicate, node, est)
        return 0.5

    def _cmp_selectivity(self, cmp: Cmp, node: LogicalNode, est: Estimate) -> float:
        pair = cmp.is_column_equality()
        if pair is not None:
            d = max(est.distinct_of(pair[0]), est.distinct_of(pair[1]), 1.0)
            return 1.0 / d

        col, lit_value, op = self._column_vs_literal(cmp)
        if col is None:
            return (
                DEFAULT_EQ_SELECTIVITY if cmp.op in ("=", "!=")
                else DEFAULT_RANGE_SELECTIVITY
            )
        if op == "=":
            return 1.0 / max(est.distinct_of(col), 1.0)
        if op == "!=":
            return 1.0 - 1.0 / max(est.distinct_of(col), 1.0)
        return self._range_selectivity(col, lit_value, op, node)

    @staticmethod
    def _column_vs_literal(cmp: Cmp):
        """Normalise to (column, literal, operator-with-column-on-left)."""
        flip = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=", "!=": "!="}
        if isinstance(cmp.left, Col) and isinstance(cmp.right, Lit):
            return cmp.left.name, cmp.right.value, cmp.op
        if isinstance(cmp.right, Col) and isinstance(cmp.left, Lit):
            return cmp.right.name, cmp.left.value, flip[cmp.op]
        return None, None, None

    def _range_selectivity(self, attr: str, value, op: str, node: LogicalNode) -> float:
        bounds = self._bounds_of(attr, node)
        if bounds is None:
            return DEFAULT_RANGE_SELECTIVITY
        lo, hi = bounds
        frac = _fraction_below(value, lo, hi)
        if frac is None:
            return DEFAULT_RANGE_SELECTIVITY
        if op in ("<", "<="):
            sel = frac
        else:
            sel = 1.0 - frac
        return min(max(sel, 0.0), 1.0)

    def _bounds_of(self, attr: str, node: LogicalNode):
        origin = node.column_origins.get(attr)
        if origin is None:
            return None
        table, column = origin
        stats = self.catalog.stats(table)
        lo = stats.minima.get(column)
        hi = stats.maxima.get(column)
        if lo is None or hi is None or lo == hi:
            return None
        return lo, hi


def _fraction_below(value, lo, hi) -> Optional[float]:
    """Uniform-interpolation fraction of the domain below ``value``."""
    try:
        if isinstance(value, str):
            v = _date_ordinal(value)
            low = _date_ordinal(lo)
            high = _date_ordinal(hi)
            if v is None or low is None or high is None:
                return None
            return (v - low) / (high - low) if high != low else None
        return (float(value) - float(lo)) / (float(hi) - float(lo))
    except (TypeError, ValueError):
        return None


def _date_ordinal(value) -> Optional[int]:
    if not isinstance(value, str):
        return None
    try:
        return datetime.date.fromisoformat(value).toordinal()
    except ValueError:
        return None
