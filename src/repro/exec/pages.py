"""The page-native execution unit: a column batch.

A :class:`ColumnBatch` is the in-flight sibling of the storage layer's
:class:`~repro.storage.page.ColumnPage`: one arrival run of rows held
column-at-a-time (one sequence per attribute) so operators can evaluate
predicates, gather projections and extract hash keys without first
re-materialising Python tuples.  Unlike a storage page it carries no
byte accounting and no schema — it is a transient dataflow value that
lives for exactly one trip from a scan to the first stateful operator.

The batch is *dual-representation*.  A row-born batch (what a scan
produces) keeps the arrival's row list and materialises a column only
when a kernel actually touches it — a predicate over two attributes of
a sixteen-column table transposes two columns, not sixteen, and a
consumer that needs tuples back (every join and sink does) gets the
original list with no transpose at all.  A column-born batch (what a
projection produces) holds plain column lists and transposes once,
C-level, when tuples are demanded.  Either way ``columns[i]`` and
``rows()`` are memoised: repeated access is zero-copy.

The selection-vector convention (DESIGN.md section 10): a predicate
over a batch compiles to a *selection list* — the row indices that
survive, ascending.  :meth:`select` gathers those indices — one row
gather for a row-born batch, per-column for a column-born one — and a
full selection returns the batch itself, so the common nothing-pruned
case is zero-copy end-to-end.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

Row = Tuple


class _LazyColumns:
    """Column view over a row list, materialised per column on demand.

    Supports exactly what the compiled column kernels use: ``len``,
    indexing, and (via the sequence protocol) iteration.
    """

    __slots__ = ("_rows", "_cols")

    def __init__(self, rows: Sequence[Row], width: int):
        self._rows = rows
        self._cols: List[Optional[list]] = [None] * width

    def __len__(self) -> int:
        return len(self._cols)

    def __getitem__(self, index: int) -> list:
        column = self._cols[index]
        if column is None:
            column = [row[index] for row in self._rows]
            self._cols[index] = column
        return column


class ColumnBatch:
    """An immutable batch of rows in columnar layout."""

    __slots__ = ("columns", "n_rows", "_rows")

    def __init__(self, columns: Sequence, n_rows: int):
        self.columns = columns
        self.n_rows = n_rows
        self._rows: Optional[List[Row]] = None

    @classmethod
    def from_rows(cls, rows: Sequence[Row], width: int) -> "ColumnBatch":
        """Wrap a row batch without transposing it: columns materialise
        lazily, one attribute at a time, as kernels touch them.
        ``width`` fixes the column count, which an empty row list could
        not supply."""
        batch = cls.__new__(cls)
        batch.columns = _LazyColumns(rows, width)
        batch.n_rows = len(rows)
        batch._rows = rows if isinstance(rows, list) else list(rows)
        return batch

    def column(self, index: int):
        """One attribute's values, in row order (memoised)."""
        return self.columns[index]

    def rows(self) -> List[Row]:
        """The batch as tuples, in row order: the original list for a
        row-born batch (zero-copy), one C-level transpose (memoised)
        for a column-born one."""
        rows = self._rows
        if rows is None:
            if len(self.columns):
                rows = list(zip(*self.columns))
            else:
                rows = [()] * self.n_rows
            self._rows = rows
        return rows

    def select(self, selection: List[int]) -> "ColumnBatch":
        """Gather ``selection`` (ascending row indices) out of the
        batch; a full selection returns ``self`` unchanged."""
        if len(selection) == self.n_rows:
            return self
        if self._rows is not None:
            rows = self._rows
            return ColumnBatch.from_rows(
                [rows[i] for i in selection], len(self.columns)
            )
        return ColumnBatch(
            [[column[i] for i in selection] for column in self.columns],
            len(selection),
        )

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        return "ColumnBatch(%d rows x %d cols)" % (
            self.n_rows, len(self.columns),
        )
