"""Logical → physical plan translation.

Each logical node maps to one physical operator (keeping the logical
``node_id``, which is how the AIP layer addresses running operators).
A result sink is appended above the root.

Arrival models are resolved per scan: explicit overrides first, then
site-based remote models (a scan marked with a site is fetched over the
simulated network), then local streaming.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.errors import PlanError
from repro.exec.arrival import ArrivalModel
from repro.exec.context import ExecutionContext
from repro.exec.operators.base import Operator
from repro.exec.operators.distinct import PDistinct
from repro.exec.operators.filter import PFilter
from repro.exec.operators.groupby import PGroupBy
from repro.exec.operators.hashjoin import PHashJoin
from repro.exec.operators.merge import PMerge
from repro.exec.operators.output import POutput
from repro.exec.operators.project import PProject
from repro.exec.operators.scan import PScan
from repro.exec.operators.semijoin import PSemiJoin
from repro.plan.logical import (
    Distinct, Filter, GroupBy, Join, LogicalNode, Project, Scan, SemiJoin,
    fresh_node_id,
)

#: Resolves the arrival model for a scan node; return None to fall back
#: to the default resolution.  A resolver with a truthy ``accepts_site``
#: attribute is additionally called as ``resolver(node, site=name)``
#: once per partition when a scan is fanned out, so per-site links (and
#: pushed-down predicates) apply to every partition stream.
ArrivalResolver = Callable[[Scan], Optional[ArrivalModel]]


class PhysicalPlan:
    """The translated operator tree plus lookup structures."""

    def __init__(
        self,
        sink: POutput,
        scans: List[PScan],
        by_node_id: Dict[int, Operator],
        logical_root: LogicalNode,
    ):
        self.sink = sink
        self.scans = scans
        self.by_node_id = by_node_id
        self.logical_root = logical_root
        self._batchable: Optional[bool] = None

    def supports_batching(self) -> bool:
        """True when the engine may drive this plan's sources in
        arrival-boundary batches and stay observably identical to
        tuple-at-a-time execution: every operator must be batch-safe (no
        mid-stream state releases to reorder) and the dataflow must be a
        tree (a shared subexpression's parents must observe the exact
        per-row interleaving, so DAG plans — magic-sets rewrites — keep
        the per-tuple path)."""
        if self._batchable is None:
            self._batchable = all(
                op.batch_safe and len(op.parents) <= 1
                for op in self.sink.walk()
            )
        return self._batchable

    def operator_for(self, node_id: int) -> Operator:
        try:
            return self.by_node_id[node_id]
        except KeyError:
            raise PlanError("no physical operator for node #%d" % node_id)


def _scan_rows(ctx: ExecutionContext, schema, rows):
    """The row sequence a scan streams: the raw table list, or — under
    a memory governor — a :class:`~repro.storage.buffer.PagedRows`
    facade whose column pages the buffer pool may evict and reload."""
    if ctx.governor is None:
        return rows
    from repro.storage.buffer import PagedRows
    return PagedRows(ctx, schema, rows)


def default_arrival(ctx: ExecutionContext, node: Scan) -> ArrivalModel:
    """Remote scans pay link latency/bandwidth; local scans stream."""
    if node.site is not None:
        row_bytes = node.schema.row_byte_size()
        return ArrivalModel.remote(
            bandwidth=ctx.cost_model.network_bandwidth,
            row_bytes=row_bytes,
            latency=ctx.cost_model.network_latency,
        )
    return ArrivalModel.streaming()


def _partition_arrival(
    ctx: ExecutionContext,
    node: Scan,
    site: str,
    arrival_resolver: Optional[ArrivalResolver],
) -> ArrivalModel:
    """Arrival model for one partition of a fanned-out scan.

    Site-aware resolvers (the coordinator's) pace each partition on its
    own link and install pushed-down predicates.  A plain resolver
    keeps the documented "explicit overrides first" contract: it is
    called once per partition (arrival models carry mutable cursor
    state, so partitions must never share one) and its model, if any,
    wins.  With no resolver or no override, the context's network
    constants apply uniformly.  The logical scan's broadcast fan-out
    (non-co-partitioned join analysis) multiplies wire time either way.
    """
    arrival = None
    if arrival_resolver is not None:
        if getattr(arrival_resolver, "accepts_site", False):
            arrival = arrival_resolver(node, site=site)
        else:
            arrival = arrival_resolver(node)
    if arrival is None:
        arrival = ArrivalModel.remote(
            bandwidth=ctx.cost_model.network_bandwidth,
            row_bytes=node.schema.row_byte_size(),
            latency=ctx.cost_model.network_latency,
        )
    arrival.fanout = max(arrival.fanout, node.broadcast_fanout)
    return arrival


def _build_partitioned_scan(
    ctx: ExecutionContext,
    node: Scan,
    arrival_resolver: Optional[ArrivalResolver],
    scans: List[PScan],
    by_node_id: Dict[int, Operator],
) -> PMerge:
    """Fan a partitioned scan out into per-partition scans + a merge."""
    spec = node.partition
    table = ctx.catalog.table(node.table_name)
    # Partitioning keys address the base schema (pre-rename).
    key_index = table.schema.index_of(spec.key)
    parts = table.partition_rows(spec, key_index)
    merge = PMerge(
        ctx, node.node_id, node.schema, spec.n_partitions,
        table_name=node.table_name,
    )
    for index, (site, rows) in enumerate(zip(spec.sites, parts)):
        scan = PScan(
            ctx, fresh_node_id(), node.schema,
            _scan_rows(ctx, node.schema, rows),
            arrival=_partition_arrival(ctx, node, site, arrival_resolver),
            table_name=node.table_name, site=site, partition_index=index,
        )
        # Partition scans resolve by their own (fresh) ids — the AIP
        # layer addresses each partition individually when shipping —
        # and share the logical scan for estimates and depth lookups.
        scan.logical = node
        by_node_id[scan.op_id] = scan
        scans.append(scan)
        merge.connect_child(scan, index)
    if ctx.tracer is not None:
        ctx.tracer.instant(
            "partition.fanout", "partition", ctx.metrics.clock_ticks,
            {
                "table": node.table_name,
                "key": spec.key,
                "partitions": spec.n_partitions,
            },
        )
    return merge


def translate(
    root: LogicalNode,
    ctx: ExecutionContext,
    arrival_resolver: Optional[ArrivalResolver] = None,
) -> PhysicalPlan:
    """Build the physical operator tree for ``root``."""
    scans: List[PScan] = []
    by_node_id: Dict[int, Operator] = {}

    def build(node: LogicalNode) -> Operator:
        # Shared subexpressions (DAG plans) translate to one physical
        # operator with several parents.
        existing = by_node_id.get(node.node_id)
        if existing is not None:
            return existing
        if isinstance(node, Scan):
            if node.partition is not None:
                op = _build_partitioned_scan(
                    ctx, node, arrival_resolver, scans, by_node_id
                )
            else:
                table = ctx.catalog.table(node.table_name)
                arrival = None
                if arrival_resolver is not None:
                    arrival = arrival_resolver(node)
                if arrival is None:
                    arrival = default_arrival(ctx, node)
                op = PScan(
                    ctx, node.node_id, node.schema,
                    _scan_rows(ctx, node.schema, table.rows),
                    arrival=arrival, table_name=node.table_name,
                    site=node.site,
                )
                scans.append(op)
        elif isinstance(node, Filter):
            child = build(node.child)
            op = PFilter(ctx, node.node_id, node.schema, node.predicate)
            op.connect_child(child, 0)
        elif isinstance(node, Project):
            child = build(node.child)
            op = PProject(
                ctx, node.node_id, node.child.schema, node.schema, node.outputs
            )
            op.connect_child(child, 0)
        elif isinstance(node, Join):
            left = build(node.left)
            right = build(node.right)
            op = PHashJoin(
                ctx, node.node_id,
                node.left.schema, node.right.schema,
                list(node.left_keys), list(node.right_keys),
                residual=node.residual,
            )
            op.connect_child(left, 0)
            op.connect_child(right, 1)
        elif isinstance(node, SemiJoin):
            probe = build(node.probe)
            source = build(node.source)
            op = PSemiJoin(
                ctx, node.node_id,
                node.probe.schema, node.source.schema,
                list(node.probe_keys), list(node.source_keys),
            )
            op.connect_child(probe, 0)
            op.connect_child(source, 1)
        elif isinstance(node, GroupBy):
            child = build(node.child)
            op = PGroupBy(
                ctx, node.node_id, node.child.schema, node.schema,
                list(node.keys), list(node.aggregates),
            )
            op.connect_child(child, 0)
        elif isinstance(node, Distinct):
            child = build(node.child)
            op = PDistinct(ctx, node.node_id, node.schema)
            op.connect_child(child, 0)
        else:
            raise PlanError("cannot translate node %r" % node)
        op.logical = node  # back-reference used by the AIP layer
        by_node_id[node.node_id] = op
        return op

    top = build(root)
    sink = POutput(ctx, fresh_node_id(), top.out_schema)
    sink.connect_child(top, 0)
    sink.logical = None
    return PhysicalPlan(sink, scans, by_node_id, root)
