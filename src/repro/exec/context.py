"""Execution context and the strategy hook interface.

The context bundles everything one query execution needs: the catalog,
the cost model, the metric store, engine options, and the *strategy* —
the pluggable object through which sideways information passing is
implemented.  The baseline strategy does nothing; the Feed-Forward and
Cost-Based AIP strategies (``repro.aip``) and the magic-sets baseline
use these hooks to observe execution and inject semijoin filters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.data.catalog import Catalog
from repro.exec.costs import CostModel
from repro.exec.metrics import Metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec.operators.base import Operator

Row = Tuple


class ExecutionStrategy:
    """Observer/controller hooks invoked by the engine and operators.

    The default implementation is the paper's **Baseline**: normal push
    processing with no information passing.  Subclasses override the
    hooks they need; all hooks are optional.
    """

    def attach(self, ctx: "ExecutionContext", plan) -> None:
        """Called once after physical translation, before execution.

        ``plan`` is the :class:`~repro.exec.translate.PhysicalPlan`,
        giving access to every operator and scan in the query.
        """

    def on_query_start(self) -> None:
        """Called when the engine starts consuming sources."""

    def after_tuple(self, op: "Operator", input_idx: int, row: Row) -> None:
        """Called after a stateful operator accepted and processed a
        tuple (i.e. the tuple passed all injected filters)."""

    def on_input_finished(self, op: "Operator", input_idx: int) -> None:
        """Called when one input of a stateful operator has completed;
        the operator's buffered state for that input is now the full
        result of the corresponding subexpression."""

    def on_query_end(self) -> None:
        """Called after all sources and operators have finished."""

    def describe(self) -> str:
        return "baseline"


class ExecutionContext:
    """Shared, mutable state for one query execution."""

    def __init__(
        self,
        catalog: Catalog,
        cost_model: Optional[CostModel] = None,
        strategy: Optional[ExecutionStrategy] = None,
        short_circuit: bool = True,
        trace: bool = False,
    ):
        self.catalog = catalog
        self.cost_model = cost_model or CostModel()
        self.metrics = Metrics()
        self.strategy = strategy or ExecutionStrategy()
        #: Pipelined-hash-join optimisation from Section VI-A: when one
        #: join input completes, the other side stops buffering.  The
        #: Q2C magic-sets anomaly depends on this; ablation benches turn
        #: it off.
        self.short_circuit = short_circuit
        self.trace = trace
        self._trace_log = []
        #: Observers of AIP set publication, ``fn(op, port, aip_set)``.
        #: The service layer's cross-query AIP cache subscribes here to
        #: harvest completed sets for reuse in later queries; strategies
        #: fire it whenever they publish or build a completed set.
        self.aip_publish_hooks = []

    def notify_aip_publish(self, op, port: int, aip_set) -> None:
        """Tell subscribers a completed AIP set was published for the
        state at ``(op, port)``."""
        for hook in self.aip_publish_hooks:
            hook(op, port, aip_set)

    def charge(self, seconds: float) -> None:
        self.metrics.charge(seconds)

    def log(self, message: str) -> None:
        if self.trace:
            self._trace_log.append("[%10.6f] %s" % (self.metrics.clock, message))

    @property
    def trace_log(self):
        return list(self._trace_log)
