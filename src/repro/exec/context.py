"""Execution context and the strategy hook interface.

The context bundles everything one query execution needs: the catalog,
the cost model, the metric store, engine options, and the *strategy* —
the pluggable object through which sideways information passing is
implemented.  The baseline strategy does nothing; the Feed-Forward and
Cost-Based AIP strategies (``repro.aip``) and the magic-sets baseline
use these hooks to observe execution and inject semijoin filters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.data.catalog import Catalog
from repro.exec.costs import CostModel
from repro.exec.metrics import Metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec.operators.base import Operator

Row = Tuple


class ExecutionStrategy:
    """Observer/controller hooks invoked by the engine and operators.

    The default implementation is the paper's **Baseline**: normal push
    processing with no information passing.  Subclasses override the
    hooks they need; all hooks are optional.
    """

    #: Whether the engine may drive this strategy's plans on the
    #: batch-vectorized path.  Strategies whose mid-stream decisions
    #: depend on per-row cadence (e.g. Feed-Forward's memory-budget
    #: enforcement every N tuples) must report False so execution stays
    #: observably identical to the tuple path.
    batch_safe = True

    def attach(self, ctx: "ExecutionContext", plan) -> None:
        """Called once after physical translation, before execution.

        ``plan`` is the :class:`~repro.exec.translate.PhysicalPlan`,
        giving access to every operator and scan in the query.
        """

    def on_query_start(self) -> None:
        """Called when the engine starts consuming sources."""

    def after_tuple(self, op: "Operator", input_idx: int, row: Row) -> None:
        """Called after a stateful operator accepted and processed a
        tuple (i.e. the tuple passed all injected filters)."""

    def after_tuples(self, op: "Operator", input_idx: int, rows) -> None:
        """Batch form of :meth:`after_tuple`, invoked once per accepted
        batch on the vectorized path.  The default delegates to
        :meth:`after_tuple` row by row so strategies only overriding the
        per-tuple hook keep working; strategies with per-tuple charges
        should override this with a bulk implementation."""
        if type(self).after_tuple is ExecutionStrategy.after_tuple:
            return  # per-tuple hook not overridden: nothing to do
        for row in rows:
            self.after_tuple(op, input_idx, row)

    def after_tuples_page(self, op: "Operator", input_idx: int, page) -> None:
        """Page form of :meth:`after_tuples`, invoked once per accepted
        :class:`~repro.exec.pages.ColumnBatch` on the page-native path.
        The default re-materialises the page's rows and delegates, so
        row-oriented strategies keep working; strategies that only need
        key columns (Feed-Forward's working sets) override this with a
        zero-copy column read."""
        cls = type(self)
        if (
            cls.after_tuple is ExecutionStrategy.after_tuple
            and cls.after_tuples is ExecutionStrategy.after_tuples
        ):
            return  # neither row hook overridden: nothing to do
        self.after_tuples(op, input_idx, page.rows())

    def on_input_finished(self, op: "Operator", input_idx: int) -> None:
        """Called when one input of a stateful operator has completed;
        the operator's buffered state for that input is now the full
        result of the corresponding subexpression."""

    def on_query_end(self) -> None:
        """Called after all sources and operators have finished."""

    def describe(self) -> str:
        return "baseline"


class ExecutionContext:
    """Shared, mutable state for one query execution."""

    def __init__(
        self,
        catalog: Catalog,
        cost_model: Optional[CostModel] = None,
        strategy: Optional[ExecutionStrategy] = None,
        short_circuit: bool = True,
        trace: bool = False,
        batch_execution: bool = True,
        page_execution: bool = True,
        governor=None,
        pool=None,
    ):
        self.catalog = catalog
        self.cost_model = cost_model or CostModel()
        self.metrics = Metrics()
        self.strategy = strategy or ExecutionStrategy()
        #: The run's :class:`~repro.storage.governor.MemoryGovernor`,
        #: or None for un-governed execution.  When present, scans
        #: stream governor-managed column pages and stateful operators
        #: spill hash partitions under budget pressure; when absent the
        #: engine is bit-identical to the pre-storage-layer code.
        self.governor = governor
        #: Drive sources in arrival-boundary batches (the vectorized
        #: dataflow path) where the plan supports it.  Observably
        #: identical to tuple-at-a-time execution — same rows, clock,
        #: peak state and counters — so it is on by default; the
        #: equivalence suite runs both paths and compares.
        self.batch_execution = batch_execution
        #: Carry batched arrival runs as :class:`ColumnBatch` pages
        #: (column-at-a-time kernels) instead of row lists.  Gated on
        #: top of ``batch_execution`` — a plan ineligible for batching
        #: never pages — and observably identical to both other paths;
        #: the equivalence suite pins all three against each other.
        self.page_execution = page_execution
        #: Pipelined-hash-join optimisation from Section VI-A: when one
        #: join input completes, the other side stops buffering.  The
        #: Q2C magic-sets anomaly depends on this; ablation benches turn
        #: it off.
        self.short_circuit = short_circuit
        self.trace = trace
        self._trace_log = []
        #: Structured trace collector (:class:`repro.obs.trace.Tracer`)
        #: or None.  Every hook site in the engine, operators, AIP
        #: layer, storage governor and service guards with ``is None``,
        #: so disabled tracing costs one attribute load and execution
        #: stays bit-identical to an uninstrumented build.
        self.tracer = None
        #: The distributed run's :class:`NetworkModel`, attached by the
        #: coordinator/service so per-site link parameters (not just the
        #: cost model's uniform constants) drive shipped-filter
        #: staleness and transfer accounting.  None for local runs.
        self.network = None
        #: The session's :class:`~repro.parallel.pool.WorkerPool`, or
        #: None for serial execution.  When present, the engine
        #: prefetches eligible partitioned-scan fragments onto the pool
        #: before driving the plan (see ``repro.parallel.executor``);
        #: rows and counters stay bit-identical to serial execution.
        self.pool = pool
        #: Observers of AIP set publication, ``fn(op, port, aip_set)``.
        #: The service layer's cross-query AIP cache subscribes here to
        #: harvest completed sets for reuse in later queries; strategies
        #: fire it whenever they publish or build a completed set.
        self.aip_publish_hooks = []

    @property
    def parallelism(self):
        """Worker count of the attached pool (None = serial)."""
        pool = self.pool
        return pool.n_workers if pool is not None else None

    def __getstate__(self):
        # Contexts travel inside pickled operators/plans shipped to
        # worker processes.  The pool (OS pipes, live processes) and the
        # publish hooks (service-side closures) never cross the process
        # boundary; workers run serial, un-hooked executions.
        state = dict(self.__dict__)
        state["pool"] = None
        state["aip_publish_hooks"] = []
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)

    def notify_aip_publish(self, op, port: int, aip_set) -> None:
        """Tell subscribers a completed AIP set was published for the
        state at ``(op, port)``."""
        if self.tracer is not None:
            self.tracer.instant(
                "aip.publish", "aip", self.metrics.clock_ticks,
                {
                    "op": op.name, "port": port, "attr": aip_set.attr,
                    "bytes": aip_set.byte_size(),
                    "complete": aip_set.complete,
                },
            )
        for hook in self.aip_publish_hooks:
            hook(op, port, aip_set)

    def charge(self, seconds: float) -> None:
        self.metrics.charge(seconds)

    def charge_events(self, count: int, seconds_each: float) -> None:
        """Charge ``count`` per-event costs in one call (tick-exact
        equivalent of ``count`` individual :meth:`charge` calls)."""
        self.metrics.charge_events(count, seconds_each)

    def charge_op(self, owner_id: int, seconds: float) -> None:
        """:meth:`charge` attributed to one operator for EXPLAIN
        ANALYZE; clock-identical to the unattributed form."""
        self.metrics.charge_op(owner_id, seconds)

    def charge_events_op(
        self, owner_id: int, count: int, seconds_each: float
    ) -> None:
        """:meth:`charge_events` attributed to one operator."""
        self.metrics.charge_events_op(owner_id, count, seconds_each)

    def log(self, message: str) -> None:
        if self.trace:
            self._trace_log.append("[%10.6f] %s" % (self.metrics.clock, message))

    @property
    def trace_log(self):
        return list(self._trace_log)
