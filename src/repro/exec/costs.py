"""Cost constants shared by the virtual clock and the optimizer.

The engine charges these per-event costs (virtual seconds) to its clock
as it processes tuples; the cost-based AIP manager uses the *same*
constants to predict the cost of future work, mirroring how Tukwila's
optimizer cost modeler can be re-invoked during execution (Section V).

Absolute values are arbitrary (we are not matching the paper's wall
clock); what matters is that they are internally consistent so relative
comparisons between strategies — who wins, by what factor — hold.
"""

from __future__ import annotations


class CostModel:
    """Per-event virtual-time charges and network parameters."""

    __slots__ = (
        "tuple_base",
        "predicate_eval",
        "hash_insert",
        "hash_probe",
        "output_build",
        "agg_update",
        "semijoin_probe",
        "aip_insert",
        "aip_build_per_row",
        "manager_invocation",
        "scan_read",
        "spill_page_io",
        "spill_byte_io",
        "network_bandwidth",
        "network_latency",
    )

    def __init__(
        self,
        tuple_base: float = 1.0e-6,
        predicate_eval: float = 3.0e-7,
        hash_insert: float = 1.2e-6,
        hash_probe: float = 8.0e-7,
        output_build: float = 5.0e-7,
        agg_update: float = 1.0e-6,
        semijoin_probe: float = 4.0e-7,
        aip_insert: float = 3.0e-7,
        aip_build_per_row: float = 3.0e-7,
        manager_invocation: float = 2.0e-4,
        scan_read: float = 5.0e-7,
        spill_page_io: float = 1.0e-4,
        spill_byte_io: float = 2.0e-9,
        network_bandwidth: float = 100e6 / 8,
        network_latency: float = 1.0e-3,
    ):
        self.tuple_base = tuple_base              # any operator touching a tuple
        self.predicate_eval = predicate_eval      # one predicate evaluation
        self.hash_insert = hash_insert            # insert into a hash table
        self.hash_probe = hash_probe              # probe a hash table
        self.output_build = output_build          # materialise one output tuple
        self.agg_update = agg_update              # accumulate one value
        self.semijoin_probe = semijoin_probe      # probe one AIP filter
        self.aip_insert = aip_insert              # feed-forward working-set add
        self.aip_build_per_row = aip_build_per_row  # cost-based state scan
        self.manager_invocation = manager_invocation  # ESTIMATEBENEFIT run
        self.scan_read = scan_read                # read/parse one source tuple
        # Storage-layer spill I/O under a finite memory budget: one
        # fixed seek/syscall charge per page moved, plus a per-byte
        # streaming rate (~500 MB/s).  Unused when no governor runs.
        self.spill_page_io = spill_page_io
        self.spill_byte_io = spill_byte_io
        # Paper Section VI: the distributed join experiment fetches
        # PARTSUPP "across a 100Mb Ethernet"; filter-shipping cost
        # estimates assume 10 Mbps.  Bandwidth is bytes/second.
        self.network_bandwidth = network_bandwidth
        self.network_latency = network_latency

    def transfer_time(self, n_bytes: int) -> float:
        """Time to push ``n_bytes`` through the simulated link."""
        return n_bytes / self.network_bandwidth

    def copy(self, **overrides) -> "CostModel":
        """A copy with selected constants replaced (used by ablations)."""
        kwargs = {name: getattr(self, name) for name in self.__slots__}
        kwargs.update(overrides)
        return CostModel(**kwargs)
