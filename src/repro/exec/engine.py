"""The push engine: a deterministic virtual-time event loop.

The paper's Tukwila engine is heavily multithreaded (three threads per
pipelined hash join).  We substitute a deterministic simulation (see
DESIGN.md): each source's tuples carry arrival times from its
:class:`~repro.exec.arrival.ArrivalModel`; the engine repeatedly takes
the earliest-available tuple, advances the clock to its arrival if the
CPU is idle, and pushes it synchronously through the operator tree,
charging per-event CPU costs to the same clock.

This reproduces the two regimes the experiments rely on: with fast
sources the clock is CPU-work dominated (pruning work shows up directly
as shorter running time), and with delayed sources the clock is
arrival dominated (running-time gaps shrink, state savings persist).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.common.errors import ExecutionError
from repro.data.schema import Schema
from repro.exec.context import ExecutionContext
from repro.exec.metrics import Metrics
from repro.exec.operators.scan import PScan
from repro.exec.translate import ArrivalResolver, PhysicalPlan, translate
from repro.plan.logical import LogicalNode

Row = Tuple


class QueryResult:
    """Rows plus the metrics collected while producing them."""

    def __init__(self, rows: List[Row], schema: Schema, metrics: Metrics):
        self.rows = rows
        self.schema = schema
        self.metrics = metrics

    def sorted_rows(self) -> List[Row]:
        """Rows in a canonical order, for strategy-equivalence checks."""
        return sorted(self.rows, key=repr)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return "QueryResult(%d rows, t=%.6fs)" % (
            len(self.rows), self.metrics.clock,
        )


#: Public alias: ``repro.QueryResult`` now names the transport-neutral
#: client result (repro.service.result); the engine-internal shape is
#: exported as ``repro.EngineResult``.
EngineResult = QueryResult


def plan_batchable(ctx: ExecutionContext, strategy, physical) -> bool:
    """Whether one translated plan may be driven in batches: the
    context opts in, the plan's strategy has no per-row-cadence
    decisions, and the plan's shape supports it.  Shared by the
    single-query and concurrent loops so eligibility cannot fork."""
    return (
        ctx.batch_execution
        and (strategy is None or strategy.batch_safe)
        and physical.supports_batching()
    )


def drive_scan(
    scan: PScan, seq: int, heap, metrics, batching: bool,
    paged: bool = False,
):
    """Deliver a popped scan's pending work and return its next arrival
    time (None when exhausted).

    Shared by the single-query and concurrent engine loops — the
    boundary tie-break (``b_seq < seq`` means the other source wins an
    equal arrival time, exactly as the heap would order the entries) is
    the subtlest invariant of batch-mode equivalence and must not fork.
    """
    if batching:
        if heap:
            b_when, b_seq, _ = heap[0]
            return scan.emit_pending_batch(
                metrics.clock_ticks, b_when, b_seq < seq, paged
            )
        return scan.emit_pending_batch(metrics.clock_ticks, paged=paged)
    scan.emit_pending()
    return scan.advance()


class Engine:
    """Runs one translated physical plan to completion."""

    def __init__(self, ctx: ExecutionContext):
        self.ctx = ctx

    def run(self, plan: PhysicalPlan) -> QueryResult:
        sink = plan.sink
        scans = plan.scans
        if not scans:
            raise ExecutionError("plan has no sources")

        self.ctx.strategy.on_query_start()

        heap: List[Tuple[float, int, PScan]] = []
        for seq, scan in enumerate(scans):
            when = scan.prime()
            if when is None:
                scan.finish()
            else:
                heapq.heappush(heap, (when, seq, scan))

        metrics = self.ctx.metrics
        tracer = self.ctx.tracer
        query_start = metrics.clock_ticks if tracer is not None else 0
        batching = plan_batchable(self.ctx, self.ctx.strategy, plan)
        # Page-native execution layers on the batch gate: a plan
        # ineligible for batching never pages.
        paged = batching and self.ctx.page_execution
        while heap:
            when, seq, scan = heapq.heappop(heap)
            metrics.wait_until(when)
            if tracer is None:
                nxt = drive_scan(scan, seq, heap, metrics, batching, paged)
            else:
                drive_start = metrics.clock_ticks
                nxt = drive_scan(scan, seq, heap, metrics, batching, paged)
                tracer.complete(
                    "drive:%s" % scan.name, "engine", drive_start,
                    metrics.clock_ticks - drive_start,
                )
            if nxt is None:
                scan.finish()
            else:
                heapq.heappush(heap, (nxt, seq, scan))

        self.ctx.strategy.on_query_end()
        if tracer is not None:
            tracer.complete(
                "query", "engine", query_start,
                metrics.clock_ticks - query_start,
                {"rows": len(sink.rows), "batched": batching, "paged": paged},
            )

        if not sink.finished:
            raise ExecutionError(
                "all sources drained but the sink never finished; "
                "an operator failed to propagate end-of-stream"
            )
        metrics.network_bytes += sum(
            scan.arrival.bytes_transferred
            for scan in scans
            if scan.arrival.bandwidth is not None
        )
        return QueryResult(sink.rows, sink.out_schema, metrics)


def execute_plan(
    root: LogicalNode,
    ctx: ExecutionContext,
    arrival_resolver: Optional[ArrivalResolver] = None,
) -> QueryResult:
    """Translate ``root``, attach the context's strategy, and run it.

    With a worker pool on the context, eligible partition-scan
    fragments are first evaluated on the pool in real wall-clock
    parallel and replayed (see ``repro.parallel.executor``); the fold
    runs after the engine so counter totals match serial execution
    without mid-run strategy code ever observing pre-seeded counters.
    """
    plan = translate(root, ctx, arrival_resolver)
    ctx.strategy.attach(ctx, plan)
    fold = None
    if ctx.pool is not None:
        from repro.parallel.executor import prefetch_partition_fragments
        fold = prefetch_partition_fragments(plan, ctx)
    result = Engine(ctx).run(plan)
    if fold is not None:
        fold()
    return result
