"""Arrival models: when source tuples become available to the engine.

The paper's experiments distinguish three source regimes:

* **fast local streaming** (Section VI-A): data streamed from disk, no
  indices — modelled by a small per-tuple read cost;
* **delayed / rate-limited** (Section VI-B): "PARTSUPP was delayed by
  100msec and rate-limited by injecting a 5msec delay every 1000
  tuples" — modelled by ``initial_delay`` and ``batch_delay`` every
  ``batch_size`` tuples;
* **remote fetch** (Section VI-C): the relation is fetched across a
  simulated Ethernet — modelled by per-row transfer time at the link
  bandwidth, with *source-side filters*: once an AIP filter has been
  shipped to the remote site, rows it rejects are dropped **before**
  they consume link capacity, which is exactly the adaptive Bloomjoin
  benefit the distributed experiments measure.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.exec.metrics import seconds_to_ticks

Row = Tuple


class SourceFilter:
    """A summary filter installed at a (possibly remote) source.

    ``activation_time`` is the virtual time at which the filter arrived
    at the source; rows leaving the source before that moment are not
    affected.
    """

    __slots__ = ("key_index", "summary", "activation_time", "pruned")

    def __init__(self, key_index: int, summary, activation_time: float):
        self.key_index = key_index
        self.summary = summary
        self.activation_time = activation_time
        self.pruned = 0

    def passes(self, row: Row) -> bool:
        return row[self.key_index] in self.summary


class PredicateSourceFilter(SourceFilter):
    """A pushed-down *query predicate* evaluated at the source.

    Unlike a shipped AIP summary this is part of the query plan itself
    (Tukwila "pushes portions of the query from the 'master' query node
    to the remote source", Section V-A), so it is active from the start
    of execution.
    """

    __slots__ = ("predicate",)

    def __init__(self, predicate: Callable[[Row], bool]):
        super().__init__(0, None, activation_time=0.0)
        self.predicate = predicate

    def passes(self, row: Row) -> bool:
        return bool(self.predicate(row))


class ArrivalModel:
    """Computes availability times for a source's tuples.

    The model is evaluated lazily so that filters installed mid-flight
    (distributed AIP) affect tuples not yet transmitted.
    """

    def __init__(
        self,
        initial_delay: float = 0.0,
        per_tuple: float = 0.0,
        batch_size: int = 0,
        batch_delay: float = 0.0,
        bandwidth: Optional[float] = None,
        row_bytes: int = 0,
        source_read: float = 0.0,
        fanout: int = 1,
    ):
        if batch_size < 0 or (batch_size > 0 and batch_delay < 0):
            raise ValueError("invalid batching parameters")
        if fanout < 1:
            raise ValueError("fanout must be at least 1")
        self.initial_delay = initial_delay
        self.per_tuple = per_tuple
        self.batch_size = batch_size
        self.batch_delay = batch_delay
        self.bandwidth = bandwidth
        self.row_bytes = row_bytes
        self.source_read = source_read
        #: Wire fan-out: how many partition destinations each accepted
        #: row must reach.  A broadcast join side pays its transfer once
        #: per destination partition on its (serialising) uplink; rows a
        #: shipped AIP filter rejects skip the whole fan-out — exactly
        #: the multiplied saving the distributed benefit model counts.
        self.fanout = fanout
        self._emitted = 0
        self._link_time = initial_delay
        self.filters: List[SourceFilter] = []
        self.rows_transferred = 0
        self.rows_filtered_at_source = 0

    @classmethod
    def immediate(cls) -> "ArrivalModel":
        """Everything available at time zero (in-memory source)."""
        return cls()

    @classmethod
    def streaming(cls, per_tuple: float = 5.0e-7) -> "ArrivalModel":
        """Local disk streaming at a fixed per-tuple read rate."""
        return cls(per_tuple=per_tuple)

    @classmethod
    def delayed(
        cls,
        initial_delay: float = 0.100,
        batch_size: int = 1000,
        batch_delay: float = 0.005,
        per_tuple: float = 5.0e-7,
    ) -> "ArrivalModel":
        """The paper's Section VI-B delay model."""
        return cls(
            initial_delay=initial_delay,
            per_tuple=per_tuple,
            batch_size=batch_size,
            batch_delay=batch_delay,
        )

    @classmethod
    def remote(
        cls,
        bandwidth: float,
        row_bytes: int,
        latency: float = 1.0e-3,
        source_read: float = 2.0e-7,
    ) -> "ArrivalModel":
        """Rows shipped over a link of ``bandwidth`` bytes/second."""
        return cls(
            initial_delay=latency,
            bandwidth=bandwidth,
            row_bytes=row_bytes,
            source_read=source_read,
        )

    # -- filters -------------------------------------------------------

    def install_filter(self, key_index: int, summary, activation_time: float) -> SourceFilter:
        """Install a source-side filter (a shipped AIP set)."""
        f = SourceFilter(key_index, summary, activation_time)
        self.filters.append(f)
        return f

    def install_predicate(self, predicate) -> "PredicateSourceFilter":
        """Install a pushed-down query predicate, active from t=0."""
        f = PredicateSourceFilter(predicate)
        self.filters.append(f)
        return f

    def _passes_active_filters(self, row: Row) -> bool:
        for f in self.filters:
            if f.activation_time <= self._link_time and not f.passes(row):
                f.pruned += 1
                return False
        return True

    # -- arrival computation -------------------------------------------

    def next_arrival(self, rows, start: int) -> Optional[Tuple[int, float, Row]]:
        """Find the next row at or after index ``start`` that reaches
        the consumer, returning ``(next_index, arrival_time, row)``.

        Rows rejected by active source-side filters cost source read
        time but no transfer time; accepted rows pay per-tuple cost,
        batch delays and (for remote links) transfer time.
        """
        i = start
        n = len(rows)
        while i < n:
            row = rows[i]
            i += 1
            # A batch delay applies between batches: after each full
            # batch of ``batch_size`` tuples, the next tuple is delayed.
            if (
                self.batch_size
                and self._emitted
                and self._emitted % self.batch_size == 0
            ):
                self._link_time += self.batch_delay
            self._emitted += 1
            self._link_time += self.per_tuple + self.source_read
            if not self._passes_active_filters(row):
                self.rows_filtered_at_source += 1
                continue
            if self.bandwidth is not None:
                self._link_time += (self.row_bytes * self.fanout) / self.bandwidth
            self.rows_transferred += 1
            return (i, self._link_time, row)
        return None

    def next_batch(
        self,
        rows,
        start: int,
        now_ticks: int,
        boundary_when: Optional[float] = None,
        boundary_first: bool = False,
    ) -> Tuple[int, List[Row], Optional[Tuple[float, Row]]]:
        """Consume every row from index ``start`` that has **already
        arrived** (arrival time, in clock ticks, at or before
        ``now_ticks``) and precedes the next cross-scan arrival
        boundary, returning ``(next_index, batch_rows, pending)``.

        ``boundary_when`` is the arrival time of the earliest event on
        any *other* source; ``boundary_first`` breaks ties the way the
        engine's heap does (True when the other source wins an equal
        arrival time).  ``pending`` is the first ``(when, row)`` beyond
        the batch — it has been computed but not delivered, exactly like
        the tuple path's one-ahead pending tuple — or None when the
        source is exhausted.

        Restricting the batch to rows at or before ``now_ticks`` keeps
        the virtual clock bit-identical to tuple-at-a-time execution:
        every ``wait_until`` the tuple path would issue for these rows
        is a no-op there too, so bulk CPU charges commute with them.
        """
        if (
            self.bandwidth is None
            and not self.filters
            and not self.batch_size
            and self.per_tuple == 0.0
            and self.source_read == 0.0
            and type(rows) is list
            and start < len(rows)
        ):
            # Trivial source (immediate arrival, nothing installed):
            # every remaining row shares one arrival time, so if the
            # first clears the boundary the whole tail does — take it
            # without the per-row loop.
            when = self._link_time
            if seconds_to_ticks(when) <= now_ticks and (
                boundary_when is None
                or when < boundary_when
                or (when == boundary_when and not boundary_first)
            ):
                n = len(rows) - start
                self._emitted += n
                self.rows_transferred += n
                return len(rows), rows[start:], None
        batch: List[Row] = []
        cursor = start
        while True:
            found = self.next_arrival(rows, cursor)
            if found is None:
                return cursor, batch, None
            cursor, when, row = found
            if seconds_to_ticks(when) <= now_ticks and (
                boundary_when is None
                or when < boundary_when
                or (when == boundary_when and not boundary_first)
            ):
                batch.append(row)
                continue
            return cursor, batch, (when, row)

    @property
    def bytes_transferred(self) -> int:
        return self.rows_transferred * self.row_bytes * self.fanout
