"""Execution metrics.

Tracks exactly the quantities the paper's figures report — running time
(our virtual clock) and intermediate state (peak buffered bytes across
all stateful operators and AIP sets) — plus the cardinality counters
Tukwila exposes to its optimizer ("All query operators are supplemented
with cardinality counters", Section V-A) and AIP-specific counters used
in the experiment write-ups.

Time is accounted in integer **ticks** (one tick = 1 picosecond) rather
than accumulated floats.  Two execution paths that perform the same
multiset of per-event charges in different orders — the tuple-at-a-time
engine loop and the batch-vectorized one — must report bit-identical
clocks, and float summation is grouping-sensitive.  Integer ticks make
``charge_events(n, c)`` exactly equal to ``n`` repetitions of
``charge(c)``: both add ``n * round(c / TICK)`` ticks.
"""

from __future__ import annotations

from typing import Dict

#: One clock tick in seconds.  All charges and arrival times are
#: quantised to this resolution; per-event costs in the default
#: :class:`~repro.exec.costs.CostModel` are whole multiples of it.
TICK = 1e-12

#: Ticks per second (exactly representable as a float: 10**12 < 2**53).
_TICKS_PER_SECOND = 1e12


def seconds_to_ticks(seconds: float) -> int:
    """Quantise a duration (or absolute virtual time) to clock ticks."""
    return round(seconds * _TICKS_PER_SECOND)


class OperatorCounters:
    """Per-operator tuple counters."""

    __slots__ = ("tuples_in", "tuples_out", "tuples_pruned")

    def __init__(self):
        self.tuples_in = 0
        self.tuples_out = 0
        self.tuples_pruned = 0


class Metrics:
    """Mutable metric store owned by one query execution."""

    def __init__(self):
        self._clock_ticks: int = 0
        self._idle_ticks: int = 0
        self._cpu_ticks: int = 0
        self._state_bytes: Dict[int, int] = {}
        self._total_state_bytes: int = 0
        self.peak_state_bytes: int = 0
        self.operators: Dict[int, OperatorCounters] = {}
        #: Per-operator attribution (EXPLAIN ANALYZE).  Off by default:
        #: the flag is one truthiness test on the charge path and the
        #: dicts stay empty, so the clock arithmetic — and therefore
        #: batch-path bit-identity — is unchanged either way.
        self.attribute_ops: bool = False
        self.op_ticks: Dict[int, int] = {}
        self.op_state_peaks: Dict[int, int] = {}
        self.aip_sets_created: int = 0
        self.aip_sets_declined: int = 0
        self.aip_bytes_shipped: int = 0
        self.network_bytes: int = 0
        self.result_rows: int = 0
        #: Storage-layer spill traffic (page writes *and* re-reads)
        #: performed under a finite memory budget; zero when no
        #: :class:`~repro.storage.governor.MemoryGovernor` is attached.
        self.spill_bytes: int = 0
        self.spill_events: int = 0
        #: Page-kernel activity: column batches processed by operator
        #: page kernels, and the rows those kernels selected (survived
        #: filters/predicates) out of them.  Zero on the tuple and
        #: row-batch paths — deliberately *not* part of the equivalence
        #: contract, which compares clocks, state and tuple counters.
        self.pages_pushed: int = 0
        self.rows_selected: int = 0

    # -- time ----------------------------------------------------------

    @property
    def clock(self) -> float:
        return self._clock_ticks / _TICKS_PER_SECOND

    @property
    def cpu_time(self) -> float:
        return self._cpu_ticks / _TICKS_PER_SECOND

    @property
    def idle_time(self) -> float:
        return self._idle_ticks / _TICKS_PER_SECOND

    @property
    def clock_ticks(self) -> int:
        """The clock in raw ticks (used by the batch path to decide
        which pending arrivals count as "already arrived")."""
        return self._clock_ticks

    def charge(self, seconds: float) -> None:
        """Advance the clock by CPU work."""
        ticks = round(seconds * _TICKS_PER_SECOND)
        self._clock_ticks += ticks
        self._cpu_ticks += ticks

    def charge_events(self, count: int, seconds_each: float) -> None:
        """Advance the clock by ``count`` events of ``seconds_each``.

        Exactly equivalent — to the tick — to calling
        :meth:`charge` ``count`` times, which is what makes bulk
        charging on the batch path observably identical to per-tuple
        charging.
        """
        ticks = count * round(seconds_each * _TICKS_PER_SECOND)
        self._clock_ticks += ticks
        self._cpu_ticks += ticks

    def charge_op(self, owner_id: int, seconds: float) -> None:
        """:meth:`charge`, attributable to one operator.

        The tick arithmetic is identical to :meth:`charge` — same
        rounding, same order — so enabling attribution can never move
        the clock; it only files a copy of the ticks under the owner.
        """
        ticks = round(seconds * _TICKS_PER_SECOND)
        self._clock_ticks += ticks
        self._cpu_ticks += ticks
        if self.attribute_ops:
            self.op_ticks[owner_id] = self.op_ticks.get(owner_id, 0) + ticks

    def charge_events_op(
        self, owner_id: int, count: int, seconds_each: float
    ) -> None:
        """:meth:`charge_events`, attributable to one operator."""
        ticks = count * round(seconds_each * _TICKS_PER_SECOND)
        self._clock_ticks += ticks
        self._cpu_ticks += ticks
        if self.attribute_ops:
            self.op_ticks[owner_id] = self.op_ticks.get(owner_id, 0) + ticks

    def wait_until(self, when: float) -> None:
        """Advance the clock to an arrival time, recording idleness."""
        ticks = round(when * _TICKS_PER_SECOND)
        if ticks > self._clock_ticks:
            self._idle_ticks += ticks - self._clock_ticks
            self._clock_ticks = ticks

    # -- state accounting ------------------------------------------------

    def adjust_state(self, owner_id: int, delta: int) -> None:
        """Add ``delta`` bytes to an owner's buffered state.

        The aggregate is maintained incrementally (exact, since deltas
        are integers) — a full ``sum()`` over every stateful owner per
        tuple used to dominate the insert hot path.
        """
        owner_bytes = self._state_bytes.get(owner_id, 0) + delta
        self._state_bytes[owner_id] = owner_bytes
        total = self._total_state_bytes + delta
        self._total_state_bytes = total
        if total > self.peak_state_bytes:
            self.peak_state_bytes = total
        if self.attribute_ops and owner_bytes > self.op_state_peaks.get(
            owner_id, 0
        ):
            self.op_state_peaks[owner_id] = owner_bytes

    @property
    def total_state_bytes(self) -> int:
        return self._total_state_bytes

    def state_bytes_of(self, owner_id: int) -> int:
        return self._state_bytes.get(owner_id, 0)

    # -- counters --------------------------------------------------------

    def counters(self, op_id: int) -> OperatorCounters:
        counter = self.operators.get(op_id)
        if counter is None:
            counter = OperatorCounters()
            self.operators[op_id] = counter
        return counter

    @property
    def total_pruned(self) -> int:
        return sum(c.tuples_pruned for c in self.operators.values())

    def summary(self) -> Dict[str, float]:
        """Flat dictionary used by the benchmark harness reports."""
        return {
            "virtual_seconds": self.clock,
            "cpu_seconds": self.cpu_time,
            "idle_seconds": self.idle_time,
            "peak_state_mb": self.peak_state_bytes / 1e6,
            "tuples_pruned": self.total_pruned,
            "aip_sets_created": self.aip_sets_created,
            "aip_sets_declined": self.aip_sets_declined,
            "aip_bytes_shipped": self.aip_bytes_shipped,
            "network_bytes": self.network_bytes,
            "result_rows": self.result_rows,
            "spill_bytes": self.spill_bytes,
            "spill_events": self.spill_events,
            "pages_pushed": self.pages_pushed,
            "rows_selected": self.rows_selected,
        }
