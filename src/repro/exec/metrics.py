"""Execution metrics.

Tracks exactly the quantities the paper's figures report — running time
(our virtual clock) and intermediate state (peak buffered bytes across
all stateful operators and AIP sets) — plus the cardinality counters
Tukwila exposes to its optimizer ("All query operators are supplemented
with cardinality counters", Section V-A) and AIP-specific counters used
in the experiment write-ups.
"""

from __future__ import annotations

from typing import Dict


class OperatorCounters:
    """Per-operator tuple counters."""

    __slots__ = ("tuples_in", "tuples_out", "tuples_pruned")

    def __init__(self):
        self.tuples_in = 0
        self.tuples_out = 0
        self.tuples_pruned = 0


class Metrics:
    """Mutable metric store owned by one query execution."""

    def __init__(self):
        self.clock: float = 0.0
        self.idle_time: float = 0.0
        self.cpu_time: float = 0.0
        self._state_bytes: Dict[int, int] = {}
        self.peak_state_bytes: int = 0
        self.operators: Dict[int, OperatorCounters] = {}
        self.aip_sets_created: int = 0
        self.aip_sets_declined: int = 0
        self.aip_bytes_shipped: int = 0
        self.network_bytes: int = 0
        self.result_rows: int = 0

    # -- time ----------------------------------------------------------

    def charge(self, seconds: float) -> None:
        """Advance the clock by CPU work."""
        self.clock += seconds
        self.cpu_time += seconds

    def wait_until(self, when: float) -> None:
        """Advance the clock to an arrival time, recording idleness."""
        if when > self.clock:
            self.idle_time += when - self.clock
            self.clock = when

    # -- state accounting ------------------------------------------------

    def adjust_state(self, owner_id: int, delta: int) -> None:
        """Add ``delta`` bytes to an owner's buffered state."""
        current = self._state_bytes.get(owner_id, 0) + delta
        self._state_bytes[owner_id] = current
        total = self.total_state_bytes
        if total > self.peak_state_bytes:
            self.peak_state_bytes = total

    @property
    def total_state_bytes(self) -> int:
        return sum(self._state_bytes.values())

    def state_bytes_of(self, owner_id: int) -> int:
        return self._state_bytes.get(owner_id, 0)

    # -- counters --------------------------------------------------------

    def counters(self, op_id: int) -> OperatorCounters:
        counter = self.operators.get(op_id)
        if counter is None:
            counter = OperatorCounters()
            self.operators[op_id] = counter
        return counter

    @property
    def total_pruned(self) -> int:
        return sum(c.tuples_pruned for c in self.operators.values())

    def summary(self) -> Dict[str, float]:
        """Flat dictionary used by the benchmark harness reports."""
        return {
            "virtual_seconds": self.clock,
            "cpu_seconds": self.cpu_time,
            "idle_seconds": self.idle_time,
            "peak_state_mb": self.peak_state_bytes / 1e6,
            "tuples_pruned": self.total_pruned,
            "aip_sets_created": self.aip_sets_created,
            "aip_sets_declined": self.aip_sets_declined,
            "aip_bytes_shipped": self.aip_bytes_shipped,
            "network_bytes": self.network_bytes,
            "result_rows": self.result_rows,
        }
