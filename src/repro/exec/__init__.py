"""Push-style execution engine with a deterministic virtual clock."""

from repro.exec.costs import CostModel
from repro.exec.metrics import Metrics
from repro.exec.context import ExecutionContext, ExecutionStrategy
from repro.exec.arrival import ArrivalModel
from repro.exec.engine import Engine, QueryResult, execute_plan

__all__ = [
    "CostModel",
    "Metrics",
    "ExecutionContext",
    "ExecutionStrategy",
    "ArrivalModel",
    "Engine",
    "QueryResult",
    "execute_plan",
]
