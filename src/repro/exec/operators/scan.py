"""Table scans.

A scan owns its rows and an :class:`~repro.exec.arrival.ArrivalModel`
that says when each row becomes available.  The engine drives scans via
:meth:`advance`; everything downstream is reactive.

Scans also host *source-side filters* for the distributed experiments:
a shipped AIP set is installed into the arrival model so that rejected
rows stop consuming simulated link bandwidth (the adaptive Bloomjoin of
Section V-B / VI-C).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.errors import ExecutionError
from repro.data.schema import Schema
from repro.exec.arrival import ArrivalModel, SourceFilter
from repro.exec.context import ExecutionContext
from repro.exec.operators.base import Operator, Row
from repro.exec.pages import ColumnBatch


class PScan(Operator):
    """Physical scan over materialised rows with timed availability."""

    n_inputs = 0

    def __init__(
        self,
        ctx: ExecutionContext,
        op_id: int,
        out_schema: Schema,
        rows: List[Row],
        arrival: Optional[ArrivalModel] = None,
        table_name: str = "",
        site: Optional[str] = None,
        partition_index: Optional[int] = None,
    ):
        label = table_name
        if partition_index is not None:
            label = "%s[%d]" % (table_name, partition_index)
        super().__init__(ctx, op_id, out_schema, [], "Scan(%s)" % label)
        self.rows = rows
        self.arrival = arrival or ArrivalModel.immediate()
        self.table_name = table_name
        self.site = site
        #: Which partition of a fanned-out table this scan serves, or
        #: None for a whole-table scan.
        self.partition_index = partition_index
        self._cursor = 0
        self._pending: Optional[Tuple[float, Row]] = None
        self.exhausted = False

    # -- engine interface -------------------------------------------------

    def prime(self) -> Optional[float]:
        """Compute the first pending tuple; returns its arrival time."""
        return self._advance_cursor()

    def advance(self) -> Optional[float]:
        """Move to the next pending tuple; returns its arrival time."""
        return self._advance_cursor()

    def _advance_cursor(self) -> Optional[float]:
        found = self.arrival.next_arrival(self.rows, self._cursor)
        if found is None:
            self._pending = None
            self.exhausted = True
            return None
        next_cursor, when, row = found
        self._cursor = next_cursor
        self._pending = (when, row)
        return when

    def emit_pending(self) -> None:
        """Push the pending tuple into the consumer chain."""
        if self._pending is None:
            # Not an assert: under ``python -O`` a bare assert vanishes
            # and a driver bug would silently drop rows.
            raise ExecutionError(
                "%s driven with no pending tuple" % self.name
            )
        _, row = self._pending
        self._pending = None
        counters = self.ctx.metrics.counters(self.op_id)
        counters.tuples_in += 1
        self.ctx.charge_op(self.op_id, self.ctx.cost_model.scan_read)
        if not self.passes_filters(row, 0):
            return
        self.emit(row)

    def emit_pending_batch(
        self,
        now_ticks: int,
        boundary_when: Optional[float] = None,
        boundary_first: bool = False,
        paged: bool = False,
    ) -> Optional[float]:
        """Push the pending tuple plus every further row arriving up to
        the cross-scan boundary (see ``ArrivalModel.next_batch``) as one
        batch; returns the next pending arrival time, or None when the
        source is exhausted.  With ``paged`` the run is transposed once
        into a :class:`ColumnBatch` here at the source and flows through
        the operators' page kernels instead of as a row list."""
        if self._pending is None:
            raise ExecutionError(
                "%s driven with no pending tuple" % self.name
            )
        _, first = self._pending
        cursor, more, pending = self.arrival.next_batch(
            self.rows, self._cursor, now_ticks, boundary_when, boundary_first
        )
        self._cursor = cursor
        if pending is None:
            self._pending = None
            self.exhausted = True
            nxt = None
        else:
            self._pending = pending
            nxt = pending[0]
        rows = [first]
        rows.extend(more)
        counters = self.ctx.metrics.counters(self.op_id)
        counters.tuples_in += len(rows)
        self.ctx.charge_events_op(self.op_id, len(rows), self.ctx.cost_model.scan_read)
        if paged:
            page = ColumnBatch.from_rows(rows, len(self.out_schema))
            page = self.passes_filters_page(page, 0)
            self._page_stats(len(rows), page.n_rows)
            self.emit_page(page)
            return nxt
        rows = self.passes_filters_batch(rows, 0)
        self.emit_batch(rows)
        return nxt

    # -- source-side filters (distributed AIP) ----------------------------

    def install_source_filter(
        self, attr_name: str, summary, activation_time: float
    ) -> SourceFilter:
        key_index = self.out_schema.index_of(attr_name)
        self.ctx.log(
            "source filter on %s.%s active from t=%g"
            % (self.table_name, attr_name, activation_time)
        )
        return self.arrival.install_filter(key_index, summary, activation_time)

    # -- dataflow ----------------------------------------------------------

    def push(self, row: Row, port: int = 0) -> None:
        raise AssertionError("scans have no inputs")

    def finish(self, port: int = 0) -> None:
        """Called by the engine when the source is exhausted."""
        release = getattr(self.rows, "release", None)
        if release is not None:
            # Paged rows under a memory governor: nothing re-reads an
            # exhausted scan, so its buffer-pool pages drop now.
            release()
        self.finish_output()
