"""Projection operator."""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.data.schema import Schema
from repro.exec.context import ExecutionContext
from repro.exec.operators.base import Operator, Row
from repro.expr.compiler import compile_expr
from repro.expr.expressions import Expr


class PProject(Operator):
    """Pipelined projection: computes output columns per input row."""

    def __init__(
        self,
        ctx: ExecutionContext,
        op_id: int,
        in_schema: Schema,
        out_schema: Schema,
        outputs: Sequence[Tuple[str, Expr]],
    ):
        super().__init__(ctx, op_id, out_schema, [in_schema], "Project")
        self._fns = [compile_expr(expr, in_schema) for _, expr in outputs]

    def push(self, row: Row, port: int = 0) -> None:
        cm = self.ctx.cost_model
        self.ctx.metrics.counters(self.op_id).tuples_in += 1
        self.ctx.charge(cm.tuple_base + cm.output_build)
        if not self.passes_filters(row, 0):
            return
        self.emit(tuple(fn(row) for fn in self._fns))

    def finish(self, port: int = 0) -> None:
        self._mark_input_done(port)
        self.finish_output()
