"""Projection operator."""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.data.schema import Schema
from repro.exec.context import ExecutionContext
from repro.exec.operators.base import Operator, Row
from repro.exec.pages import ColumnBatch
from repro.expr.compiler import compile_expr, compile_expr_columns
from repro.expr.expressions import Expr


class PProject(Operator):
    """Pipelined projection: computes output columns per input row."""

    def __init__(
        self,
        ctx: ExecutionContext,
        op_id: int,
        in_schema: Schema,
        out_schema: Schema,
        outputs: Sequence[Tuple[str, Expr]],
    ):
        super().__init__(ctx, op_id, out_schema, [in_schema], "Project")
        #: The ``name := expr`` ASTs — kept so pickled fragments
        #: recompile the closures worker-side instead of shipping them.
        self.outputs = tuple(outputs)
        self._rebuild_compiled()

    _compiled_attrs = ("_fns", "_project_batch", "_col_fns")

    def _rebuild_compiled(self) -> None:
        in_schema = self.input_schemas[0]
        fns = self._fns = [
            compile_expr(expr, in_schema) for _, expr in self.outputs
        ]
        #: Batch closure: one call projects a whole batch in order.
        self._project_batch = (
            lambda rows: [tuple(fn(row) for fn in fns) for row in rows]
        )
        #: Column kernels for the page path: one gather per output
        #: column instead of one tuple build per input row.
        self._col_fns = [
            compile_expr_columns(expr, in_schema) for _, expr in self.outputs
        ]

    def push(self, row: Row, port: int = 0) -> None:
        cm = self.ctx.cost_model
        self.ctx.metrics.counters(self.op_id).tuples_in += 1
        # ``output_build`` only for rows actually projected: a row
        # pruned by an injected AIP filter never builds an output tuple.
        self.ctx.charge_op(self.op_id, cm.tuple_base)
        if not self.passes_filters(row, 0):
            return
        self.ctx.charge_op(self.op_id, cm.output_build)
        self.emit(tuple(fn(row) for fn in self._fns))

    def push_batch(self, rows, port: int = 0) -> None:
        cm = self.ctx.cost_model
        self.ctx.metrics.counters(self.op_id).tuples_in += len(rows)
        self.ctx.charge_events_op(self.op_id, len(rows), cm.tuple_base)
        rows = self.passes_filters_batch(rows, 0)
        if rows:
            self.ctx.charge_events_op(self.op_id, len(rows), cm.output_build)
            self.emit_batch(self._project_batch(rows))

    def push_page(self, page: ColumnBatch, port: int = 0) -> None:
        cm = self.ctx.cost_model
        n_in = page.n_rows
        self.ctx.metrics.counters(self.op_id).tuples_in += n_in
        self.ctx.charge_events_op(self.op_id, n_in, cm.tuple_base)
        page = self.passes_filters_page(page, 0)
        if page.n_rows:
            self.ctx.charge_events_op(self.op_id, page.n_rows, cm.output_build)
            out = ColumnBatch(
                [fn(page.columns, page.n_rows) for fn in self._col_fns],
                page.n_rows,
            )
            self._page_stats(n_in, page.n_rows)
            self.emit_page(out)

    def finish(self, port: int = 0) -> None:
        self._mark_input_done(port)
        self.finish_output()
