"""Partition merge: the master-side gather of a fanned-out scan.

A logical scan of a partitioned table translates into one physical scan
per partition plus one :class:`PMerge` that unions their streams in
arrival order.  The merge is a zero-cost demultiplexer — the per-tuple
receive work is already billed by each partition scan's ``scan_read``,
so a table split into N=1 partition is bit-identical (rows, clock, peak
state, counters) to the same table placed whole at one site.

The merge carries the logical scan's ``node_id``, so everything that
addresses the scan by id — downstream wiring, the AIP candidate index,
the estimator's feedback loop — resolves to it transparently; the
per-partition scans register under fresh ids of their own (they are the
injection points for shipped and locally injected filters).

Injected semijoin filters are held on virtual port 0 and applied to
rows from *every* partition, mirroring how a single scan's port-0
filters vet its whole stream.
"""

from __future__ import annotations

from typing import List

from repro.data.schema import Schema
from repro.exec.context import ExecutionContext
from repro.exec.operators.base import Operator, Row
from repro.exec.operators.scan import PScan


class PMerge(Operator):
    """Unions N partition scans of one table into one stream."""

    def __init__(
        self,
        ctx: ExecutionContext,
        op_id: int,
        schema: Schema,
        n_partitions: int,
        table_name: str = "",
    ):
        # Operator.__init__ sizes the children/input bookkeeping from
        # ``n_inputs``; set the instance attribute before delegating.
        self.n_inputs = n_partitions
        super().__init__(
            ctx, op_id, schema, [schema] * n_partitions,
            "Merge(%s/%d)" % (table_name, n_partitions),
        )
        self.table_name = table_name

    @property
    def partitions(self) -> List[PScan]:
        """The per-partition scans feeding this merge, in index order."""
        return [child for child in self.children if child is not None]

    @property
    def exhausted(self) -> bool:
        """True once every partition has drained (scan-like view for
        the AIP layer's liveness checks)."""
        return self._output_done

    # -- dataflow --------------------------------------------------------

    def push(self, row: Row, port: int = 0) -> None:
        self.ctx.metrics.counters(self.op_id).tuples_in += 1
        # Filters live on virtual port 0 regardless of which partition
        # delivered the row.
        if not self.passes_filters(row, 0):
            return
        self.emit(row)

    def push_batch(self, rows: List[Row], port: int = 0) -> None:
        self.ctx.metrics.counters(self.op_id).tuples_in += len(rows)
        rows = self.passes_filters_batch(rows, 0)
        if rows:
            self.emit_batch(rows)

    def push_page(self, page, port: int = 0) -> None:
        n_in = page.n_rows
        self.ctx.metrics.counters(self.op_id).tuples_in += n_in
        page = self.passes_filters_page(page, 0)
        if page.n_rows:
            self._page_stats(n_in, page.n_rows)
            self.emit_page(page)

    def finish(self, port: int = 0) -> None:
        self._mark_input_done(port)
        if self.all_inputs_done:
            self.finish_output()
