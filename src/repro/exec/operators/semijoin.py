"""Pipelined semijoin.

Emits each probe-side row at most once, as soon as its key is known to
exist on the source side:

* probe row arrives, key already in the source table → emit now;
* probe row arrives, key unknown → buffer it (the matching source row
  may still be in flight);
* source row arrives with a new key → flush any probe rows buffered
  under that key;
* source input finishes → buffered probe rows can never match; drop
  them and release their state.

The probe buffer never holds a row whose key has already been seen on
the source side, so state stays bounded by the unmatched prefix.

Under a memory governor the probe buffer (the operator's bulk) spills
by key partition: a spilled partition's pending rows live in a disk
run, and later unmatched probe rows for it are appended there instead
of the hash table.  Source keys stay resident (they are small), so
matched probe rows still emit immediately; when the source input
completes, the spilled runs are streamed once and every row whose key
made it into the final source-key set is emitted — exactly the rows
the in-memory flushes would have produced.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.common.sizing import key_nbytes
from repro.data.schema import Schema
from repro.exec.context import ExecutionContext
from repro.exec.operators.base import Operator, Row

PROBE = 0
SOURCE = 1


class PSemiJoin(Operator):
    """Physical pipelined semijoin (probe on port 0, source on port 1)."""

    n_inputs = 2
    stateful = True
    #: A source-key arrival can *release* buffered probe rows
    #: mid-stream.  Operator-at-a-time batching would reorder those
    #: negative state deltas against other operators' inserts within the
    #: same arrival run, so peak-state accounting could drift from the
    #: tuple path; plans containing a semijoin therefore stay on the
    #: per-tuple engine loop.  ``push_batch`` below is still vectorized
    #: for direct callers — it preserves this operator's own per-row
    #: accounting order.
    batch_safe = False

    def __init__(
        self,
        ctx: ExecutionContext,
        op_id: int,
        probe_schema: Schema,
        source_schema: Schema,
        probe_keys: List[str],
        source_keys: List[str],
    ):
        super().__init__(
            ctx, op_id, probe_schema, [probe_schema, source_schema], "SemiJoin"
        )
        self._probe_idx = tuple(probe_schema.index_of(k) for k in probe_keys)
        self._source_idx = tuple(source_schema.index_of(k) for k in source_keys)
        self._source_keys: Set = set()
        self._pending: Dict[object, List[Row]] = {}
        self._probe_row_bytes = probe_schema.row_byte_size()
        self._key_bytes = key_nbytes(len(source_keys))
        if self._lease is not None:
            from repro.storage.spill import N_SPILL_PARTITIONS
            #: pid -> Spool of pending probe rows (moved + deferred).
            self._spilled: Dict[int, object] = {}
            self._part_rows = [0] * N_SPILL_PARTITIONS
            self._replaying = False
        else:
            self._spilled = None

    def _key(self, row: Row, indices) -> object:
        if len(indices) == 1:
            return row[indices[0]]
        return tuple(row[i] for i in indices)

    def push(self, row: Row, port: int = 0) -> None:
        cm = self.ctx.cost_model
        metrics = self.ctx.metrics
        metrics.counters(self.op_id).tuples_in += 1
        self.ctx.charge_op(self.op_id, cm.tuple_base)
        if not self.passes_filters(row, port):
            return

        if port == PROBE:
            key = self._key(row, self._probe_idx)
            self.ctx.charge_op(self.op_id, cm.hash_probe)
            if key in self._source_keys:
                self.emit(row)
            elif not self._input_done[SOURCE]:
                pid = -1
                if self._spilled is not None:
                    from repro.storage.spill import spill_partition
                    pid = spill_partition(key)
                    if pid in self._spilled:
                        # Deferred: the matching source key may still
                        # arrive; the run replays at source completion.
                        self.ctx.charge_op(self.op_id, cm.hash_insert)
                        self._spilled[pid].append(row)
                        self.ctx.strategy.after_tuple(self, port, row)
                        return
                self.ctx.charge_op(self.op_id, cm.hash_insert)
                self._pending.setdefault(key, []).append(row)
                if pid >= 0:
                    self._part_rows[pid] += 1
                self.account_state(self._probe_row_bytes)
            # Source already complete and key absent: row can never match.
        else:
            key = self._key(row, self._source_idx)
            self.ctx.charge_op(self.op_id, cm.hash_probe)
            if key in self._source_keys:
                return  # duplicate source key carries no new information
            self.ctx.charge_op(self.op_id, cm.hash_insert)
            self._source_keys.add(key)
            self.account_state(self._key_bytes)
            waiting = self._pending.pop(key, None)
            if waiting:
                if self._spilled is not None:
                    from repro.storage.spill import spill_partition
                    self._part_rows[spill_partition(key)] -= len(waiting)
                self.account_state(
                    -len(waiting) * self._probe_row_bytes
                )
                for pending_row in waiting:
                    self.ctx.charge_op(self.op_id, cm.output_build)
                    self.emit(pending_row)
        self.ctx.strategy.after_tuple(self, port, row)

    def push_batch(self, rows, port: int = 0) -> None:
        """Probe (port 0) or insert (port 1) a whole batch with bulk
        cost charging; emissions and this operator's state deltas keep
        the per-row order of :meth:`push`."""
        if self._lease is not None:
            for row in rows:
                self.push(row, port)
            return
        cm = self.ctx.cost_model
        metrics = self.ctx.metrics
        metrics.counters(self.op_id).tuples_in += len(rows)
        self.ctx.charge_events_op(self.op_id, len(rows), cm.tuple_base)
        rows = self.passes_filters_batch(rows, port)
        if not rows:
            return
        self.ctx.charge_events_op(self.op_id, len(rows), cm.hash_probe)
        source_keys = self._source_keys
        out = []
        if port == PROBE:
            indices = self._probe_idx
            single = len(indices) == 1
            idx0 = indices[0] if single else None
            source_open = not self._input_done[SOURCE]
            pending = self._pending
            inserted = 0
            for row in rows:
                key = row[idx0] if single else tuple(row[i] for i in indices)
                if key in source_keys:
                    out.append(row)
                elif source_open:
                    inserted += 1
                    bucket = pending.get(key)
                    if bucket is None:
                        pending[key] = [row]
                    else:
                        bucket.append(row)
            if inserted:
                self.ctx.charge_events_op(self.op_id, inserted, cm.hash_insert)
                metrics.adjust_state(
                    self.op_id, inserted * self._probe_row_bytes
                )
        else:
            indices = self._source_idx
            single = len(indices) == 1
            idx0 = indices[0] if single else None
            key_bytes = self._key_bytes
            pop_pending = self._pending.pop
            # Duplicate source keys return before the per-tuple path's
            # ``after_tuple`` hook fires; only fresh-key rows reach it.
            fresh = []
            flushed = 0
            for row in rows:
                key = row[idx0] if single else tuple(row[i] for i in indices)
                if key in source_keys:
                    continue  # duplicate source key: no new information
                fresh.append(row)
                source_keys.add(key)
                metrics.adjust_state(self.op_id, key_bytes)
                waiting = pop_pending(key, None)
                if waiting:
                    metrics.adjust_state(
                        self.op_id, -len(waiting) * self._probe_row_bytes
                    )
                    flushed += len(waiting)
                    out.extend(waiting)
            if fresh:
                self.ctx.charge_events_op(self.op_id, len(fresh), cm.hash_insert)
            if flushed:
                self.ctx.charge_events_op(self.op_id, flushed, cm.output_build)
            rows = fresh
        self.ctx.strategy.after_tuples(self, port, rows)
        self.emit_batch(out)

    def push_page(self, page, port: int = 0) -> None:
        """Page kernel for direct callers.  ``batch_safe = False``
        keeps semijoin plans off the engine's batch (and therefore
        page) path, but a caller holding a :class:`ColumnBatch` can
        still push it; keys are probed off the key column and the
        per-row semantics delegate to :meth:`push_batch`."""
        self._page_stats(page.n_rows, page.n_rows)
        self.push_batch(page.rows(), port)

    def finish(self, port: int = 0) -> None:
        self._mark_input_done(port)
        if port == SOURCE:
            if self._spilled:
                # Replay the spilled pending runs against the now-final
                # source key set — the matches the in-memory flushes
                # would have emitted as those keys arrived.
                self._replay_spilled()
            if self._pending:
                dropped = sum(len(rows) for rows in self._pending.values())
                self.account_state(-dropped * self._probe_row_bytes)
                self._pending.clear()
                if self._spilled is not None:
                    for pid in range(len(self._part_rows)):
                        self._part_rows[pid] = 0
        self.ctx.strategy.on_input_finished(self, port)
        if self.all_inputs_done:
            if self._source_keys:
                self.account_state(
                    -len(self._source_keys) * self._key_bytes
                )
                self._source_keys.clear()
            self.finish_output()

    # -- spilling ----------------------------------------------------------

    def spillable_nbytes(self) -> int:
        if self._spilled is None or self._replaying:
            return 0
        return sum(self._part_rows) * self._probe_row_bytes

    def spill(self, need_bytes: int, ctx) -> int:
        """Move whole pending-buffer key partitions to disk."""
        if self._spilled is None or self._replaying:
            return 0
        from repro.storage.spill import (
            Spool, pick_spill_victim, spill_partition,
        )

        freed = 0
        while freed < need_bytes:
            best = pick_spill_victim(self._part_rows, self._spilled)
            if best is None:
                break
            spool = Spool(
                self.ctx, self.ctx.governor, self._probe_row_bytes,
                "%s#%d.p%d.pending" % (self.name, self.op_id, best),
            )
            self._spilled[best] = spool
            moved = 0
            for key in [
                k for k in self._pending if spill_partition(k) == best
            ]:
                rows = self._pending.pop(key)
                self.account_state(-len(rows) * self._probe_row_bytes)
                for row in rows:
                    moved += 1
                    spool.append(row)
            spool.flush()
            self._part_rows[best] = 0
            if moved:
                freed += moved * self._probe_row_bytes
            self.ctx.log(
                "%s spilled partition %d (%d pending rows)"
                % (self.name, best, moved)
            )
        return freed

    def _replay_spilled(self) -> None:
        cm = self.ctx.cost_model
        source_keys = self._source_keys
        probe_idx = self._probe_idx
        self._replaying = True
        try:
            for pid in sorted(self._spilled):
                spool = self._spilled[pid]
                probed = 0
                for row in spool.records():
                    probed += 1
                    if self._key(row, probe_idx) in source_keys:
                        self.ctx.charge_op(self.op_id, cm.output_build)
                        self.emit(row)
                if probed:
                    self.ctx.charge_events_op(self.op_id, probed, cm.hash_probe)
                spool.discard()
            self._spilled.clear()
        finally:
            self._replaying = False

    # -- state exposure ----------------------------------------------------

    def state_values(self, port: int, attr_name: str):
        if port == SOURCE:
            # Single-key semijoins store raw values; composite keys as tuples.
            name_list = [
                self.input_schemas[SOURCE].names[i] for i in self._source_idx
            ]
            pos = name_list.index(attr_name)
            for key in self._source_keys:
                yield key if len(self._source_idx) == 1 else key[pos]
        else:
            idx = self.input_schemas[PROBE].index_of(attr_name)
            for rows in self._pending.values():
                for row in rows:
                    yield row[idx]
            if self._spilled:
                for pid in sorted(self._spilled):
                    for row in self._spilled[pid].records():
                        yield row[idx]

    def stored_count(self, port: int) -> int:
        if port == SOURCE:
            return len(self._source_keys)
        count = sum(len(rows) for rows in self._pending.values())
        if self._spilled:
            for spool in self._spilled.values():
                count += spool.n_records
        return count

    def state_complete(self, port: int) -> bool:
        # The probe buffer only ever holds *unmatched* rows — never a
        # complete subexpression.  The source key set is complete once
        # the source input finishes.
        return port == SOURCE and self._input_done[SOURCE]
