"""Physical push operators."""

from repro.exec.operators.base import InjectedFilter, Operator
from repro.exec.operators.scan import PScan
from repro.exec.operators.filter import PFilter
from repro.exec.operators.project import PProject
from repro.exec.operators.hashjoin import PHashJoin
from repro.exec.operators.groupby import PGroupBy
from repro.exec.operators.distinct import PDistinct
from repro.exec.operators.merge import PMerge
from repro.exec.operators.output import POutput

__all__ = [
    "Operator", "InjectedFilter", "PScan", "PFilter", "PProject",
    "PHashJoin", "PGroupBy", "PDistinct", "PMerge", "POutput",
]
