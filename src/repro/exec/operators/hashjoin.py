"""Pipelined (symmetric) hash join.

This is the workhorse of push-style query processing (the paper builds
on Tukwila's pipelined hash join [10], [11]).  Both inputs are hashed;
a tuple arriving on either side probes the opposite table, emits any
matches, and is inserted into its own side's table so that future
arrivals from the opposite side can find it.

Two behaviours from the paper are implemented here:

* **short-circuiting** (Section VI-A, the Q2C discussion): "if one of
  the join inputs completes, the other input 'short-circuits' and stops
  buffering input that will not be needed later."  When an input
  finishes, the opposite side's hash table is released and no longer
  appended to — nothing will ever probe it again.
* **AIP state exposure**: a finished input's hash table *is* the
  materialised result of that subexpression, which both AIP algorithms
  turn into filters (``state_values``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.data.schema import Schema
from repro.exec.context import ExecutionContext
from repro.exec.operators.base import Operator, Row
from repro.expr.compiler import compile_predicate
from repro.expr.expressions import Expr


class PHashJoin(Operator):
    """Symmetric hash join over one or more equi-join key pairs."""

    n_inputs = 2
    stateful = True

    def __init__(
        self,
        ctx: ExecutionContext,
        op_id: int,
        left_schema: Schema,
        right_schema: Schema,
        left_keys: List[str],
        right_keys: List[str],
        residual: Optional[Expr] = None,
    ):
        out_schema = left_schema.concat(right_schema)
        super().__init__(
            ctx, op_id, out_schema, [left_schema, right_schema], "HashJoin"
        )
        self._key_indices = (
            tuple(left_schema.index_of(k) for k in left_keys),
            tuple(right_schema.index_of(k) for k in right_keys),
        )
        self._tables: Tuple[Dict, Dict] = ({}, {})
        self._row_bytes = (
            left_schema.row_byte_size(),
            right_schema.row_byte_size(),
        )
        self._buffering = [True, True]
        self._residual = (
            compile_predicate(residual, out_schema)
            if residual is not None
            else None
        )
        self.left_keys = tuple(left_keys)
        self.right_keys = tuple(right_keys)

    def _key_of(self, row: Row, port: int):
        indices = self._key_indices[port]
        if len(indices) == 1:
            return row[indices[0]]
        return tuple(row[i] for i in indices)

    def push(self, row: Row, port: int = 0) -> None:
        cm = self.ctx.cost_model
        metrics = self.ctx.metrics
        metrics.counters(self.op_id).tuples_in += 1
        self.ctx.charge(cm.tuple_base)
        if not self.passes_filters(row, port):
            return

        other = 1 - port
        key = self._key_of(row, port)

        # Probe the opposite table.
        self.ctx.charge(cm.hash_probe)
        matches = self._tables[other].get(key)
        if matches:
            for match in matches:
                # Port 0 rows sit left in the output schema.
                combined = row + match if port == 0 else match + row
                if self._residual is not None:
                    self.ctx.charge(cm.predicate_eval)
                    if not self._residual(combined):
                        continue
                self.ctx.charge(cm.output_build)
                self.emit(combined)

        # Insert into this side's table, unless the opposite input has
        # already completed (short-circuit: nothing will probe us).
        if self._buffering[port]:
            self.ctx.charge(cm.hash_insert)
            self._tables[port].setdefault(key, []).append(row)
            metrics.adjust_state(self.op_id, self._row_bytes[port])

        self.ctx.strategy.after_tuple(self, port, row)

    def push_batch(self, rows, port: int = 0) -> None:
        """Probe and insert a whole batch: same per-row decisions and
        tick-exact charge totals as :meth:`push`, without the per-tuple
        call chain."""
        cm = self.ctx.cost_model
        metrics = self.ctx.metrics
        metrics.counters(self.op_id).tuples_in += len(rows)
        self.ctx.charge_events(len(rows), cm.tuple_base)
        rows = self.passes_filters_batch(rows, port)
        if not rows:
            return

        other = 1 - port
        indices = self._key_indices[port]
        single = len(indices) == 1
        idx0 = indices[0] if single else None
        probe_get = self._tables[other].get
        table = self._tables[port]
        buffering = self._buffering[port]
        residual = self._residual
        left = port == 0
        out = []
        append_out = out.append
        n_residual = 0

        for row in rows:
            key = row[idx0] if single else tuple(row[i] for i in indices)
            matches = probe_get(key)
            if matches:
                for match in matches:
                    combined = row + match if left else match + row
                    if residual is not None:
                        n_residual += 1
                        if not residual(combined):
                            continue
                    append_out(combined)
            if buffering:
                bucket = table.get(key)
                if bucket is None:
                    table[key] = [row]
                else:
                    bucket.append(row)

        self.ctx.charge_events(len(rows), cm.hash_probe)
        if n_residual:
            self.ctx.charge_events(n_residual, cm.predicate_eval)
        if out:
            self.ctx.charge_events(len(out), cm.output_build)
        if buffering:
            self.ctx.charge_events(len(rows), cm.hash_insert)
            metrics.adjust_state(
                self.op_id, len(rows) * self._row_bytes[port]
            )
        self.ctx.strategy.after_tuples(self, port, rows)
        self.emit_batch(out)

    def finish(self, port: int = 0) -> None:
        self._mark_input_done(port)
        other = 1 - port
        if self.ctx.short_circuit and not self._input_done[other]:
            # Release the opposite side's buffered rows; future arrivals
            # on `other` keep probing table[port] but are not stored.
            self._release_table(other)
            self._buffering[other] = False
        self.ctx.strategy.on_input_finished(self, port)
        if self.all_inputs_done:
            self._release_table(0)
            self._release_table(1)
            self.finish_output()

    def _release_table(self, port: int) -> None:
        stored = sum(len(rows) for rows in self._tables[port].values())
        if stored:
            self.ctx.metrics.adjust_state(
                self.op_id, -stored * self._row_bytes[port]
            )
        self._tables[port].clear()

    # -- state exposure ----------------------------------------------------

    def state_values(self, port: int, attr_name: str):
        idx = self.input_schemas[port].index_of(attr_name)
        for rows in self._tables[port].values():
            for row in rows:
                yield row[idx]

    def stored_count(self, port: int) -> int:
        return sum(len(rows) for rows in self._tables[port].values())

    def state_complete(self, port: int) -> bool:
        # Complete iff the port finished while still buffering: if the
        # opposite input completed first, short-circuiting stopped this
        # side's inserts and its table is partial.
        return self._input_done[port] and self._buffering[port]
