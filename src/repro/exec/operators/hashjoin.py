"""Pipelined (symmetric) hash join.

This is the workhorse of push-style query processing (the paper builds
on Tukwila's pipelined hash join [10], [11]).  Both inputs are hashed;
a tuple arriving on either side probes the opposite table, emits any
matches, and is inserted into its own side's table so that future
arrivals from the opposite side can find it.

Two behaviours from the paper are implemented here:

* **short-circuiting** (Section VI-A, the Q2C discussion): "if one of
  the join inputs completes, the other input 'short-circuits' and stops
  buffering input that will not be needed later."  When an input
  finishes, the opposite side's hash table is released and no longer
  appended to — nothing will ever probe it again.
* **AIP state exposure**: a finished input's hash table *is* the
  materialised result of that subexpression, which both AIP algorithms
  turn into filters (``state_values``).

Under a memory governor the join spills Grace-style: a partition of
the key space moves to disk as two generations per side — **frozen**
(rows that were in the hash tables when the partition spilled; every
frozen-left × frozen-right match was already emitted while streaming)
and **delta** (rows arriving after the spill, appended without
probing).  When both inputs complete, the owed matches are exactly
``all pairs − frozen×frozen``, produced by probing the reloaded right
partition with the left delta and the right delta with the frozen
left.  Spilled rows still feed ``state_values`` (streamed from disk),
so AIP summaries built from this state remain complete and sound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.data.schema import Schema
from repro.exec.context import ExecutionContext
from repro.exec.operators.base import Operator, Row
from repro.expr.compiler import compile_predicate
from repro.expr.expressions import Expr


class _PartitionSpill:
    """One spilled key-space partition: per-side frozen + delta runs."""

    __slots__ = ("frozen", "delta")

    def __init__(self, make_spool):
        self.frozen = (make_spool(0, "frozen"), make_spool(1, "frozen"))
        self.delta = (make_spool(0, "delta"), make_spool(1, "delta"))

    def spools(self):
        return self.frozen + self.delta


class PHashJoin(Operator):
    """Symmetric hash join over one or more equi-join key pairs."""

    n_inputs = 2
    stateful = True

    def __init__(
        self,
        ctx: ExecutionContext,
        op_id: int,
        left_schema: Schema,
        right_schema: Schema,
        left_keys: List[str],
        right_keys: List[str],
        residual: Optional[Expr] = None,
    ):
        out_schema = left_schema.concat(right_schema)
        super().__init__(
            ctx, op_id, out_schema, [left_schema, right_schema], "HashJoin"
        )
        self._key_indices = (
            tuple(left_schema.index_of(k) for k in left_keys),
            tuple(right_schema.index_of(k) for k in right_keys),
        )
        self._tables: Tuple[Dict, Dict] = ({}, {})
        self._row_bytes = (
            left_schema.row_byte_size(),
            right_schema.row_byte_size(),
        )
        self._buffering = [True, True]
        #: The residual predicate AST — kept so pickled fragments
        #: recompile the closure worker-side instead of shipping it.
        self.residual = residual
        self._rebuild_compiled()
        self.left_keys = tuple(left_keys)
        self.right_keys = tuple(right_keys)
        if self._lease is not None:
            from repro.storage.spill import N_SPILL_PARTITIONS
            #: pid -> _PartitionSpill for spilled key-space partitions.
            self._spilled: Dict[int, _PartitionSpill] = {}
            #: In-memory row counts per (port, partition), kept so the
            #: spill victim choice is O(partitions), not O(state).
            self._part_rows = (
                [0] * N_SPILL_PARTITIONS, [0] * N_SPILL_PARTITIONS,
            )
            self._replaying = False
        else:
            self._spilled = None

    _compiled_attrs = ("_residual",)

    def _rebuild_compiled(self) -> None:
        self._residual = (
            compile_predicate(self.residual, self.out_schema)
            if self.residual is not None
            else None
        )

    def _key_of(self, row: Row, port: int):
        indices = self._key_indices[port]
        if len(indices) == 1:
            return row[indices[0]]
        return tuple(row[i] for i in indices)

    def push(self, row: Row, port: int = 0) -> None:
        cm = self.ctx.cost_model
        metrics = self.ctx.metrics
        metrics.counters(self.op_id).tuples_in += 1
        self.ctx.charge_op(self.op_id, cm.tuple_base)
        if not self.passes_filters(row, port):
            return

        other = 1 - port
        key = self._key_of(row, port)

        pid = -1
        if self._spilled is not None:
            from repro.storage.spill import spill_partition
            pid = spill_partition(key)
            part = self._spilled.get(pid)
            if part is not None:
                # Deferred: the partition lives on disk.  No probe, no
                # emission now — owed matches surface at completion.
                self.ctx.charge_op(self.op_id, cm.hash_insert)
                part.delta[port].append(row)
                self.ctx.strategy.after_tuple(self, port, row)
                return

        # Probe the opposite table.
        self.ctx.charge_op(self.op_id, cm.hash_probe)
        matches = self._tables[other].get(key)
        if matches:
            for match in matches:
                # Port 0 rows sit left in the output schema.
                combined = row + match if port == 0 else match + row
                if self._residual is not None:
                    self.ctx.charge_op(self.op_id, cm.predicate_eval)
                    if not self._residual(combined):
                        continue
                self.ctx.charge_op(self.op_id, cm.output_build)
                self.emit(combined)

        # Insert into this side's table, unless the opposite input has
        # already completed (short-circuit: nothing will probe us).
        if self._buffering[port]:
            self.ctx.charge_op(self.op_id, cm.hash_insert)
            self._tables[port].setdefault(key, []).append(row)
            if pid >= 0:
                self._part_rows[port][pid] += 1
            self.account_state(self._row_bytes[port])

        self.ctx.strategy.after_tuple(self, port, row)

    def push_batch(self, rows, port: int = 0) -> None:
        """Probe and insert a whole batch: same per-row decisions and
        tick-exact charge totals as :meth:`push`, without the per-tuple
        call chain."""
        if self._lease is not None:
            # Governed: per-row pushes so spill decisions interleave at
            # row granularity exactly as on the tuple path.
            for row in rows:
                self.push(row, port)
            return
        cm = self.ctx.cost_model
        metrics = self.ctx.metrics
        metrics.counters(self.op_id).tuples_in += len(rows)
        self.ctx.charge_events_op(self.op_id, len(rows), cm.tuple_base)
        rows = self.passes_filters_batch(rows, port)
        if not rows:
            return

        other = 1 - port
        indices = self._key_indices[port]
        single = len(indices) == 1
        idx0 = indices[0] if single else None
        probe_get = self._tables[other].get
        table = self._tables[port]
        buffering = self._buffering[port]
        residual = self._residual
        left = port == 0
        out = []
        append_out = out.append
        n_residual = 0

        for row in rows:
            key = row[idx0] if single else tuple(row[i] for i in indices)
            matches = probe_get(key)
            if matches:
                for match in matches:
                    combined = row + match if left else match + row
                    if residual is not None:
                        n_residual += 1
                        if not residual(combined):
                            continue
                    append_out(combined)
            if buffering:
                bucket = table.get(key)
                if bucket is None:
                    table[key] = [row]
                else:
                    bucket.append(row)

        self.ctx.charge_events_op(self.op_id, len(rows), cm.hash_probe)
        if n_residual:
            self.ctx.charge_events_op(self.op_id, n_residual, cm.predicate_eval)
        if out:
            self.ctx.charge_events_op(self.op_id, len(out), cm.output_build)
        if buffering:
            self.ctx.charge_events_op(self.op_id, len(rows), cm.hash_insert)
            metrics.adjust_state(
                self.op_id, len(rows) * self._row_bytes[port]
            )
        self.ctx.strategy.after_tuples(self, port, rows)
        self.emit_batch(out)

    def push_page(self, page, port: int = 0) -> None:
        """Page kernel: probe keys are read straight off the key
        column(s) — zero-copy for single-key joins — and only surviving
        rows are re-materialised for insert and output build."""
        if self._lease is not None:
            # Governed: fall back to the per-row path (spill decisions
            # interleave at row granularity).
            self.push_batch(page.rows(), port)
            return
        cm = self.ctx.cost_model
        metrics = self.ctx.metrics
        n_in = page.n_rows
        metrics.counters(self.op_id).tuples_in += n_in
        self.ctx.charge_events_op(self.op_id, n_in, cm.tuple_base)
        page = self.passes_filters_page(page, port)
        n = page.n_rows
        if not n:
            return

        other = 1 - port
        indices = self._key_indices[port]
        if len(indices) == 1:
            keys = page.columns[indices[0]]
        else:
            keys = list(zip(*[page.columns[i] for i in indices]))
        rows = page.rows()
        probe_get = self._tables[other].get
        table = self._tables[port]
        buffering = self._buffering[port]
        residual = self._residual
        left = port == 0
        out = []
        append_out = out.append
        n_residual = 0

        for key, row in zip(keys, rows):
            matches = probe_get(key)
            if matches:
                for match in matches:
                    combined = row + match if left else match + row
                    if residual is not None:
                        n_residual += 1
                        if not residual(combined):
                            continue
                    append_out(combined)
            if buffering:
                bucket = table.get(key)
                if bucket is None:
                    table[key] = [row]
                else:
                    bucket.append(row)

        self.ctx.charge_events_op(self.op_id, n, cm.hash_probe)
        if n_residual:
            self.ctx.charge_events_op(self.op_id, n_residual, cm.predicate_eval)
        if out:
            self.ctx.charge_events_op(self.op_id, len(out), cm.output_build)
        if buffering:
            self.ctx.charge_events_op(self.op_id, n, cm.hash_insert)
            metrics.adjust_state(self.op_id, n * self._row_bytes[port])
        self.ctx.strategy.after_tuples_page(self, port, page)
        self._page_stats(n_in, n)
        # Joins emit rows: output tuples are combined row-at-a-time.
        self.emit_batch(out)

    def finish(self, port: int = 0) -> None:
        self._mark_input_done(port)
        other = 1 - port
        if self.ctx.short_circuit and not self._input_done[other]:
            # Release the opposite side's buffered rows; future arrivals
            # on `other` keep probing table[port] but are not stored.
            # Spilled runs of `other` are kept: deferred rows of *this*
            # port still owe probes against them at completion.
            self._release_table(other)
            self._buffering[other] = False
        self.ctx.strategy.on_input_finished(self, port)
        if self.all_inputs_done:
            if self._spilled:
                self._replay_spilled()
            self._release_table(0)
            self._release_table(1)
            self.finish_output()

    def _release_table(self, port: int) -> None:
        stored = sum(len(rows) for rows in self._tables[port].values())
        if stored:
            self.account_state(-stored * self._row_bytes[port])
        self._tables[port].clear()
        if self._spilled is not None:
            counts = self._part_rows[port]
            for pid in range(len(counts)):
                counts[pid] = 0

    # -- spilling ----------------------------------------------------------

    def spillable_nbytes(self) -> int:
        if self._spilled is None or self._replaying:
            return 0
        return self._lease.nbytes

    def spill(self, need_bytes: int, ctx) -> int:
        """Move whole key-space partitions to disk, largest first."""
        if self._spilled is None or self._replaying:
            return 0
        freed = 0
        while freed < need_bytes:
            pid = self._pick_victim()
            if pid is None:
                break
            freed += self._spill_partition(pid, ctx)
        return freed

    def _pick_victim(self) -> Optional[int]:
        from repro.storage.spill import pick_spill_victim
        rb0, rb1 = self._row_bytes
        counts0, counts1 = self._part_rows
        return pick_spill_victim(
            [c0 * rb0 + c1 * rb1 for c0, c1 in zip(counts0, counts1)],
            self._spilled,
        )

    def _make_spool(self, pid: int):
        from repro.storage.spill import Spool

        def make(port, generation):
            return Spool(
                self.ctx, self.ctx.governor, self._row_bytes[port],
                "%s#%d.p%d.%s%d" % (
                    self.name, self.op_id, pid, generation, port,
                ),
            )
        return make

    def _spill_partition(self, pid: int, ctx) -> int:
        from repro.storage.spill import spill_partition

        part = _PartitionSpill(self._make_spool(pid))
        self._spilled[pid] = part
        freed = 0
        for port in (0, 1):
            table = self._tables[port]
            doomed = [
                key for key in table if spill_partition(key) == pid
            ]
            moved = 0
            spool = part.frozen[port]
            row_bytes = self._row_bytes[port]
            for key in doomed:
                rows = table.pop(key)
                # Release before appending so the transfer never holds
                # the rows on both ledgers at once.
                self.account_state(-len(rows) * row_bytes)
                for row in rows:
                    moved += 1
                    spool.append(row)
            if moved:
                spool.flush()
                freed += moved * row_bytes
            self._part_rows[port][pid] = 0
        self.ctx.log(
            "%s spilled partition %d (%d bytes)" % (self.name, pid, freed)
        )
        return freed

    def _replay_spilled(self) -> None:
        """Emit the owed matches of every spilled partition: all pairs
        except frozen-left × frozen-right, which streamed out before
        the partition left memory.  One partition is resident at a
        time (Grace recursion depth 1)."""
        cm = self.ctx.cost_model
        rb0, rb1 = self._row_bytes
        self._replaying = True
        try:
            for pid in sorted(self._spilled):
                part = self._spilled[pid]
                r_frozen: Dict = {}
                r_delta: Dict = {}
                loaded = 0
                for target, spool in (
                    (r_frozen, part.frozen[1]), (r_delta, part.delta[1]),
                ):
                    for row in spool.records():
                        key = self._key_of(row, 1)
                        target.setdefault(key, []).append(row)
                        loaded += 1
                if loaded:
                    self.ctx.charge_events_op(self.op_id, loaded, cm.hash_insert)
                    self.account_state(loaded * rb1)
                # Left delta probes everything on the right …
                self._probe_spilled(
                    part.delta[0], (r_frozen, r_delta), cm
                )
                # … while the frozen left only owes the right delta.
                self._probe_spilled(
                    part.frozen[0], (r_delta,), cm
                )
                if loaded:
                    self.account_state(-loaded * rb1)
                for spool in part.spools():
                    spool.discard()
            self._spilled.clear()
        finally:
            self._replaying = False

    def _probe_spilled(self, left_spool, right_tables, cm) -> None:
        residual = self._residual
        probed = 0
        for row in left_spool.records():
            probed += 1
            key = self._key_of(row, 0)
            for table in right_tables:
                matches = table.get(key)
                if not matches:
                    continue
                for match in matches:
                    combined = row + match
                    if residual is not None:
                        self.ctx.charge_op(self.op_id, cm.predicate_eval)
                        if not residual(combined):
                            continue
                    self.ctx.charge_op(self.op_id, cm.output_build)
                    self.emit(combined)
        if probed:
            self.ctx.charge_events_op(self.op_id, probed, cm.hash_probe)

    # -- state exposure ----------------------------------------------------

    def state_values(self, port: int, attr_name: str):
        idx = self.input_schemas[port].index_of(attr_name)
        for rows in self._tables[port].values():
            for row in rows:
                yield row[idx]
        if self._spilled:
            # Spilled partitions stream back page by page — summaries
            # are built over them without re-materialising the state.
            for pid in sorted(self._spilled):
                part = self._spilled[pid]
                for spool in (part.frozen[port], part.delta[port]):
                    for row in spool.records():
                        yield row[idx]

    def stored_count(self, port: int) -> int:
        count = sum(len(rows) for rows in self._tables[port].values())
        if self._spilled:
            for part in self._spilled.values():
                count += (
                    part.frozen[port].n_records
                    + part.delta[port].n_records
                )
        return count

    def state_complete(self, port: int) -> bool:
        # Complete iff the port finished while still buffering: if the
        # opposite input completed first, short-circuiting stopped this
        # side's inserts and its table is partial.
        return self._input_done[port] and self._buffering[port]
