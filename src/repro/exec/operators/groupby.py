"""Hash-based aggregation.

Group-by is the blocking, stateful operator that motivates much of the
paper: its hash state is both an obstacle (nothing flows until the
input completes) and an opportunity (once complete, the group keys are
a perfect AIP set — Example 3.2 builds a Bloom filter from "the state
in the aggregation operator").

Under a memory governor the operator spills Grace-style: a partition
of the group-key space moves to disk as a run of pickled group records
(key values + accumulator state), and subsequent rows for that
partition are appended raw to a delta run without touching the hash
table.  When the input completes, each spilled partition is merged —
groups reloaded, delta rows replayed — one partition at a time, and
the merged records are written back to a single consolidated run so
that ``state_values`` (the AIP build path) and final emission both
stream it from disk instead of re-materialising every partition at
once.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.common.sizing import group_overhead_nbytes
from repro.data.schema import Schema
from repro.exec.context import ExecutionContext
from repro.exec.operators.base import Operator, Row
from repro.expr.aggregates import AggregateSpec
from repro.expr.compiler import compile_expr, compile_expr_columns


class PGroupBy(Operator):
    """Hash aggregation over zero or more key columns."""

    stateful = True

    def __init__(
        self,
        ctx: ExecutionContext,
        op_id: int,
        in_schema: Schema,
        out_schema: Schema,
        keys: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ):
        super().__init__(ctx, op_id, out_schema, [in_schema], "GroupBy")
        self._key_indices = tuple(in_schema.index_of(k) for k in keys)
        self._specs = tuple(aggregates)
        self._rebuild_compiled()
        #: group key -> (key values tuple, [accumulators])
        self._groups: Dict = {}
        self.keys = tuple(keys)
        self._group_bytes = (
            group_overhead_nbytes(len(self._key_indices))
            + sum(s.make_accumulator().byte_size() for s in aggregates)
        )
        if self._lease is not None:
            from repro.storage.spill import N_SPILL_PARTITIONS
            self._in_row_bytes = in_schema.row_byte_size()
            #: pid -> (group_spool, delta_spool) while streaming.
            self._spilled: Dict[int, tuple] = {}
            #: pid -> consolidated spool once the input finished.
            self._merged: Dict[int, object] = {}
            self._part_groups = [0] * N_SPILL_PARTITIONS
            self._replaying = False
        else:
            self._spilled = None
            self._merged = None

    _compiled_attrs = ("_agg_fns", "_agg_col_fns")

    def _rebuild_compiled(self) -> None:
        in_schema = self.input_schemas[0]
        self._agg_fns = tuple(
            compile_expr(s.input, in_schema) if s.input is not None else None
            for s in self._specs
        )
        #: Column kernels for the page path: aggregate inputs evaluate
        #: once per column batch instead of once per row per spec.
        self._agg_col_fns = tuple(
            compile_expr_columns(s.input, in_schema)
            if s.input is not None else None
            for s in self._specs
        )

    def _key_of(self, row: Row):
        indices = self._key_indices
        if len(indices) == 1:
            return row[indices[0]]
        return tuple(row[i] for i in indices)

    def push(self, row: Row, port: int = 0) -> None:
        cm = self.ctx.cost_model
        self.ctx.metrics.counters(self.op_id).tuples_in += 1
        self.ctx.charge_op(self.op_id, cm.tuple_base)
        if not self.passes_filters(row, 0):
            return

        key = self._key_of(row)
        pid = -1
        if self._spilled is not None:
            from repro.storage.spill import spill_partition
            pid = spill_partition(key)
            if pid in self._spilled:
                # Deferred: raw rows append to the partition's delta
                # run and are re-aggregated at completion.
                self.ctx.charge_op(self.op_id, cm.hash_insert)
                self._spilled[pid][1].append(row)
                self.ctx.strategy.after_tuple(self, 0, row)
                return
        self.ctx.charge_op(self.op_id, cm.hash_probe)
        group = self._groups.get(key)
        if group is None:
            accumulators = [s.make_accumulator() for s in self._specs]
            key_values = tuple(row[i] for i in self._key_indices)
            group = (key_values, accumulators)
            self._groups[key] = group
            self.ctx.charge_op(self.op_id, cm.hash_insert)
            if pid >= 0:
                self._part_groups[pid] += 1
            self.account_state(self._group_bytes)
        for fn, acc in zip(self._agg_fns, group[1]):
            self.ctx.charge_op(self.op_id, cm.agg_update)
            acc.add(fn(row) if fn is not None else None)

        self.ctx.strategy.after_tuple(self, 0, row)

    def push_batch(self, rows, port: int = 0) -> None:
        """Accumulate a whole batch into the hash state with bulk cost
        charging; per-row grouping decisions match :meth:`push`."""
        if self._lease is not None:
            for row in rows:
                self.push(row, port)
            return
        cm = self.ctx.cost_model
        metrics = self.ctx.metrics
        metrics.counters(self.op_id).tuples_in += len(rows)
        self.ctx.charge_events_op(self.op_id, len(rows), cm.tuple_base)
        rows = self.passes_filters_batch(rows, 0)
        if not rows:
            return
        self.ctx.charge_events_op(self.op_id, len(rows), cm.hash_probe)

        indices = self._key_indices
        single = len(indices) == 1
        idx0 = indices[0] if single else None
        groups = self._groups
        specs = self._specs
        fns = self._agg_fns
        new_groups = 0
        for row in rows:
            key = row[idx0] if single else tuple(row[i] for i in indices)
            group = groups.get(key)
            if group is None:
                accumulators = [s.make_accumulator() for s in specs]
                group = (tuple(row[i] for i in indices), accumulators)
                groups[key] = group
                new_groups += 1
            for fn, acc in zip(fns, group[1]):
                acc.add(fn(row) if fn is not None else None)

        if new_groups:
            self.ctx.charge_events_op(self.op_id, new_groups, cm.hash_insert)
            metrics.adjust_state(self.op_id, new_groups * self._group_bytes)
        if specs:
            self.ctx.charge_events_op(self.op_id, len(rows) * len(specs), cm.agg_update)
        self.ctx.strategy.after_tuples(self, 0, rows)

    def push_page(self, page, port: int = 0) -> None:
        """Page kernel: group keys come straight off the key column(s)
        and aggregate inputs evaluate column-at-a-time; the page's rows
        are never re-materialised."""
        if self._lease is not None:
            self.push_batch(page.rows(), port)
            return
        cm = self.ctx.cost_model
        metrics = self.ctx.metrics
        n_in = page.n_rows
        metrics.counters(self.op_id).tuples_in += n_in
        self.ctx.charge_events_op(self.op_id, n_in, cm.tuple_base)
        page = self.passes_filters_page(page, 0)
        n = page.n_rows
        if not n:
            return
        self.ctx.charge_events_op(self.op_id, n, cm.hash_probe)

        indices = self._key_indices
        single = len(indices) == 1
        if single:
            keys = page.columns[indices[0]]
        elif indices:
            keys = list(zip(*[page.columns[i] for i in indices]))
        else:
            keys = [()] * n  # keyless aggregate: one global group
        cols = page.columns
        specs = self._specs
        val_cols = tuple(
            fn(cols, n) if fn is not None else None
            for fn in self._agg_col_fns
        )
        groups = self._groups
        new_groups = 0
        for i, key in enumerate(keys):
            group = groups.get(key)
            if group is None:
                accumulators = [s.make_accumulator() for s in specs]
                group = ((key,) if single else key, accumulators)
                groups[key] = group
                new_groups += 1
            for vals, acc in zip(val_cols, group[1]):
                acc.add(vals[i] if vals is not None else None)

        if new_groups:
            self.ctx.charge_events_op(self.op_id, new_groups, cm.hash_insert)
            metrics.adjust_state(self.op_id, new_groups * self._group_bytes)
        if specs:
            self.ctx.charge_events_op(self.op_id, n * len(specs), cm.agg_update)
        self.ctx.strategy.after_tuples_page(self, 0, page)
        self._page_stats(n_in, n)

    def finish(self, port: int = 0) -> None:
        self._mark_input_done(port)
        if self._spilled:
            # Merge every spilled partition into its consolidated run
            # *before* the strategy hook, so AIP sets built at
            # on_input_finished stream final, complete state.
            self._consolidate_spilled()
        self.ctx.strategy.on_input_finished(self, 0)
        cm = self.ctx.cost_model
        if (
            not self._key_indices
            and not self._groups
            and not self._merged
        ):
            # SQL semantics: a keyless aggregate over an empty input
            # still produces one row (SUM -> 0-or-None per accumulator).
            self.ctx.charge_op(self.op_id, cm.output_build)
            self.emit(tuple(
                s.make_accumulator().result() for s in self._specs
            ))
        for key_values, accumulators in self._groups.values():
            self.ctx.charge_op(self.op_id, cm.output_build)
            self.emit(key_values + tuple(a.result() for a in accumulators))
        if self._merged:
            for pid in sorted(self._merged):
                spool = self._merged[pid]
                for _key, key_values, accumulators in spool.records():
                    self.ctx.charge_op(self.op_id, cm.output_build)
                    self.emit(
                        key_values + tuple(a.result() for a in accumulators)
                    )
                spool.discard()
            self._merged.clear()
        self._release_state()
        self.finish_output()

    def _release_state(self) -> None:
        if self._groups:
            self.account_state(-len(self._groups) * self._group_bytes)
            self._groups.clear()

    # -- spilling ----------------------------------------------------------

    def spillable_nbytes(self) -> int:
        if self._spilled is None or self._replaying:
            return 0
        return self._lease.nbytes

    def spill(self, need_bytes: int, ctx) -> int:
        if self._spilled is None or self._replaying:
            return 0
        from repro.storage.spill import (
            Spool, pick_spill_victim, spill_partition,
        )

        freed = 0
        while freed < need_bytes:
            best = pick_spill_victim(self._part_groups, self._spilled)
            if best is None:
                break
            label = "%s#%d.p%d" % (self.name, self.op_id, best)
            group_spool = Spool(
                self.ctx, self.ctx.governor, self._group_bytes,
                label + ".groups",
            )
            delta_spool = Spool(
                self.ctx, self.ctx.governor, self._in_row_bytes,
                label + ".delta",
            )
            self._spilled[best] = (group_spool, delta_spool)
            moved = 0
            for key in [
                k for k in self._groups if spill_partition(k) == best
            ]:
                key_values, accumulators = self._groups.pop(key)
                self.account_state(-self._group_bytes)
                group_spool.append((key, key_values, accumulators))
                moved += 1
            group_spool.flush()
            self._part_groups[best] = 0
            if moved:
                freed += moved * self._group_bytes
            self.ctx.log(
                "%s spilled partition %d (%d groups)"
                % (self.name, best, moved)
            )
        return freed

    def _merge_partition(self, pid: int) -> Dict:
        """Reload one spilled partition's groups and replay its delta
        rows; returns the merged ``key -> (key_values, accumulators)``
        dict (caller accounts and releases its residency)."""
        cm = self.ctx.cost_model
        group_spool, delta_spool = self._spilled[pid]
        merged: Dict = {}
        for key, key_values, accumulators in group_spool.records():
            merged[key] = (key_values, accumulators)
            self.ctx.charge_op(self.op_id, cm.hash_insert)
            self.account_state(self._group_bytes)
        replayed = 0
        for row in delta_spool.records():
            replayed += 1
            key = self._key_of(row)
            group = merged.get(key)
            if group is None:
                accumulators = [s.make_accumulator() for s in self._specs]
                group = (
                    tuple(row[i] for i in self._key_indices), accumulators
                )
                merged[key] = group
                self.ctx.charge_op(self.op_id, cm.hash_insert)
                self.account_state(self._group_bytes)
            for fn, acc in zip(self._agg_fns, group[1]):
                acc.add(fn(row) if fn is not None else None)
        if replayed:
            self.ctx.charge_events_op(self.op_id, replayed, cm.hash_probe)
            if self._specs:
                self.ctx.charge_events_op(self.op_id, 
                    replayed * len(self._specs), cm.agg_update
                )
        return merged

    def _consolidate_spilled(self) -> None:
        """Merge each spilled partition (one at a time) into a single
        consolidated run per partition."""
        from repro.storage.spill import Spool

        self._replaying = True
        try:
            for pid in sorted(self._spilled):
                merged = self._merge_partition(pid)
                spool = Spool(
                    self.ctx, self.ctx.governor, self._group_bytes,
                    "%s#%d.p%d.merged" % (self.name, self.op_id, pid),
                )
                for key, (key_values, accumulators) in merged.items():
                    self.account_state(-self._group_bytes)
                    spool.append((key, key_values, accumulators))
                spool.flush()
                group_spool, delta_spool = self._spilled[pid]
                group_spool.discard()
                delta_spool.discard()
                self._merged[pid] = spool
            self._spilled.clear()
        finally:
            self._replaying = False

    # -- state exposure ----------------------------------------------------

    def _spilled_group_records(self):
        """Stream every spilled group record (merged runs after the
        input finished; merge-on-the-fly before)."""
        if self._merged:
            for pid in sorted(self._merged):
                yield from self._merged[pid].records()
        if self._spilled:
            self._replaying = True
            try:
                for pid in sorted(self._spilled):
                    merged = self._merge_partition(pid)
                    try:
                        for key, (key_values, accs) in merged.items():
                            yield key, key_values, accs
                    finally:
                        if merged:
                            self.account_state(
                                -len(merged) * self._group_bytes
                            )
            finally:
                self._replaying = False

    def state_values(self, port: int, attr_name: str):
        """Values of a key or aggregate output attribute across the
        buffered groups.  Aggregate outputs become available as AIP set
        material once the input completes (e.g. the set of per-part MIN
        supply costs, which can prune a parent's PARTSUPP rows)."""
        if attr_name in self.keys:
            pos = self.keys.index(attr_name)
            for key_values, _ in self._groups.values():
                yield key_values[pos]
            if self._spilled or self._merged:
                for _key, key_values, _accs in self._spilled_group_records():
                    yield key_values[pos]
            return
        agg_names = [s.output_name for s in self._specs]
        pos = agg_names.index(attr_name)
        for _, accumulators in self._groups.values():
            yield accumulators[pos].result()
        if self._spilled or self._merged:
            for _key, _kv, accumulators in self._spilled_group_records():
                yield accumulators[pos].result()

    def stored_count(self, port: int) -> int:
        count = len(self._groups)
        if self._spilled:
            for group_spool, _delta in self._spilled.values():
                # Delta rows may add unseen groups; the run count is a
                # lower bound, which only makes AIP sizing conservative.
                count += group_spool.n_records
        if self._merged:
            for spool in self._merged.values():
                count += spool.n_records
        return count

    def state_complete(self, port: int) -> bool:
        return self._input_done[0]
