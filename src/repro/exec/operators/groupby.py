"""Hash-based aggregation.

Group-by is the blocking, stateful operator that motivates much of the
paper: its hash state is both an obstacle (nothing flows until the
input completes) and an opportunity (once complete, the group keys are
a perfect AIP set — Example 3.2 builds a Bloom filter from "the state
in the aggregation operator").
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.data.schema import Schema
from repro.exec.context import ExecutionContext
from repro.exec.operators.base import Operator, Row
from repro.expr.aggregates import AggregateSpec
from repro.expr.compiler import compile_expr


class PGroupBy(Operator):
    """Hash aggregation over zero or more key columns."""

    stateful = True

    def __init__(
        self,
        ctx: ExecutionContext,
        op_id: int,
        in_schema: Schema,
        out_schema: Schema,
        keys: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ):
        super().__init__(ctx, op_id, out_schema, [in_schema], "GroupBy")
        self._key_indices = tuple(in_schema.index_of(k) for k in keys)
        self._specs = tuple(aggregates)
        self._agg_fns = tuple(
            compile_expr(s.input, in_schema) if s.input is not None else None
            for s in aggregates
        )
        #: group key -> (key values tuple, [accumulators])
        self._groups: Dict = {}
        self.keys = tuple(keys)
        self._group_bytes = (
            16 + 8 * len(self._key_indices)
            + sum(s.make_accumulator().byte_size() for s in aggregates)
        )

    def _key_of(self, row: Row):
        indices = self._key_indices
        if len(indices) == 1:
            return row[indices[0]]
        return tuple(row[i] for i in indices)

    def push(self, row: Row, port: int = 0) -> None:
        cm = self.ctx.cost_model
        self.ctx.metrics.counters(self.op_id).tuples_in += 1
        self.ctx.charge(cm.tuple_base)
        if not self.passes_filters(row, 0):
            return

        key = self._key_of(row)
        self.ctx.charge(cm.hash_probe)
        group = self._groups.get(key)
        if group is None:
            accumulators = [s.make_accumulator() for s in self._specs]
            key_values = tuple(row[i] for i in self._key_indices)
            group = (key_values, accumulators)
            self._groups[key] = group
            self.ctx.charge(cm.hash_insert)
            self.ctx.metrics.adjust_state(self.op_id, self._group_bytes)
        for fn, acc in zip(self._agg_fns, group[1]):
            self.ctx.charge(cm.agg_update)
            acc.add(fn(row) if fn is not None else None)

        self.ctx.strategy.after_tuple(self, 0, row)

    def push_batch(self, rows, port: int = 0) -> None:
        """Accumulate a whole batch into the hash state with bulk cost
        charging; per-row grouping decisions match :meth:`push`."""
        cm = self.ctx.cost_model
        metrics = self.ctx.metrics
        metrics.counters(self.op_id).tuples_in += len(rows)
        self.ctx.charge_events(len(rows), cm.tuple_base)
        rows = self.passes_filters_batch(rows, 0)
        if not rows:
            return
        self.ctx.charge_events(len(rows), cm.hash_probe)

        indices = self._key_indices
        single = len(indices) == 1
        idx0 = indices[0] if single else None
        groups = self._groups
        specs = self._specs
        fns = self._agg_fns
        new_groups = 0
        for row in rows:
            key = row[idx0] if single else tuple(row[i] for i in indices)
            group = groups.get(key)
            if group is None:
                accumulators = [s.make_accumulator() for s in specs]
                group = (tuple(row[i] for i in indices), accumulators)
                groups[key] = group
                new_groups += 1
            for fn, acc in zip(fns, group[1]):
                acc.add(fn(row) if fn is not None else None)

        if new_groups:
            self.ctx.charge_events(new_groups, cm.hash_insert)
            metrics.adjust_state(self.op_id, new_groups * self._group_bytes)
        if specs:
            self.ctx.charge_events(len(rows) * len(specs), cm.agg_update)
        self.ctx.strategy.after_tuples(self, 0, rows)

    def finish(self, port: int = 0) -> None:
        self._mark_input_done(port)
        self.ctx.strategy.on_input_finished(self, 0)
        cm = self.ctx.cost_model
        if not self._key_indices and not self._groups:
            # SQL semantics: a keyless aggregate over an empty input
            # still produces one row (SUM -> 0-or-None per accumulator).
            self.ctx.charge(cm.output_build)
            self.emit(tuple(
                s.make_accumulator().result() for s in self._specs
            ))
        for key_values, accumulators in self._groups.values():
            self.ctx.charge(cm.output_build)
            self.emit(key_values + tuple(a.result() for a in accumulators))
        self._release_state()
        self.finish_output()

    def _release_state(self) -> None:
        if self._groups:
            self.ctx.metrics.adjust_state(
                self.op_id, -len(self._groups) * self._group_bytes
            )
            self._groups.clear()

    # -- state exposure ----------------------------------------------------

    def state_values(self, port: int, attr_name: str):
        """Values of a key or aggregate output attribute across the
        buffered groups.  Aggregate outputs become available as AIP set
        material once the input completes (e.g. the set of per-part MIN
        supply costs, which can prune a parent's PARTSUPP rows)."""
        if attr_name in self.keys:
            pos = self.keys.index(attr_name)
            for key_values, _ in self._groups.values():
                yield key_values[pos]
            return
        agg_names = [s.output_name for s in self._specs]
        pos = agg_names.index(attr_name)
        for _, accumulators in self._groups.values():
            yield accumulators[pos].result()

    def stored_count(self, port: int) -> int:
        return len(self._groups)

    def state_complete(self, port: int) -> bool:
        return self._input_done[0]
