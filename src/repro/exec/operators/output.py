"""Result sink."""

from __future__ import annotations

from typing import List

from repro.data.schema import Schema
from repro.exec.context import ExecutionContext
from repro.exec.operators.base import Operator, Row


class POutput(Operator):
    """Collects final result rows at the plan root."""

    def __init__(self, ctx: ExecutionContext, op_id: int, schema: Schema):
        super().__init__(ctx, op_id, schema, [schema], "Output")
        self.rows: List[Row] = []
        self.finished = False
        #: Optional ``fn(sink)`` invoked when the sink completes; the
        #: concurrent harness uses it to record per-plan finish clocks.
        self.finish_listener = None

    def push(self, row: Row, port: int = 0) -> None:
        self.ctx.metrics.counters(self.op_id).tuples_in += 1
        self.ctx.charge_op(self.op_id, self.ctx.cost_model.tuple_base)
        self.rows.append(row)
        self.ctx.metrics.result_rows += 1

    def push_batch(self, rows: List[Row], port: int = 0) -> None:
        self.ctx.metrics.counters(self.op_id).tuples_in += len(rows)
        self.ctx.charge_events_op(self.op_id, len(rows), self.ctx.cost_model.tuple_base)
        self.rows.extend(rows)
        self.ctx.metrics.result_rows += len(rows)

    def push_page(self, page, port: int = 0) -> None:
        n = page.n_rows
        self.ctx.metrics.counters(self.op_id).tuples_in += n
        self.ctx.charge_events_op(self.op_id, n, self.ctx.cost_model.tuple_base)
        self.rows.extend(page.rows())
        self.ctx.metrics.result_rows += n
        self._page_stats(n, n)

    def finish(self, port: int = 0) -> None:
        self._mark_input_done(port)
        self.finished = True
        if self.finish_listener is not None:
            self.finish_listener(self)
