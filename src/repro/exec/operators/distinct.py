"""Duplicate elimination.

Pipelined: the first occurrence of a row is forwarded immediately, so a
distinct does not block, but it buffers every distinct row seen — state
the paper explicitly calls out as an AIP source (Example 3.1 builds a
hash set "from the state in the distinct operator").

Under a memory governor the seen-set spills Grace-style by whole-row
hash partition: a spilled partition's distinct rows move to a disk run,
and later arrivals for that partition are *deferred* to a delta run —
their duplicate status is unknowable without the disk-resident set, so
they are neither forwarded nor dropped until the input completes.  At
completion each partition is replayed one at a time: the seen run
reloads, delta rows stream through it in arrival order, and fresh rows
are emitted (and appended to the seen run, which then holds the
partition's complete distinct set for ``state_values``).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.data.schema import Schema
from repro.exec.context import ExecutionContext
from repro.exec.operators.base import Operator, Row


class PDistinct(Operator):
    """Hash-set based duplicate elimination over full rows."""

    stateful = True

    def __init__(self, ctx: ExecutionContext, op_id: int, schema: Schema):
        super().__init__(ctx, op_id, schema, [schema], "Distinct")
        self._seen: Set[Row] = set()
        self._row_bytes = schema.row_byte_size()
        if self._lease is not None:
            from repro.storage.spill import N_SPILL_PARTITIONS
            #: pid -> (seen_spool, delta_spool).
            self._spilled: Dict[int, tuple] = {}
            self._part_rows = [0] * N_SPILL_PARTITIONS
            self._replaying = False
        else:
            self._spilled = None

    def push(self, row: Row, port: int = 0) -> None:
        cm = self.ctx.cost_model
        self.ctx.metrics.counters(self.op_id).tuples_in += 1
        # ``hash_probe`` only when the seen-set is actually probed: a
        # row pruned by an injected AIP filter never reaches it.
        self.ctx.charge_op(self.op_id, cm.tuple_base)
        if not self.passes_filters(row, 0):
            return
        pid = -1
        if self._spilled is not None:
            from repro.storage.spill import spill_partition
            pid = spill_partition(row)
            if pid in self._spilled:
                # Deferred: duplicate status is unknowable while the
                # partition's seen-set sits on disk.
                self.ctx.charge_op(self.op_id, cm.hash_insert)
                self._spilled[pid][1].append(row)
                self.ctx.strategy.after_tuple(self, 0, row)
                return
        self.ctx.charge_op(self.op_id, cm.hash_probe)
        if row in self._seen:
            return
        self.ctx.charge_op(self.op_id, cm.hash_insert)
        self._seen.add(row)
        if pid >= 0:
            self._part_rows[pid] += 1
        self.account_state(self._row_bytes)
        self.ctx.strategy.after_tuple(self, 0, row)
        self.emit(row)

    def push_batch(self, rows, port: int = 0) -> None:
        """Deduplicate a whole batch: first occurrences are forwarded in
        order, with bulk cost charging matching :meth:`push`."""
        if self._lease is not None:
            for row in rows:
                self.push(row, port)
            return
        cm = self.ctx.cost_model
        metrics = self.ctx.metrics
        metrics.counters(self.op_id).tuples_in += len(rows)
        self.ctx.charge_events_op(self.op_id, len(rows), cm.tuple_base)
        rows = self.passes_filters_batch(rows, 0)
        if not rows:
            return
        self.ctx.charge_events_op(self.op_id, len(rows), cm.hash_probe)
        seen = self._seen
        add = seen.add
        fresh = []
        append = fresh.append
        for row in rows:
            if row not in seen:
                add(row)
                append(row)
        if fresh:
            self.ctx.charge_events_op(self.op_id, len(fresh), cm.hash_insert)
            metrics.adjust_state(self.op_id, len(fresh) * self._row_bytes)
            self.ctx.strategy.after_tuples(self, 0, fresh)
            self.emit_batch(fresh)

    def push_page(self, page, port: int = 0) -> None:
        """Page kernel: the seen-set stores whole rows, so the page is
        re-materialised once after AIP probing; the strategy hook sees
        only the fresh rows (never the full page), matching the batch
        path."""
        if self._lease is not None:
            self.push_batch(page.rows(), port)
            return
        cm = self.ctx.cost_model
        metrics = self.ctx.metrics
        n_in = page.n_rows
        metrics.counters(self.op_id).tuples_in += n_in
        self.ctx.charge_events_op(self.op_id, n_in, cm.tuple_base)
        page = self.passes_filters_page(page, 0)
        if not page.n_rows:
            return
        self.ctx.charge_events_op(self.op_id, page.n_rows, cm.hash_probe)
        seen = self._seen
        add = seen.add
        fresh = []
        append = fresh.append
        for row in page.rows():
            if row not in seen:
                add(row)
                append(row)
        self._page_stats(n_in, len(fresh))
        if fresh:
            self.ctx.charge_events_op(self.op_id, len(fresh), cm.hash_insert)
            metrics.adjust_state(self.op_id, len(fresh) * self._row_bytes)
            self.ctx.strategy.after_tuples(self, 0, fresh)
            self.emit_batch(fresh)

    def finish(self, port: int = 0) -> None:
        self._mark_input_done(port)
        if self._spilled:
            # Deferred rows emit before the strategy hook, matching the
            # in-memory operator where all emission precedes finish.
            self._replay_spilled()
        self.ctx.strategy.on_input_finished(self, 0)
        if self._seen:
            self.account_state(-len(self._seen) * self._row_bytes)
            self._seen.clear()
        if self._spilled:
            for seen_spool, delta_spool in self._spilled.values():
                seen_spool.discard()
                delta_spool.discard()
            self._spilled.clear()
        self.finish_output()

    # -- spilling ----------------------------------------------------------

    def spillable_nbytes(self) -> int:
        if self._spilled is None or self._replaying:
            return 0
        return self._lease.nbytes

    def spill(self, need_bytes: int, ctx) -> int:
        if self._spilled is None or self._replaying:
            return 0
        from repro.storage.spill import (
            Spool, pick_spill_victim, spill_partition,
        )

        freed = 0
        while freed < need_bytes:
            best = pick_spill_victim(self._part_rows, self._spilled)
            if best is None:
                break
            label = "%s#%d.p%d" % (self.name, self.op_id, best)
            seen_spool = Spool(
                self.ctx, self.ctx.governor, self._row_bytes,
                label + ".seen",
            )
            delta_spool = Spool(
                self.ctx, self.ctx.governor, self._row_bytes,
                label + ".delta",
            )
            self._spilled[best] = (seen_spool, delta_spool)
            doomed = [
                row for row in self._seen if spill_partition(row) == best
            ]
            for row in doomed:
                self._seen.discard(row)
                self.account_state(-self._row_bytes)
                seen_spool.append(row)
            seen_spool.flush()
            self._part_rows[best] = 0
            if doomed:
                freed += len(doomed) * self._row_bytes
            self.ctx.log(
                "%s spilled partition %d (%d rows)"
                % (self.name, best, len(doomed))
            )
        return freed

    def _replay_spilled(self) -> None:
        """Per partition: reload the seen run, stream delta rows in
        arrival order, emit the fresh ones (appending them to the seen
        run so it holds the partition's complete distinct set)."""
        cm = self.ctx.cost_model
        self._replaying = True
        try:
            for pid in sorted(self._spilled):
                seen_spool, delta_spool = self._spilled[pid]
                part_seen: Set[Row] = set()
                for row in seen_spool.records():
                    part_seen.add(row)
                if part_seen:
                    self.account_state(len(part_seen) * self._row_bytes)
                replayed = 0
                for row in delta_spool.records():
                    replayed += 1
                    if row in part_seen:
                        continue
                    part_seen.add(row)
                    self.account_state(self._row_bytes)
                    seen_spool.append(row)
                    self.ctx.charge_op(self.op_id, cm.output_build)
                    self.emit(row)
                if replayed:
                    self.ctx.charge_events_op(self.op_id, replayed, cm.hash_probe)
                delta_spool.discard()
                if part_seen:
                    self.account_state(-len(part_seen) * self._row_bytes)
        finally:
            self._replaying = False

    # -- state exposure ----------------------------------------------------

    def state_values(self, port: int, attr_name: str):
        idx = self.input_schemas[0].index_of(attr_name)
        for row in self._seen:
            yield row[idx]
        if self._spilled:
            for pid in sorted(self._spilled):
                seen_spool, _delta = self._spilled[pid]
                for row in seen_spool.records():
                    yield row[idx]

    def stored_count(self, port: int) -> int:
        count = len(self._seen)
        if self._spilled:
            for seen_spool, _delta in self._spilled.values():
                count += seen_spool.n_records
        return count

    def state_complete(self, port: int) -> bool:
        return self._input_done[0]
