"""Duplicate elimination.

Pipelined: the first occurrence of a row is forwarded immediately, so a
distinct does not block, but it buffers every distinct row seen — state
the paper explicitly calls out as an AIP source (Example 3.1 builds a
hash set "from the state in the distinct operator").
"""

from __future__ import annotations

from typing import Set

from repro.data.schema import Schema
from repro.exec.context import ExecutionContext
from repro.exec.operators.base import Operator, Row


class PDistinct(Operator):
    """Hash-set based duplicate elimination over full rows."""

    stateful = True

    def __init__(self, ctx: ExecutionContext, op_id: int, schema: Schema):
        super().__init__(ctx, op_id, schema, [schema], "Distinct")
        self._seen: Set[Row] = set()
        self._row_bytes = schema.row_byte_size()

    def push(self, row: Row, port: int = 0) -> None:
        cm = self.ctx.cost_model
        self.ctx.metrics.counters(self.op_id).tuples_in += 1
        # ``hash_probe`` only when the seen-set is actually probed: a
        # row pruned by an injected AIP filter never reaches it.
        self.ctx.charge(cm.tuple_base)
        if not self.passes_filters(row, 0):
            return
        self.ctx.charge(cm.hash_probe)
        if row in self._seen:
            return
        self.ctx.charge(cm.hash_insert)
        self._seen.add(row)
        self.ctx.metrics.adjust_state(self.op_id, self._row_bytes)
        self.ctx.strategy.after_tuple(self, 0, row)
        self.emit(row)

    def push_batch(self, rows, port: int = 0) -> None:
        """Deduplicate a whole batch: first occurrences are forwarded in
        order, with bulk cost charging matching :meth:`push`."""
        cm = self.ctx.cost_model
        metrics = self.ctx.metrics
        metrics.counters(self.op_id).tuples_in += len(rows)
        self.ctx.charge_events(len(rows), cm.tuple_base)
        rows = self.passes_filters_batch(rows, 0)
        if not rows:
            return
        self.ctx.charge_events(len(rows), cm.hash_probe)
        seen = self._seen
        add = seen.add
        fresh = []
        append = fresh.append
        for row in rows:
            if row not in seen:
                add(row)
                append(row)
        if fresh:
            self.ctx.charge_events(len(fresh), cm.hash_insert)
            metrics.adjust_state(self.op_id, len(fresh) * self._row_bytes)
            self.ctx.strategy.after_tuples(self, 0, fresh)
            self.emit_batch(fresh)

    def finish(self, port: int = 0) -> None:
        self._mark_input_done(port)
        self.ctx.strategy.on_input_finished(self, 0)
        if self._seen:
            self.ctx.metrics.adjust_state(
                self.op_id, -len(self._seen) * self._row_bytes
            )
            self._seen.clear()
        self.finish_output()

    # -- state exposure ----------------------------------------------------

    def state_values(self, port: int, attr_name: str):
        idx = self.input_schemas[0].index_of(attr_name)
        for row in self._seen:
            yield row[idx]

    def stored_count(self, port: int) -> int:
        return len(self._seen)

    def state_complete(self, port: int) -> bool:
        return self._input_done[0]
