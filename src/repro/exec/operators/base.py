"""Physical operator base class.

Operators form a tree mirroring the logical plan.  Data flows *up*:
children call ``parent.push(row, port)`` and, at end of stream,
``parent.finish(port)``.  The engine only ever drives scans; everything
else reacts.

Two AIP-specific mechanisms live here because the paper implements
them inside the query operators (Section V-B):

* **injected semijoin filters** — "we extended our join and group-by
  implementations to support registration of new semijoin operators on
  the fly; these semijoins are called when a tuple is received and
  before it is processed internally by the operator";
* **state exposure** — "all stateful operators employ standardized
  data structures ... for preserving intermediate state, which they
  expose to the execution engine for use in AIP"
  (:meth:`Operator.state_values`, :meth:`Operator.stored_count`).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.common.errors import ExecutionError
from repro.data.schema import Schema
from repro.exec.context import ExecutionContext

Row = Tuple


class InjectedFilter:
    """A semijoin filter registered on one operator input port."""

    __slots__ = ("key_index", "attr_name", "summary", "label", "pruned", "probed")

    def __init__(self, key_index: int, attr_name: str, summary, label: str):
        self.key_index = key_index
        self.attr_name = attr_name
        self.summary = summary
        self.label = label
        self.pruned = 0
        self.probed = 0

    def passes(self, row: Row) -> bool:
        self.probed += 1
        if row[self.key_index] in self.summary:
            return True
        self.pruned += 1
        return False

    def passes_many(self, rows: List[Row]) -> List[Row]:
        """Probe a whole batch in one summary call, returning the
        surviving rows in order.  ``probed``/``pruned`` advance exactly
        as ``passes`` called per row would advance them."""
        if not rows:
            return rows
        self.probed += len(rows)
        idx = self.key_index
        verdicts = self.summary.might_contain_many(
            [row[idx] for row in rows]
        )
        if all(verdicts):
            return rows
        survivors = [row for row, ok in zip(rows, verdicts) if ok]
        self.pruned += len(rows) - len(survivors)
        return survivors

    def passes_page(self, page):
        """Probe a column batch: the key column feeds the summary's
        batch probe directly (no per-row gather), and survivors come
        back as a selection of the page.  Counter advancement matches
        :meth:`passes_many` over the same rows exactly."""
        if not page.n_rows:
            return page
        self.probed += page.n_rows
        verdicts = self.summary.might_contain_many(
            page.columns[self.key_index]
        )
        if all(verdicts):
            return page
        selection = [i for i, ok in enumerate(verdicts) if ok]
        self.pruned += page.n_rows - len(selection)
        return page.select(selection)


class Operator:
    """Base class for all physical operators."""

    #: Number of input ports (overridden by joins).
    n_inputs = 1
    #: Whether this operator buffers state usable for AIP.
    stateful = False
    #: Whether the engine may drive plans containing this operator on
    #: the batch-vectorized path.  Batching processes a whole arrival
    #: run operator-at-a-time, which reorders state-accounting deltas
    #: *across* operators; that is observably identical only while every
    #: mid-stream delta is non-negative (peak state is then reached at
    #: the end of the run under any ordering).  Operators that release
    #: state mid-stream (the pipelined semijoin's pending-buffer
    #: flushes) must set this False so such plans keep the per-tuple
    #: path and peak-state accounting stays bit-identical.
    batch_safe = True

    def __init__(
        self,
        ctx: ExecutionContext,
        op_id: int,
        out_schema: Schema,
        input_schemas: List[Schema],
        name: str,
    ):
        self.ctx = ctx
        self.op_id = op_id
        self.out_schema = out_schema
        self.input_schemas = input_schemas
        self.name = name
        #: Consumers: ``(operator, port)`` pairs.  Plans are usually
        #: trees (one consumer), but shared subexpressions — e.g. the
        #: outer query feeding both the final join and a magic filter
        #: set — give an operator several parents.
        self.parents: List[Tuple["Operator", int]] = []
        self.children: List[Optional["Operator"]] = [None] * self.n_inputs
        # Scans (n_inputs == 0) still accept engine-side filters on a
        # virtual port 0 — AIP semijoins are injected "after X is read".
        self._filters: List[List[InjectedFilter]] = [
            [] for _ in range(max(1, self.n_inputs))
        ]
        self._input_done: List[bool] = [False] * self.n_inputs
        self._output_done = False
        # Under a memory governor every stateful operator accounts its
        # buffered bytes on a lease and volunteers as a spill target;
        # un-governed runs carry only this None (bit-identical paths).
        governor = ctx.governor
        if governor is not None and self.stateful:
            self._lease = governor.lease(self.name)
            governor.register_spillable(self)
        else:
            self._lease = None

    # -- pickling --------------------------------------------------------

    #: Attribute names holding *compiled* expression closures (generated
    #: functions, lambdas over them).  Closures cannot be pickled, so
    #: task shipping drops them from the state dict and the receiving
    #: process recompiles from the stored ASTs via
    #: :meth:`_rebuild_compiled`.  Subclasses with compiled state list
    #: their attrs here and override the rebuild hook.
    _compiled_attrs: Tuple[str, ...] = ()

    def __getstate__(self):
        if not self._compiled_attrs:
            return dict(self.__dict__)
        state = dict(self.__dict__)
        for attr in self._compiled_attrs:
            state.pop(attr, None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        if self._compiled_attrs:
            self._rebuild_compiled()

    def _rebuild_compiled(self) -> None:
        """Recompile every attribute named in :attr:`_compiled_attrs`
        from the operator's stored expression ASTs and schemas.  Called
        at construction and again after unpickling."""

    # -- wiring ---------------------------------------------------------

    def connect_child(self, child: "Operator", port: int) -> None:
        if not 0 <= port < self.n_inputs:
            raise ExecutionError(
                "operator %s has no input port %d" % (self.name, port)
            )
        self.children[port] = child
        child.parents.append((self, port))

    def walk(self) -> Iterable["Operator"]:
        """All operators in the DAG rooted here, each exactly once."""
        seen = set()
        stack: List["Operator"] = [self]
        while stack:
            op = stack.pop()
            if op.op_id in seen:
                continue
            seen.add(op.op_id)
            yield op
            for child in op.children:
                if child is not None:
                    stack.append(child)

    # -- filter registration (AIP injection point) ----------------------

    def register_filter(
        self, port: int, attr_name: str, summary, label: str = ""
    ) -> InjectedFilter:
        """Install a semijoin filter on ``port``; arriving tuples whose
        ``attr_name`` value is rejected by ``summary`` are discarded
        before the operator processes them."""
        schema = self.input_schemas[port] if self.input_schemas else self.out_schema
        f = InjectedFilter(schema.index_of(attr_name), attr_name, summary, label)
        self._filters[port].append(f)
        tracer = self.ctx.tracer
        if tracer is not None:
            tracer.instant(
                "aip.inject", "aip", self.ctx.metrics.clock_ticks,
                {
                    "op": self.name, "port": port, "attr": attr_name,
                    "label": label,
                },
            )
        self.ctx.log(
            "filter %s injected on %s port %d (%s)"
            % (label or "<anon>", self.name, port, attr_name)
        )
        return f

    def filters_on(self, port: int) -> List[InjectedFilter]:
        return list(self._filters[port])

    def replace_filter(
        self, port: int, old: InjectedFilter, new: InjectedFilter
    ) -> None:
        """Swap a weaker filter for a strictly stronger one (Section
        IV-B: an existing filter over the same key may be directly
        replaced)."""
        filters = self._filters[port]
        filters[filters.index(old)] = new

    def passes_filters(self, row: Row, port: int) -> bool:
        """Probe all injected filters; charges probe cost per filter."""
        filters = self._filters[port]
        if not filters:
            return True
        cost = self.ctx.cost_model.semijoin_probe
        counters = self.ctx.metrics.counters(self.op_id)
        for f in filters:
            self.ctx.charge_op(self.op_id, cost)
            if not f.passes(row):
                counters.tuples_pruned += 1
                return False
        return True

    def passes_filters_batch(self, rows: List[Row], port: int) -> List[Row]:
        """Vet a whole batch against the injected filters in one call,
        returning the surviving rows in order.  Charging matches the
        per-row form exactly: each filter bills one probe per row still
        alive when it is reached (pruned rows never probe later
        filters)."""
        filters = self._filters[port]
        if not filters:
            return rows
        cost = self.ctx.cost_model.semijoin_probe
        alive = rows
        for f in filters:
            self.ctx.charge_events_op(self.op_id, len(alive), cost)
            alive = f.passes_many(alive)
            if not alive:
                break
        pruned = len(rows) - len(alive)
        if pruned:
            self.ctx.metrics.counters(self.op_id).tuples_pruned += pruned
        tracer = self.ctx.tracer
        if tracer is not None:
            tracer.instant(
                "aip.probe:%s" % self.name, "aip",
                self.ctx.metrics.clock_ticks,
                {"port": port, "rows": len(rows), "pruned": pruned},
            )
        return alive

    def passes_filters_page(self, page, port: int):
        """Vet a column batch against the injected filters, returning
        the surviving page (possibly ``page`` itself, zero-copy, when
        nothing was pruned).  Charging, counters and the probe trace
        event match :meth:`passes_filters_batch` over the same rows
        exactly: each filter bills one probe per row still alive when
        it is reached."""
        filters = self._filters[port]
        if not filters:
            return page
        cost = self.ctx.cost_model.semijoin_probe
        n_in = page.n_rows
        alive = page
        for f in filters:
            self.ctx.charge_events_op(self.op_id, alive.n_rows, cost)
            alive = f.passes_page(alive)
            if not alive.n_rows:
                break
        pruned = n_in - alive.n_rows
        if pruned:
            self.ctx.metrics.counters(self.op_id).tuples_pruned += pruned
        tracer = self.ctx.tracer
        if tracer is not None:
            tracer.instant(
                "aip.probe:%s" % self.name, "aip",
                self.ctx.metrics.clock_ticks,
                {"port": port, "rows": n_in, "pruned": pruned},
            )
        return alive

    # -- dataflow --------------------------------------------------------

    def push(self, row: Row, port: int = 0) -> None:
        raise NotImplementedError

    def push_batch(self, rows: List[Row], port: int = 0) -> None:
        """Process a batch of rows arriving on ``port`` in order.

        The default delegates to :meth:`push` row by row, so custom
        operators participate in batch-driven plans unchanged; the
        built-in operators override it with vectorized bodies that
        charge costs in bulk."""
        for row in rows:
            self.push(row, port)

    def push_page(self, page, port: int = 0) -> None:
        """Process a :class:`~repro.exec.pages.ColumnBatch` arriving on
        ``port``.

        The default re-materialises the page's rows and delegates to
        :meth:`push_batch` — the row-path fallback that keeps custom
        operators (and any built-in whose state demands row order, like
        a governed spilling operator) bit-identical inside page-driven
        plans.  Built-in operators override it with column kernels."""
        self.push_batch(page.rows(), port)

    def finish(self, port: int = 0) -> None:
        raise NotImplementedError

    def emit(self, row: Row) -> None:
        self.ctx.metrics.counters(self.op_id).tuples_out += 1
        for parent, port in self.parents:
            parent.push(row, port)

    def emit_batch(self, rows: List[Row]) -> None:
        """Forward a batch of output rows, preserving order.

        With several parents (DAG plans) the batch is unrolled row by
        row so each parent observes the exact interleaving the tuple
        path would produce; the engine only batches tree-shaped plans,
        so this branch is a safety net for direct callers."""
        if not rows:
            return
        self.ctx.metrics.counters(self.op_id).tuples_out += len(rows)
        tracer = self.ctx.tracer
        if tracer is not None:
            tracer.instant(
                "emit:%s" % self.name, "op", self.ctx.metrics.clock_ticks,
                {"rows": len(rows)},
            )
        parents = self.parents
        if len(parents) == 1:
            parent, port = parents[0]
            parent.push_batch(rows, port)
        else:
            for row in rows:
                for parent, port in parents:
                    parent.push(row, port)

    def emit_page(self, page) -> None:
        """Forward a column batch of output rows, preserving order.

        Mirrors :meth:`emit_batch` — same ``tuples_out`` advancement and
        the same ``emit:`` trace instant — so the page path's observable
        surface stays bit-identical to the row-batch path's.  The
        multi-parent branch is unreachable from the engine (only
        tree-shaped plans batch) but unrolls per row as a safety net."""
        if not page.n_rows:
            return
        self.ctx.metrics.counters(self.op_id).tuples_out += page.n_rows
        tracer = self.ctx.tracer
        if tracer is not None:
            tracer.instant(
                "emit:%s" % self.name, "op", self.ctx.metrics.clock_ticks,
                {"rows": page.n_rows},
            )
        parents = self.parents
        if len(parents) == 1:
            parent, port = parents[0]
            parent.push_page(page, port)
        else:
            for row in page.rows():
                for parent, port in parents:
                    parent.push(row, port)

    def _page_stats(self, rows_in: int, selected: int) -> None:
        """Record one page-kernel invocation: the page-path-only
        counters and, when tracing, a ``page:<op>`` instant.  Pure
        observation — never touches the clock or tuple counters."""
        metrics = self.ctx.metrics
        metrics.pages_pushed += 1
        metrics.rows_selected += selected
        tracer = self.ctx.tracer
        if tracer is not None:
            tracer.instant(
                "page:%s" % self.name, "op", metrics.clock_ticks,
                {"rows": rows_in, "selected": selected},
            )

    def finish_output(self) -> None:
        if self._output_done:
            return
        self._output_done = True
        if self._lease is not None:
            self.ctx.governor.unregister_spillable(self)
            self._lease.close()
        tracer = self.ctx.tracer
        if tracer is not None:
            # .get, not .counters(): the hook must not create a counter
            # entry for an operator that never emitted — the traced
            # run's operator map stays bit-identical to the untraced.
            counters = self.ctx.metrics.operators.get(self.op_id)
            tracer.instant(
                "flush:%s" % self.name, "op", self.ctx.metrics.clock_ticks,
                {"out": counters.tuples_out if counters is not None else 0},
            )
        self.ctx.log("%s output complete" % self.name)
        for parent, port in self.parents:
            parent.finish(port)

    def _mark_input_done(self, port: int) -> None:
        if self._input_done[port]:
            raise ExecutionError(
                "input %d of %s finished twice" % (port, self.name)
            )
        self._input_done[port] = True

    def input_done(self, port: int) -> bool:
        return self._input_done[port]

    @property
    def all_inputs_done(self) -> bool:
        return all(self._input_done)

    # -- state accounting --------------------------------------------------

    def account_state(self, delta: int) -> None:
        """Adjust this operator's buffered-state bytes: the paper's
        intermediate-state metric always, plus the governor lease when
        one is attached (which may trigger reclamation — buffer-pool
        eviction or a spill, possibly of this very operator)."""
        self.ctx.metrics.adjust_state(self.op_id, delta)
        lease = self._lease
        if lease is not None:
            if delta >= 0:
                self.ctx.governor.request(lease, delta, self.ctx)
            else:
                self.ctx.governor.release(lease, -delta)

    # -- spilling (memory-governor reclaim protocol) -----------------------

    @property
    def governed(self) -> bool:
        """True when this operator accounts on a governor lease."""
        return self._lease is not None

    def spillable_nbytes(self) -> int:
        """Resident bytes this operator could shed to disk right now."""
        return 0

    def spill(self, need_bytes: int, ctx) -> int:
        """Shed up to ``need_bytes`` of state to the spill backend;
        returns the bytes actually freed.  Stateful operators override
        this with Grace-style partition spilling."""
        return 0

    # -- state exposure ---------------------------------------------------

    def state_values(self, port: int, attr_name: str) -> Iterable:
        """Iterate the buffered values of ``attr_name`` on ``port``."""
        raise ExecutionError("%s holds no state" % self.name)

    def stored_count(self, port: int) -> int:
        """Number of state rows buffered for ``port``."""
        return 0

    def state_complete(self, port: int) -> bool:
        """True when the buffered state for ``port`` contains the FULL
        result of the corresponding subexpression.  AIP sets may only be
        built from complete state — a partial summary would produce
        false negatives and wrong query results.  Short-circuited join
        sides and semijoin probe buffers are *not* complete."""
        return False

    def __repr__(self) -> str:
        return "%s(#%d)" % (self.name, self.op_id)
