"""Selection operator."""

from __future__ import annotations

from repro.data.schema import Schema
from repro.exec.context import ExecutionContext
from repro.exec.operators.base import Operator, Row
from repro.expr.compiler import compile_predicate
from repro.expr.expressions import Expr


class PFilter(Operator):
    """Pipelined selection: forwards rows satisfying a predicate."""

    def __init__(
        self,
        ctx: ExecutionContext,
        op_id: int,
        schema: Schema,
        predicate: Expr,
    ):
        super().__init__(ctx, op_id, schema, [schema], "Filter")
        self._predicate = compile_predicate(predicate, schema)

    def push(self, row: Row, port: int = 0) -> None:
        cm = self.ctx.cost_model
        self.ctx.metrics.counters(self.op_id).tuples_in += 1
        self.ctx.charge(cm.tuple_base + cm.predicate_eval)
        if not self.passes_filters(row, 0):
            return
        if self._predicate(row):
            self.emit(row)

    def finish(self, port: int = 0) -> None:
        self._mark_input_done(port)
        self.finish_output()
