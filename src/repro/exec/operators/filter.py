"""Selection operator."""

from __future__ import annotations

from typing import List

from repro.data.schema import Schema
from repro.exec.context import ExecutionContext
from repro.exec.operators.base import Operator, Row
from repro.exec.pages import ColumnBatch
from repro.expr.compiler import compile_predicate, compile_predicate_columns
from repro.expr.expressions import Expr


class PFilter(Operator):
    """Pipelined selection: forwards rows satisfying a predicate."""

    def __init__(
        self,
        ctx: ExecutionContext,
        op_id: int,
        schema: Schema,
        predicate: Expr,
    ):
        super().__init__(ctx, op_id, schema, [schema], "Filter")
        #: The predicate AST — kept so pickled fragments recompile the
        #: closures worker-side instead of shipping them.
        self.predicate = predicate
        self._rebuild_compiled()

    _compiled_attrs = ("_predicate", "_predicate_batch", "_select_columns")

    def _rebuild_compiled(self) -> None:
        schema = self.input_schemas[0]
        predicate_fn = self._predicate = compile_predicate(
            self.predicate, schema
        )
        #: Batch closure: one call filters a whole batch in order.
        self._predicate_batch = (
            lambda rows: [row for row in rows if predicate_fn(row)]
        )
        #: Selection kernel for the page path: columns -> surviving
        #: row indices, accepting exactly what ``predicate_fn`` accepts.
        self._select_columns = compile_predicate_columns(
            self.predicate, schema
        )

    def push(self, row: Row, port: int = 0) -> None:
        cm = self.ctx.cost_model
        self.ctx.metrics.counters(self.op_id).tuples_in += 1
        # Bill predicate evaluation only when the predicate actually
        # runs: rows pruned by an injected AIP filter below never reach
        # it, and charging them would understate AIP's CPU savings.
        self.ctx.charge_op(self.op_id, cm.tuple_base)
        if not self.passes_filters(row, 0):
            return
        self.ctx.charge_op(self.op_id, cm.predicate_eval)
        if self._predicate(row):
            self.emit(row)

    def push_batch(self, rows: List[Row], port: int = 0) -> None:
        cm = self.ctx.cost_model
        self.ctx.metrics.counters(self.op_id).tuples_in += len(rows)
        self.ctx.charge_events_op(self.op_id, len(rows), cm.tuple_base)
        rows = self.passes_filters_batch(rows, 0)
        if not rows:
            return
        self.ctx.charge_events_op(self.op_id, len(rows), cm.predicate_eval)
        self.emit_batch(self._predicate_batch(rows))

    def push_page(self, page: ColumnBatch, port: int = 0) -> None:
        cm = self.ctx.cost_model
        n_in = page.n_rows
        self.ctx.metrics.counters(self.op_id).tuples_in += n_in
        self.ctx.charge_events_op(self.op_id, n_in, cm.tuple_base)
        page = self.passes_filters_page(page, 0)
        if not page.n_rows:
            return
        self.ctx.charge_events_op(self.op_id, page.n_rows, cm.predicate_eval)
        selection = self._select_columns(page.columns, page.n_rows)
        self._page_stats(n_in, len(selection))
        self.emit_page(page.select(selection))

    def finish(self, port: int = 0) -> None:
        self._mark_input_done(port)
        self.finish_output()
