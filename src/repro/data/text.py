"""TPC-H value domains.

These mirror the domains the paper's Table I predicates select over:
``p_type like '%TIN'``, ``p_container = 'MED CAN'``, ``p_brand =
'Brand#34'``, ``r_name = 'AFRICA'``, ``r_name = 'MIDDLE EAST'``,
``n_name = 'FRANCE'``, and so on.  Keeping the real TPC-H vocabularies
preserves the selectivities those predicates imply (e.g. ``%TIN``
matches one fifth of part types, ``p_size = 1`` matches 2%).
"""

from __future__ import annotations

from typing import List

REGIONS: List[str] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

#: 25 TPC-H nations with their region index.
NATIONS: List[tuple] = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

TYPE_SYLLABLE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLLABLE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLLABLE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

CONTAINER_SYLLABLE_1 = ["SM", "MED", "LG", "JUMBO", "WRAP"]
CONTAINER_SYLLABLE_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]

#: Part-name colour vocabulary; Q5A's ``p_name like '%black%'`` keys on this.
PART_COLOURS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon",
    "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
    "midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange",
    "orchid", "pale", "papaya", "peach", "peru", "pink", "plum", "powder",
    "puff", "purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
    "sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring",
    "steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat",
    "white", "yellow",
]

ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
MARKET_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]


def part_type(i1: int, i2: int, i3: int) -> str:
    """Compose a part type string such as ``STANDARD ANODIZED TIN``."""
    return "%s %s %s" % (
        TYPE_SYLLABLE_1[i1 % len(TYPE_SYLLABLE_1)],
        TYPE_SYLLABLE_2[i2 % len(TYPE_SYLLABLE_2)],
        TYPE_SYLLABLE_3[i3 % len(TYPE_SYLLABLE_3)],
    )


def container(i1: int, i2: int) -> str:
    """Compose a container string such as ``MED CAN``."""
    return "%s %s" % (
        CONTAINER_SYLLABLE_1[i1 % len(CONTAINER_SYLLABLE_1)],
        CONTAINER_SYLLABLE_2[i2 % len(CONTAINER_SYLLABLE_2)],
    )


def brand(m: int, n: int) -> str:
    """Compose a brand string such as ``Brand#34`` (digits 1-5 each)."""
    return "Brand#%d%d" % (1 + m % 5, 1 + n % 5)


def part_name(rng) -> str:
    """A part name: five space-separated colour words (TPC-H style)."""
    return " ".join(rng.choice(PART_COLOURS) for _ in range(5))
