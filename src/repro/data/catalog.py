"""Catalog: tables plus the statistics Tukwila's optimizer relies on.

Per Section V-A of the paper, the Tukwila cost modeler "does not require
histograms: instead, it relies on cardinality estimates and information
about keys and foreign keys when estimating the selectivity of join
conditions".  The catalog therefore records, per table: row count,
primary-key attributes, foreign-key relationships, and per-column
distinct-value counts (computable exactly for generated data).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import OptimizerError, SchemaError
from repro.data.table import Table


class ForeignKey:
    """``table.column`` references ``ref_table.ref_column``."""

    __slots__ = ("table", "column", "ref_table", "ref_column")

    def __init__(self, table: str, column: str, ref_table: str, ref_column: str):
        self.table = table
        self.column = column
        self.ref_table = ref_table
        self.ref_column = ref_column

    def __repr__(self) -> str:
        return "ForeignKey(%s.%s -> %s.%s)" % (
            self.table, self.column, self.ref_table, self.ref_column,
        )


class TableStats:
    """Optimizer-facing statistics for one table."""

    __slots__ = ("row_count", "distinct", "minima", "maxima")

    def __init__(
        self,
        row_count: int,
        distinct: Dict[str, int],
        minima: Optional[Dict[str, object]] = None,
        maxima: Optional[Dict[str, object]] = None,
    ):
        self.row_count = row_count
        self.distinct = dict(distinct)
        self.minima = dict(minima or {})
        self.maxima = dict(maxima or {})

    @classmethod
    def from_table(cls, table: Table) -> "TableStats":
        """Compute exact statistics by scanning a materialised table."""
        distinct: Dict[str, int] = {}
        minima: Dict[str, object] = {}
        maxima: Dict[str, object] = {}
        for attr in table.schema:
            col = table.column(attr.name)
            distinct[attr.name] = len(set(col))
            if col:
                minima[attr.name] = min(col)
                maxima[attr.name] = max(col)
        return cls(len(table), distinct, minima, maxima)

    def distinct_count(self, column: str) -> int:
        try:
            return self.distinct[column]
        except KeyError:
            raise OptimizerError("no distinct-count statistic for %r" % column)


class Catalog:
    """A namespace of tables, key constraints and statistics."""

    def __init__(self):
        self._tables: Dict[str, Table] = {}
        self._stats: Dict[str, TableStats] = {}
        self._primary_keys: Dict[str, Tuple[str, ...]] = {}
        self._foreign_keys: List[ForeignKey] = []

    # -- registration -------------------------------------------------

    def add_table(
        self,
        table: Table,
        primary_key: Sequence[str] = (),
        stats: Optional[TableStats] = None,
    ) -> None:
        if table.name in self._tables:
            raise SchemaError("table %r already registered" % table.name)
        for col in primary_key:
            table.schema.index_of(col)  # validate
        self._tables[table.name] = table
        self._primary_keys[table.name] = tuple(primary_key)
        self._stats[table.name] = stats or TableStats.from_table(table)

    def add_foreign_key(
        self, table: str, column: str, ref_table: str, ref_column: str
    ) -> None:
        self.table(table).schema.index_of(column)
        self.table(ref_table).schema.index_of(ref_column)
        self._foreign_keys.append(ForeignKey(table, column, ref_table, ref_column))

    # -- lookup -------------------------------------------------------

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError("unknown table %r" % name) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def stats(self, name: str) -> TableStats:
        try:
            return self._stats[name]
        except KeyError:
            raise OptimizerError("no statistics for table %r" % name) from None

    def primary_key(self, name: str) -> Tuple[str, ...]:
        return self._primary_keys.get(name, ())

    def foreign_keys(self) -> List[ForeignKey]:
        return list(self._foreign_keys)

    def foreign_keys_of(self, table: str) -> List[ForeignKey]:
        return [fk for fk in self._foreign_keys if fk.table == table]

    def is_unique_column(self, table: str, column: str) -> bool:
        """True when ``column`` is a single-attribute primary key."""
        return self._primary_keys.get(table) == (column,)
