"""Deterministic, scale-factor parameterised TPC-H data generator.

The paper evaluates on 1 GB TPC-H data plus a 1 GB skewed TPC-D variant
produced by the Microsoft skewed-data generator with Zipf factor
``z = 0.5``.  We reproduce both with one pure-Python generator:

* ``skew = 0.0`` gives uniform TPC-H-like data;
* ``skew = 0.5`` draws the foreign keys of LINEITEM and ORDERS (and the
  per-part supplier assignment) from a Zipfian distribution, which is
  the property the paper's "skewed" query variants (Q1B, Q2B, Q3B)
  exercise: a few hot parts/suppliers/customers carry most of the rows.

Scale factor 1.0 corresponds to the standard 1 GB cardinalities
(200,000 parts, 6M lineitems, ...).  Benchmarks run at small scale
factors; the schema, key structure, value domains and predicate
selectivities are preserved, which is what the paper's relative
comparisons depend on.
"""

from __future__ import annotations

import datetime
import functools
from typing import Optional, Tuple

from repro.common.rng import DeterministicRng, ZipfSampler
from repro.data import text
from repro.data.catalog import Catalog
from repro.data.schema import DATE, FLOAT, INT, STR, Schema
from repro.data.table import Table

_EPOCH = datetime.date(1992, 1, 1)
_LAST_ORDER_DAY = (datetime.date(1998, 8, 2) - _EPOCH).days


def _iso(day_offset: int) -> str:
    """ISO date string for ``_EPOCH + day_offset`` days."""
    return (_EPOCH + datetime.timedelta(days=day_offset)).isoformat()


class TpchConfig:
    """Parameters for one generated TPC-H instance.

    Instances with equal parameters generate identical data.
    """

    __slots__ = ("scale_factor", "skew", "seed")

    def __init__(self, scale_factor: float = 0.01, skew: float = 0.0, seed: int = 7):
        if scale_factor <= 0:
            raise ValueError("scale_factor must be positive")
        if skew < 0:
            raise ValueError("skew must be non-negative")
        self.scale_factor = scale_factor
        self.skew = skew
        self.seed = seed

    # Cardinalities: standard TPC-H scaling with small-SF floors so that
    # tiny test instances still have joinable data.
    @property
    def n_supplier(self) -> int:
        return max(10, round(10_000 * self.scale_factor))

    @property
    def n_part(self) -> int:
        return max(40, round(200_000 * self.scale_factor))

    @property
    def n_customer(self) -> int:
        return max(15, round(150_000 * self.scale_factor))

    @property
    def n_orders(self) -> int:
        return 10 * self.n_customer

    def key(self) -> Tuple[float, float, int]:
        return (self.scale_factor, self.skew, self.seed)

    def __repr__(self) -> str:
        return "TpchConfig(sf=%g, skew=%g, seed=%d)" % (
            self.scale_factor, self.skew, self.seed,
        )


# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------

REGION_SCHEMA = Schema.of(("r_regionkey", INT), ("r_name", STR), ("r_comment", STR))

NATION_SCHEMA = Schema.of(
    ("n_nationkey", INT), ("n_name", STR), ("n_regionkey", INT), ("n_comment", STR),
)

SUPPLIER_SCHEMA = Schema.of(
    ("s_suppkey", INT), ("s_name", STR), ("s_address", STR),
    ("s_nationkey", INT), ("s_phone", STR), ("s_acctbal", FLOAT),
    ("s_comment", STR),
)

PART_SCHEMA = Schema.of(
    ("p_partkey", INT), ("p_name", STR), ("p_mfgr", STR), ("p_brand", STR),
    ("p_type", STR), ("p_size", INT), ("p_container", STR),
    ("p_retailprice", FLOAT), ("p_comment", STR),
)

PARTSUPP_SCHEMA = Schema.of(
    ("ps_partkey", INT), ("ps_suppkey", INT), ("ps_availqty", INT),
    ("ps_supplycost", FLOAT), ("ps_comment", STR),
)

CUSTOMER_SCHEMA = Schema.of(
    ("c_custkey", INT), ("c_name", STR), ("c_address", STR),
    ("c_nationkey", INT), ("c_phone", STR), ("c_acctbal", FLOAT),
    ("c_mktsegment", STR),
)

ORDERS_SCHEMA = Schema.of(
    ("o_orderkey", INT), ("o_custkey", INT), ("o_orderstatus", STR),
    ("o_totalprice", FLOAT), ("o_orderdate", DATE), ("o_orderpriority", STR),
)

LINEITEM_SCHEMA = Schema.of(
    ("l_orderkey", INT), ("l_partkey", INT), ("l_suppkey", INT),
    ("l_linenumber", INT), ("l_quantity", FLOAT), ("l_extendedprice", FLOAT),
    ("l_discount", FLOAT), ("l_shipdate", DATE), ("l_receiptdate", DATE),
)


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------

class _KeyPicker:
    """Draws foreign-key values, uniformly or Zipf-skewed."""

    def __init__(self, n: int, skew: float, rng: DeterministicRng):
        self._n = n
        self._rng = rng
        self._zipf: Optional[ZipfSampler] = (
            ZipfSampler(n, skew, rng) if skew > 0 else None
        )

    def pick(self) -> int:
        if self._zipf is not None:
            return self._zipf.sample()
        return self._rng.randint(1, self._n)


def _gen_region() -> Table:
    rows = [
        (i, name, "region %s" % name.lower())
        for i, name in enumerate(text.REGIONS)
    ]
    return Table("region", REGION_SCHEMA, rows)


def _gen_nation() -> Table:
    rows = [
        (i, name, region, "nation %s" % name.lower())
        for i, (name, region) in enumerate(text.NATIONS)
    ]
    return Table("nation", NATION_SCHEMA, rows)


def _gen_supplier(config: TpchConfig, rng: DeterministicRng) -> Table:
    rows = []
    for k in range(1, config.n_supplier + 1):
        nationkey = rng.randint(0, len(text.NATIONS) - 1)
        rows.append((
            k,
            "Supplier#%09d" % k,
            "addr-%d" % rng.randint(1, 9999),
            nationkey,
            "%02d-%03d-%03d-%04d" % (
                10 + nationkey, rng.randint(100, 999),
                rng.randint(100, 999), rng.randint(1000, 9999),
            ),
            round(rng.uniform(-999.99, 9999.99), 2),
            "supplier comment %d" % k,
        ))
    return Table("supplier", SUPPLIER_SCHEMA, rows)


def _gen_part(config: TpchConfig, rng: DeterministicRng) -> Table:
    rows = []
    for k in range(1, config.n_part + 1):
        # TPC-H retail price formula: values in [900.00, 2098.99].
        retail = (90000 + (k // 10) % 20001 + 100 * (k % 1000)) / 100.0
        retail = 900.0 + (retail % 1200.0)
        rows.append((
            k,
            text.part_name(rng),
            "Manufacturer#%d" % (1 + k % 5),
            text.brand(k % 5, (k // 5) % 5),
            text.part_type(
                rng.randint(0, 5), rng.randint(0, 4), rng.randint(0, 4)
            ),
            rng.randint(1, 50),
            text.container(rng.randint(0, 4), rng.randint(0, 7)),
            round(retail, 2),
            "part comment %d" % k,
        ))
    return Table("part", PART_SCHEMA, rows)


def _gen_partsupp(config: TpchConfig, rng: DeterministicRng) -> Table:
    """Four suppliers per part; supplier choice is skew-sensitive."""
    picker = _KeyPicker(config.n_supplier, config.skew, rng.fork("ps-supp"))
    rows = []
    for pk in range(1, config.n_part + 1):
        chosen = set()
        while len(chosen) < min(4, config.n_supplier):
            chosen.add(picker.pick())
        for sk in sorted(chosen):
            rows.append((
                pk,
                sk,
                rng.randint(1, 9999),
                round(rng.uniform(1.0, 1000.0), 2),
                "partsupp comment %d/%d" % (pk, sk),
            ))
    return Table("partsupp", PARTSUPP_SCHEMA, rows)


def _gen_customer(config: TpchConfig, rng: DeterministicRng) -> Table:
    rows = []
    for k in range(1, config.n_customer + 1):
        nationkey = rng.randint(0, len(text.NATIONS) - 1)
        rows.append((
            k,
            "Customer#%09d" % k,
            "addr-%d" % rng.randint(1, 9999),
            nationkey,
            "%02d-%03d-%03d-%04d" % (
                10 + nationkey, rng.randint(100, 999),
                rng.randint(100, 999), rng.randint(1000, 9999),
            ),
            round(rng.uniform(-999.99, 9999.99), 2),
            rng.choice(text.MARKET_SEGMENTS),
        ))
    return Table("customer", CUSTOMER_SCHEMA, rows)


def _gen_orders(config: TpchConfig, rng: DeterministicRng) -> Table:
    picker = _KeyPicker(config.n_customer, config.skew, rng.fork("o-cust"))
    rows = []
    for k in range(1, config.n_orders + 1):
        day = rng.randint(0, _LAST_ORDER_DAY)
        rows.append((
            k,
            picker.pick(),
            rng.choice(["O", "F", "P"]),
            round(rng.uniform(1000.0, 400000.0), 2),
            _iso(day),
            rng.choice(text.ORDER_PRIORITIES),
        ))
    return Table("orders", ORDERS_SCHEMA, rows)


def _gen_lineitem(config: TpchConfig, rng: DeterministicRng, orders: Table) -> Table:
    part_picker = _KeyPicker(config.n_part, config.skew, rng.fork("l-part"))
    supp_picker = _KeyPicker(config.n_supplier, config.skew, rng.fork("l-supp"))
    date_idx = orders.schema.index_of("o_orderdate")
    key_idx = orders.schema.index_of("o_orderkey")
    rows = []
    for order in orders:
        order_day = (
            datetime.date.fromisoformat(order[date_idx]) - _EPOCH
        ).days
        for line in range(1, rng.randint(1, 7) + 1):
            qty = float(rng.randint(1, 50))
            price = round(qty * rng.uniform(900.0, 2100.0), 2)
            ship_day = order_day + rng.randint(1, 121)
            receipt_day = ship_day + rng.randint(1, 30)
            rows.append((
                order[key_idx],
                part_picker.pick(),
                supp_picker.pick(),
                line,
                qty,
                price,
                round(rng.uniform(0.0, 0.10), 2),
                _iso(ship_day),
                _iso(receipt_day),
            ))
    return Table("lineitem", LINEITEM_SCHEMA, rows)


def generate_tpch(config: TpchConfig) -> Catalog:
    """Generate a full TPC-H instance and return a populated catalog.

    The catalog carries exact statistics plus primary/foreign-key
    metadata, which the optimizer's selectivity estimation relies on.
    """
    rng = DeterministicRng(config.seed)
    region = _gen_region()
    nation = _gen_nation()
    supplier = _gen_supplier(config, rng.fork("supplier"))
    part = _gen_part(config, rng.fork("part"))
    partsupp = _gen_partsupp(config, rng.fork("partsupp"))
    customer = _gen_customer(config, rng.fork("customer"))
    orders = _gen_orders(config, rng.fork("orders"))
    lineitem = _gen_lineitem(config, rng.fork("lineitem"), orders)

    catalog = Catalog()
    catalog.add_table(region, primary_key=("r_regionkey",))
    catalog.add_table(nation, primary_key=("n_nationkey",))
    catalog.add_table(supplier, primary_key=("s_suppkey",))
    catalog.add_table(part, primary_key=("p_partkey",))
    catalog.add_table(partsupp, primary_key=("ps_partkey", "ps_suppkey"))
    catalog.add_table(customer, primary_key=("c_custkey",))
    catalog.add_table(orders, primary_key=("o_orderkey",))
    catalog.add_table(lineitem, primary_key=("l_orderkey", "l_linenumber"))

    catalog.add_foreign_key("nation", "n_regionkey", "region", "r_regionkey")
    catalog.add_foreign_key("supplier", "s_nationkey", "nation", "n_nationkey")
    catalog.add_foreign_key("customer", "c_nationkey", "nation", "n_nationkey")
    catalog.add_foreign_key("partsupp", "ps_partkey", "part", "p_partkey")
    catalog.add_foreign_key("partsupp", "ps_suppkey", "supplier", "s_suppkey")
    catalog.add_foreign_key("orders", "o_custkey", "customer", "c_custkey")
    catalog.add_foreign_key("lineitem", "l_orderkey", "orders", "o_orderkey")
    catalog.add_foreign_key("lineitem", "l_partkey", "part", "p_partkey")
    catalog.add_foreign_key("lineitem", "l_suppkey", "supplier", "s_suppkey")
    return catalog


@functools.lru_cache(maxsize=8)
def _cached(key: Tuple[float, float, int]) -> Catalog:
    sf, skew, seed = key
    return generate_tpch(TpchConfig(scale_factor=sf, skew=skew, seed=seed))


def cached_tpch(
    scale_factor: float = 0.01, skew: float = 0.0, seed: int = 7
) -> Catalog:
    """Memoised :func:`generate_tpch`, shared across tests and benches.

    Callers must treat the returned catalog as read-only.
    """
    return _cached((scale_factor, skew, seed))
