"""Data substrate: schemas, in-memory tables, catalog, TPC-H generator."""

from repro.data.schema import Attribute, Schema, INT, FLOAT, STR, DATE
from repro.data.table import Table
from repro.data.catalog import Catalog, TableStats
from repro.data.tpch import TpchConfig, generate_tpch

__all__ = [
    "Attribute",
    "Schema",
    "INT",
    "FLOAT",
    "STR",
    "DATE",
    "Table",
    "Catalog",
    "TableStats",
    "TpchConfig",
    "generate_tpch",
]
