"""In-memory relations.

The push engine streams tuples from :class:`Table` objects; in the
paper's terms a table is what a remote data source would serve.  Rows
are plain tuples aligned with the table's schema.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.common.errors import SchemaError
from repro.data.schema import Schema

Row = Tuple


class Table:
    """A named relation with a schema and materialised rows."""

    __slots__ = ("name", "schema", "rows")

    def __init__(self, name: str, schema: Schema, rows: Iterable[Row] = ()):
        self.name = name
        self.schema = schema
        self.rows: List[Row] = list(rows)
        width = len(schema)
        for row in self.rows:
            if len(row) != width:
                raise SchemaError(
                    "row width %d does not match schema width %d in table %r"
                    % (len(row), width, name)
                )

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def column(self, name: str) -> List:
        """Materialise one column by attribute name."""
        idx = self.schema.index_of(name)
        return [row[idx] for row in self.rows]

    def select(self, predicate) -> "Table":
        """A new table containing rows for which ``predicate(row)`` holds."""
        return Table(self.name, self.schema, [r for r in self.rows if predicate(r)])

    def project(self, names: Sequence[str]) -> "Table":
        idxs = [self.schema.index_of(n) for n in names]
        rows = [tuple(row[i] for i in idxs) for row in self.rows]
        return Table(self.name, self.schema.project(names), rows)

    def renamed(self, mapping) -> "Table":
        return Table(self.name, self.schema.renamed(mapping), self.rows)

    def byte_size(self) -> int:
        return len(self.rows) * self.schema.row_byte_size()

    def __repr__(self) -> str:
        return "Table(%r, %d rows)" % (self.name, len(self.rows))
