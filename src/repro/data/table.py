"""In-memory relations.

The push engine streams tuples from :class:`Table` objects; in the
paper's terms a table is what a remote data source would serve.  Rows
are plain tuples aligned with the table's schema.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.common.errors import SchemaError
from repro.data.schema import Schema

Row = Tuple


class Table:
    """A named relation with a schema and materialised rows."""

    __slots__ = ("name", "schema", "rows", "_partition_cache")

    def __init__(self, name: str, schema: Schema, rows: Iterable[Row] = ()):
        self.name = name
        self.schema = schema
        self.rows: List[Row] = list(rows)
        self._partition_cache = None
        width = len(schema)
        for row in self.rows:
            if len(row) != width:
                raise SchemaError(
                    "row width %d does not match schema width %d in table %r"
                    % (len(row), width, name)
                )

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def column(self, name: str) -> List:
        """Materialise one column by attribute name."""
        idx = self.schema.index_of(name)
        return [row[idx] for row in self.rows]

    def select(self, predicate) -> "Table":
        """A new table containing rows for which ``predicate(row)`` holds."""
        return Table(self.name, self.schema, [r for r in self.rows if predicate(r)])

    def project(self, names: Sequence[str]) -> "Table":
        idxs = [self.schema.index_of(n) for n in names]
        rows = [tuple(row[i] for i in idxs) for row in self.rows]
        return Table(self.name, self.schema.project(names), rows)

    def renamed(self, mapping) -> "Table":
        return Table(self.name, self.schema.renamed(mapping), self.rows)

    def partition_rows(self, spec, key_index: int) -> List[List[Row]]:
        """``spec.split(self.rows, key_index)``, memoised per spec.

        Partition-parallel execution re-splits the same base table on
        every run (and, in the worker pool, once per worker per
        fragment); the split is deterministic in the spec and the rows,
        so repeated splits of an unchanged table can share one result.
        Partition lists hold references to the table's row tuples, so
        the cache costs list overhead only.  Keyed by the spec's value
        fields — two equal specs built independently hit the same entry.
        """
        key = (
            spec.key, spec.scheme, tuple(spec.sites),
            tuple(spec.bounds) if spec.bounds is not None else None,
            key_index,
        )
        cache = self._partition_cache
        if cache is None:
            cache = self._partition_cache = {}
        parts = cache.get(key)
        if parts is None:
            parts = spec.split(self.rows, key_index)
            cache[key] = parts
        return parts

    def __getstate__(self):
        # The split cache is pure memoisation and can be large; rebuild
        # lazily on the other side instead of shipping it.
        return (self.name, self.schema, self.rows)

    def __setstate__(self, state) -> None:
        self.name, self.schema, self.rows = state
        self._partition_cache = None

    def byte_size(self) -> int:
        return len(self.rows) * self.schema.row_byte_size()

    def __repr__(self) -> str:
        return "Table(%r, %d rows)" % (self.name, len(self.rows))
