"""Relational schemas.

A :class:`Schema` is an ordered list of named, typed attributes.  Rows
are plain Python tuples positionally aligned with the schema; the schema
provides name→index resolution, per-row byte-size estimation (used for
the paper's intermediate-state accounting), and schema combinators used
by the plan layer (concatenation for joins, projection).

Attribute names must be unique within a schema.  Workload queries that
reference the same table twice (e.g. the two PARTSUPP scans in the
paper's running example) disambiguate by renaming attributes at scan
time — see :meth:`Schema.renamed`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.common import sizing
from repro.common.errors import SchemaError

#: Type tags.  Dates are ISO-8601 strings so that lexicographic
#: comparison coincides with chronological comparison.
INT = "int"
FLOAT = "float"
STR = "str"
DATE = "date"

_VALID_TYPES = frozenset({INT, FLOAT, STR, DATE})


class Attribute:
    """A named, typed column."""

    __slots__ = ("name", "type")

    def __init__(self, name: str, type: str):
        if type not in _VALID_TYPES:
            raise SchemaError("unknown attribute type %r for %r" % (type, name))
        if not name:
            raise SchemaError("attribute name must be non-empty")
        self.name = name
        self.type = type

    @property
    def byte_size(self) -> int:
        return sizing.value_nbytes(self.type)

    def renamed(self, name: str) -> "Attribute":
        return Attribute(name, self.type)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Attribute)
            and other.name == self.name
            and other.type == self.type
        )

    def __hash__(self) -> int:
        return hash((self.name, self.type))

    def __repr__(self) -> str:
        return "Attribute(%r, %r)" % (self.name, self.type)


class Schema:
    """An ordered collection of attributes with unique names."""

    __slots__ = ("attributes", "_index")

    def __init__(self, attributes: Iterable[Attribute]):
        self.attributes: Tuple[Attribute, ...] = tuple(attributes)
        index: Dict[str, int] = {}
        for i, attr in enumerate(self.attributes):
            if attr.name in index:
                raise SchemaError("duplicate attribute name %r" % attr.name)
            index[attr.name] = i
        self._index = index

    @classmethod
    def of(cls, *pairs: Tuple[str, str]) -> "Schema":
        """Build a schema from ``(name, type)`` pairs."""
        return cls(Attribute(name, type_) for name, type_ in pairs)

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and other.attributes == self.attributes

    def __hash__(self) -> int:
        return hash(self.attributes)

    @property
    def names(self) -> List[str]:
        return [a.name for a in self.attributes]

    def index_of(self, name: str) -> int:
        """Position of attribute ``name``; raises SchemaError if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                "no attribute %r in schema %s" % (name, self.names)
            ) from None

    def attribute(self, name: str) -> Attribute:
        return self.attributes[self.index_of(name)]

    def maybe_index_of(self, name: str) -> Optional[int]:
        return self._index.get(name)

    def row_byte_size(self) -> int:
        """Estimated bytes to buffer one row of this schema.

        Delegates to :mod:`repro.common.sizing`, the single authority
        every budgeting layer (state metrics, admission control, result
        cache, memory governor) sizes rows through.
        """
        return sizing.row_nbytes(self)

    def concat(self, other: "Schema") -> "Schema":
        """Schema of the join of two inputs (names must stay unique)."""
        return Schema(self.attributes + other.attributes)

    def project(self, names: Sequence[str]) -> "Schema":
        return Schema(self.attribute(n) for n in names)

    def renamed(self, mapping: Dict[str, str]) -> "Schema":
        """Rename attributes via ``mapping`` (absent names unchanged)."""
        for old in mapping:
            if old not in self._index:
                raise SchemaError("cannot rename unknown attribute %r" % old)
        return Schema(
            a.renamed(mapping.get(a.name, a.name)) for a in self.attributes
        )

    def prefixed(self, prefix: str) -> "Schema":
        """Rename every attribute to ``prefix + name`` (for table aliases)."""
        return Schema(a.renamed(prefix + a.name) for a in self.attributes)

    def __repr__(self) -> str:
        return "Schema(%s)" % ", ".join(
            "%s:%s" % (a.name, a.type) for a in self.attributes
        )
