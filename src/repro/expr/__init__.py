"""Scalar expression language and aggregate specifications."""

from repro.expr.expressions import (
    Expr,
    Col,
    Lit,
    Arith,
    Cmp,
    And,
    Or,
    Not,
    Like,
    Func,
    col,
    lit,
)
from repro.expr.aggregates import AggregateSpec, SUM, MIN, MAX, AVG, COUNT
from repro.expr.compiler import compile_expr, compile_predicate

__all__ = [
    "Expr", "Col", "Lit", "Arith", "Cmp", "And", "Or", "Not", "Like", "Func",
    "col", "lit",
    "AggregateSpec", "SUM", "MIN", "MAX", "AVG", "COUNT",
    "compile_expr", "compile_predicate",
]
