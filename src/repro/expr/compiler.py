"""Compile expression ASTs into row functions and column kernels.

Operators bind expressions to their input schema exactly once; the
returned closures then evaluate per tuple with no name lookups.  This
is the standard interpretation-avoidance trick for row-at-a-time
engines and keeps the pure-Python push engine fast enough for the
benchmark scale factors.

Two layers are compiled from the same ASTs:

* **row closures** (:func:`compile_expr` / :func:`compile_predicate`)
  — ``row -> value`` functions for the tuple and row-batch paths.
  Comparison and arithmetic nodes over ``Col``/``Lit`` operands are
  specialised so the hot shapes (``col <op> literal``, ``col <op>
  col``) run as a single closure with the operator function hoisted to
  bind time instead of a three-deep closure chain with per-call
  dispatch.
* **column kernels** (:func:`compile_expr_columns` /
  :func:`compile_predicate_columns`) — ``(columns, n_rows) -> values``
  and ``(columns, n_rows) -> selection list`` functions for the
  page-native path.  A predicate maps a
  :class:`~repro.exec.pages.ColumnBatch`'s columns to the ascending
  row indices that survive; conjunctions refine the selection term by
  term, and a bare column reference is returned zero-copy.

Both layers share one bind-time index memo per compilation, so a
column referenced by many nodes resolves its schema position once.
"""

from __future__ import annotations

import operator
import re
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import PlanError
from repro.data.schema import Schema
from repro.expr.expressions import (
    And, Arith, Cmp, Col, Expr, Func, Like, Lit, Not, Or,
)

Row = Tuple
RowFn = Callable[[Row], object]
#: Column kernel: ``(columns, n_rows) -> sequence of values``.
ColumnFn = Callable[[List, int], List]
#: Selection kernel: ``(columns, n_rows) -> ascending surviving indices``.
SelectionFn = Callable[[List, int], List[int]]

_CMP_FNS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITH_FNS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


def like_pattern_to_regex(pattern: str) -> "re.Pattern":
    """Translate a SQL LIKE pattern into an anchored regular expression."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def _col_index(name: str, schema: Schema, memo: Dict[str, int]) -> int:
    """Resolve a column name once per compilation, not once per node."""
    idx = memo.get(name)
    if idx is None:
        idx = schema.index_of(name)
        memo[name] = idx
    return idx


# -- row closures ---------------------------------------------------------


def compile_expr(
    expr: Expr, schema: Schema, _memo: Optional[Dict[str, int]] = None
) -> RowFn:
    """Bind ``expr`` to ``schema`` and return a ``row -> value`` function."""
    memo = _memo if _memo is not None else {}
    if isinstance(expr, Col):
        idx = _col_index(expr.name, schema, memo)
        return lambda row: row[idx]

    if isinstance(expr, Lit):
        value = expr.value
        return lambda row: value

    if isinstance(expr, (Arith, Cmp)):
        fn = (_ARITH_FNS if isinstance(expr, Arith) else _CMP_FNS)[expr.op]
        lhs, rhs = expr.left, expr.right
        # Specialise the hot operand shapes: the operator function and
        # column indices are bound here, so the per-call chain is one
        # closure instead of fn(left(row), right(row)).
        if isinstance(lhs, Col):
            li = _col_index(lhs.name, schema, memo)
            if isinstance(rhs, Lit):
                value = rhs.value
                return lambda row: fn(row[li], value)
            if isinstance(rhs, Col):
                ri = _col_index(rhs.name, schema, memo)
                return lambda row: fn(row[li], row[ri])
        elif isinstance(lhs, Lit) and isinstance(rhs, Col):
            value = lhs.value
            ri = _col_index(rhs.name, schema, memo)
            return lambda row: fn(value, row[ri])
        left = compile_expr(lhs, schema, memo)
        right = compile_expr(rhs, schema, memo)
        return lambda row: fn(left(row), right(row))

    if isinstance(expr, And):
        parts = [compile_expr(t, schema, memo) for t in expr.terms]
        return lambda row: all(p(row) for p in parts)

    if isinstance(expr, Or):
        parts = [compile_expr(t, schema, memo) for t in expr.terms]
        return lambda row: any(p(row) for p in parts)

    if isinstance(expr, Not):
        inner = compile_expr(expr.term, schema, memo)
        return lambda row: not inner(row)

    if isinstance(expr, Like):
        regex = like_pattern_to_regex(expr.pattern)
        match = regex.match
        if isinstance(expr.term, Col):
            idx = _col_index(expr.term.name, schema, memo)
            return lambda row: match(row[idx]) is not None
        inner = compile_expr(expr.term, schema, memo)
        return lambda row: match(inner(row)) is not None

    if isinstance(expr, Func):
        fn = expr.fn
        args = [compile_expr(a, schema, memo) for a in expr.args]
        if len(args) == 1:
            arg0 = args[0]
            return lambda row: fn(arg0(row))
        return lambda row: fn(*(a(row) for a in args))

    raise PlanError("cannot compile expression %r" % (expr,))


def compile_predicate(expr: Expr, schema: Schema) -> Callable[[Row], bool]:
    """Like :func:`compile_expr` but coerces the result to bool."""
    fn = compile_expr(expr, schema)
    return lambda row: bool(fn(row))


# -- column kernels -------------------------------------------------------


def compile_expr_columns(
    expr: Expr, schema: Schema, _memo: Optional[Dict[str, int]] = None
) -> ColumnFn:
    """Bind ``expr`` to ``schema`` as a column kernel: a function from
    ``(columns, n_rows)`` to the expression's values in row order.

    Value-identical, element by element, to mapping the row closure
    over the re-materialised tuples — the page path's bit-identity to
    the row path rests on this.  A bare column reference returns the
    input column itself (zero-copy); every other node builds one fresh
    list per call.
    """
    memo = _memo if _memo is not None else {}
    if isinstance(expr, Col):
        idx = _col_index(expr.name, schema, memo)
        return lambda cols, n: cols[idx]

    if isinstance(expr, Lit):
        value = expr.value
        return lambda cols, n: [value] * n

    if isinstance(expr, (Arith, Cmp)):
        fn = (_ARITH_FNS if isinstance(expr, Arith) else _CMP_FNS)[expr.op]
        lhs, rhs = expr.left, expr.right
        if isinstance(lhs, Col):
            li = _col_index(lhs.name, schema, memo)
            if isinstance(rhs, Lit):
                value = rhs.value
                return lambda cols, n: [fn(v, value) for v in cols[li]]
            if isinstance(rhs, Col):
                ri = _col_index(rhs.name, schema, memo)
                return lambda cols, n: [
                    fn(a, b) for a, b in zip(cols[li], cols[ri])
                ]
        elif isinstance(lhs, Lit) and isinstance(rhs, Col):
            value = lhs.value
            ri = _col_index(rhs.name, schema, memo)
            return lambda cols, n: [fn(value, v) for v in cols[ri]]
        left = compile_expr_columns(lhs, schema, memo)
        right = compile_expr_columns(rhs, schema, memo)
        return lambda cols, n: [
            fn(a, b) for a, b in zip(left(cols, n), right(cols, n))
        ]

    if isinstance(expr, And):
        parts = [compile_expr_columns(t, schema, memo) for t in expr.terms]
        return lambda cols, n: [
            all(vs) for vs in zip(*(p(cols, n) for p in parts))
        ]

    if isinstance(expr, Or):
        parts = [compile_expr_columns(t, schema, memo) for t in expr.terms]
        return lambda cols, n: [
            any(vs) for vs in zip(*(p(cols, n) for p in parts))
        ]

    if isinstance(expr, Not):
        inner = compile_expr_columns(expr.term, schema, memo)
        return lambda cols, n: [not v for v in inner(cols, n)]

    if isinstance(expr, Like):
        match = like_pattern_to_regex(expr.pattern).match
        if isinstance(expr.term, Col):
            idx = _col_index(expr.term.name, schema, memo)
            return lambda cols, n: [
                match(v) is not None for v in cols[idx]
            ]
        inner = compile_expr_columns(expr.term, schema, memo)
        return lambda cols, n: [
            match(v) is not None for v in inner(cols, n)
        ]

    if isinstance(expr, Func):
        fn = expr.fn
        args = [compile_expr_columns(a, schema, memo) for a in expr.args]
        if len(args) == 1:
            arg0 = args[0]
            return lambda cols, n: [fn(v) for v in arg0(cols, n)]
        return lambda cols, n: [
            fn(*vs) for vs in zip(*(a(cols, n) for a in args))
        ]

    raise PlanError("cannot compile expression %r" % (expr,))


def compile_predicate_columns(expr: Expr, schema: Schema) -> SelectionFn:
    """Bind a predicate as a selection kernel: ``(columns, n_rows)`` to
    the ascending indices of the rows it accepts.

    Selects exactly the rows the row closure would accept (truthiness,
    matching :func:`compile_predicate`'s ``bool`` coercion).  A
    conjunction evaluates its first term over the whole batch and each
    later term only to *refine* the surviving selection, so rows
    rejected early are never re-tested.
    """
    memo: Dict[str, int] = {}
    if isinstance(expr, And):
        parts = [
            compile_expr_columns(t, schema, memo) for t in expr.terms
        ]

        def select_and(cols, n):
            selection = None
            for part in parts:
                values = part(cols, n)
                if selection is None:
                    selection = [i for i in range(n) if values[i]]
                else:
                    selection = [i for i in selection if values[i]]
                if not selection:
                    break
            return list(range(n)) if selection is None else selection

        return select_and

    if isinstance(expr, Cmp) and isinstance(expr.left, Col):
        fn = _CMP_FNS[expr.op]
        idx = _col_index(expr.left.name, schema, memo)
        if isinstance(expr.right, Lit):
            value = expr.right.value
            return lambda cols, n: [
                i for i, v in enumerate(cols[idx]) if fn(v, value)
            ]
        if isinstance(expr.right, Col):
            ri = _col_index(expr.right.name, schema, memo)
            return lambda cols, n: [
                i for i, (a, b) in enumerate(zip(cols[idx], cols[ri]))
                if fn(a, b)
            ]

    values_fn = compile_expr_columns(expr, schema, memo)
    return lambda cols, n: [
        i for i, v in enumerate(values_fn(cols, n)) if v
    ]
