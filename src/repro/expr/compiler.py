"""Compile expression ASTs into row functions.

Operators bind expressions to their input schema exactly once; the
returned closures then evaluate per tuple with no name lookups.  This
is the standard interpretation-avoidance trick for row-at-a-time
engines and keeps the pure-Python push engine fast enough for the
benchmark scale factors.
"""

from __future__ import annotations

import operator
import re
from typing import Callable, Tuple

from repro.common.errors import PlanError
from repro.data.schema import Schema
from repro.expr.expressions import (
    And, Arith, Cmp, Col, Expr, Func, Like, Lit, Not, Or,
)

Row = Tuple
RowFn = Callable[[Row], object]

_CMP_FNS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITH_FNS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


def like_pattern_to_regex(pattern: str) -> "re.Pattern":
    """Translate a SQL LIKE pattern into an anchored regular expression."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def compile_expr(expr: Expr, schema: Schema) -> RowFn:
    """Bind ``expr`` to ``schema`` and return a ``row -> value`` function."""
    if isinstance(expr, Col):
        idx = schema.index_of(expr.name)
        return lambda row: row[idx]

    if isinstance(expr, Lit):
        value = expr.value
        return lambda row: value

    if isinstance(expr, Arith):
        fn = _ARITH_FNS[expr.op]
        left = compile_expr(expr.left, schema)
        right = compile_expr(expr.right, schema)
        return lambda row: fn(left(row), right(row))

    if isinstance(expr, Cmp):
        fn = _CMP_FNS[expr.op]
        left = compile_expr(expr.left, schema)
        right = compile_expr(expr.right, schema)
        return lambda row: fn(left(row), right(row))

    if isinstance(expr, And):
        parts = [compile_expr(t, schema) for t in expr.terms]
        return lambda row: all(p(row) for p in parts)

    if isinstance(expr, Or):
        parts = [compile_expr(t, schema) for t in expr.terms]
        return lambda row: any(p(row) for p in parts)

    if isinstance(expr, Not):
        inner = compile_expr(expr.term, schema)
        return lambda row: not inner(row)

    if isinstance(expr, Like):
        inner = compile_expr(expr.term, schema)
        regex = like_pattern_to_regex(expr.pattern)
        return lambda row: regex.match(inner(row)) is not None

    if isinstance(expr, Func):
        fn = expr.fn
        args = [compile_expr(a, schema) for a in expr.args]
        if len(args) == 1:
            arg0 = args[0]
            return lambda row: fn(arg0(row))
        return lambda row: fn(*(a(row) for a in args))

    raise PlanError("cannot compile expression %r" % (expr,))


def compile_predicate(expr: Expr, schema: Schema) -> Callable[[Row], bool]:
    """Like :func:`compile_expr` but coerces the result to bool."""
    fn = compile_expr(expr, schema)
    return lambda row: bool(fn(row))
