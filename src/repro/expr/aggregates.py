"""Aggregate function specifications and accumulators.

Hash-based group-by (one of the paper's two stateful operator kinds)
maintains, per group key, one accumulator per aggregate.  The Table I
workload needs SUM, MIN and AVG; COUNT and MAX complete the usual set.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import PlanError
from repro.data.schema import FLOAT, INT, Schema
from repro.expr.expressions import Expr

SUM = "sum"
MIN = "min"
MAX = "max"
AVG = "avg"
COUNT = "count"

_VALID = frozenset({SUM, MIN, MAX, AVG, COUNT})


class AggregateSpec:
    """One aggregate column: ``func(input) AS output_name``.

    ``input`` may be None only for COUNT (i.e. ``COUNT(*)``).
    """

    __slots__ = ("func", "input", "output_name")

    def __init__(self, func: str, input: Optional[Expr], output_name: str):
        if func not in _VALID:
            raise PlanError("unknown aggregate function %r" % func)
        if input is None and func != COUNT:
            raise PlanError("%s requires an input expression" % func)
        if not output_name:
            raise PlanError("aggregate needs an output name")
        self.func = func
        self.input = input
        self.output_name = output_name

    def result_type(self, schema: Schema) -> str:
        if self.func == COUNT:
            return INT
        if self.func == AVG:
            return FLOAT
        assert self.input is not None
        return self.input.result_type(schema)

    def make_accumulator(self) -> "Accumulator":
        return _ACCUMULATORS[self.func]()

    def __repr__(self) -> str:
        return "AggregateSpec(%s, %r, as=%r)" % (
            self.func, self.input, self.output_name,
        )


class Accumulator:
    """Incremental aggregate state; one instance per (group, aggregate)."""

    __slots__ = ()

    def add(self, value) -> None:
        raise NotImplementedError

    def result(self):
        raise NotImplementedError

    def byte_size(self) -> int:
        """State footprint; COUNT/SUM/MIN/MAX hold one value, AVG two."""
        return 16


class _SumAcc(Accumulator):
    __slots__ = ("total",)

    def __init__(self):
        self.total = 0

    def add(self, value) -> None:
        self.total += value

    def result(self):
        return self.total


class _CountAcc(Accumulator):
    __slots__ = ("count",)

    def __init__(self):
        self.count = 0

    def add(self, value) -> None:
        self.count += 1

    def result(self):
        return self.count


class _MinAcc(Accumulator):
    __slots__ = ("value",)

    def __init__(self):
        self.value = None

    def add(self, value) -> None:
        if self.value is None or value < self.value:
            self.value = value

    def result(self):
        return self.value


class _MaxAcc(Accumulator):
    __slots__ = ("value",)

    def __init__(self):
        self.value = None

    def add(self, value) -> None:
        if self.value is None or value > self.value:
            self.value = value

    def result(self):
        return self.value


class _AvgAcc(Accumulator):
    __slots__ = ("total", "count")

    def __init__(self):
        self.total = 0.0
        self.count = 0

    def add(self, value) -> None:
        self.total += value
        self.count += 1

    def result(self):
        if self.count == 0:
            return None
        return self.total / self.count

    def byte_size(self) -> int:
        return 24


_ACCUMULATORS = {
    SUM: _SumAcc,
    COUNT: _CountAcc,
    MIN: _MinAcc,
    MAX: _MaxAcc,
    AVG: _AvgAcc,
}
