"""Scalar expression AST.

Expressions appear in filters, join residual predicates, projections
and aggregate inputs.  The AST is deliberately small — the workload
queries of the paper's Table I need columns, literals, arithmetic,
comparisons, boolean connectives, SQL ``LIKE`` and a ``year()``
function — but each node knows the columns it references, which the
source-predicate graph (Section IV-A) and the magic-sets rewriter use
for correlation analysis.

Evaluation goes through :mod:`repro.expr.compiler`, which binds column
references to row positions once per operator rather than per tuple.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple, Union

from repro.common.errors import PlanError
from repro.data.schema import FLOAT, INT, STR, Schema

#: Comparison operators supported by :class:`Cmp`.
CMP_OPS = ("=", "!=", "<", "<=", ">", ">=")
#: Arithmetic operators supported by :class:`Arith`.
ARITH_OPS = ("+", "-", "*", "/")


class Expr:
    """Base class for all scalar expressions."""

    def columns(self) -> FrozenSet[str]:
        """Names of all columns referenced anywhere in the expression."""
        raise NotImplementedError

    def result_type(self, schema: Schema) -> str:
        """Static type of the expression's value over ``schema``."""
        raise NotImplementedError

    # Operator sugar so workload definitions read like SQL fragments.
    def __add__(self, other) -> "Arith":
        return Arith("+", self, _wrap(other))

    def __sub__(self, other) -> "Arith":
        return Arith("-", self, _wrap(other))

    def __mul__(self, other) -> "Arith":
        return Arith("*", self, _wrap(other))

    def __truediv__(self, other) -> "Arith":
        return Arith("/", self, _wrap(other))

    def eq(self, other) -> "Cmp":
        return Cmp("=", self, _wrap(other))

    def ne(self, other) -> "Cmp":
        return Cmp("!=", self, _wrap(other))

    def lt(self, other) -> "Cmp":
        return Cmp("<", self, _wrap(other))

    def le(self, other) -> "Cmp":
        return Cmp("<=", self, _wrap(other))

    def gt(self, other) -> "Cmp":
        return Cmp(">", self, _wrap(other))

    def ge(self, other) -> "Cmp":
        return Cmp(">=", self, _wrap(other))

    def like(self, pattern: str) -> "Like":
        return Like(self, pattern)


def _wrap(value: Union["Expr", int, float, str]) -> "Expr":
    return value if isinstance(value, Expr) else Lit(value)


class Col(Expr):
    """Reference to a named column."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise PlanError("column reference must have a name")
        self.name = name

    def columns(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def result_type(self, schema: Schema) -> str:
        return schema.attribute(self.name).type

    def __repr__(self) -> str:
        return "Col(%r)" % self.name


class Lit(Expr):
    """Constant literal."""

    __slots__ = ("value",)

    def __init__(self, value: Union[int, float, str]):
        self.value = value

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def result_type(self, schema: Schema) -> str:
        if isinstance(self.value, bool):
            return INT
        if isinstance(self.value, int):
            return INT
        if isinstance(self.value, float):
            return FLOAT
        if isinstance(self.value, str):
            return STR
        raise PlanError("unsupported literal %r" % (self.value,))

    def __repr__(self) -> str:
        return "Lit(%r)" % (self.value,)


class Arith(Expr):
    """Binary arithmetic."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in ARITH_OPS:
            raise PlanError("unknown arithmetic operator %r" % op)
        self.op = op
        self.left = left
        self.right = right

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def result_type(self, schema: Schema) -> str:
        lt = self.left.result_type(schema)
        rt = self.right.result_type(schema)
        if self.op == "/":
            return FLOAT
        return FLOAT if FLOAT in (lt, rt) else INT

    def __repr__(self) -> str:
        return "(%r %s %r)" % (self.left, self.op, self.right)


class Cmp(Expr):
    """Binary comparison; evaluates to a boolean."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in CMP_OPS:
            raise PlanError("unknown comparison operator %r" % op)
        self.op = op
        self.left = left
        self.right = right

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def result_type(self, schema: Schema) -> str:
        return INT

    def is_column_equality(self) -> Optional[Tuple[str, str]]:
        """If this is ``col = col``, the two column names, else None.

        These are the correlation predicates AIP keys on (Section III-C
        limits the implementation to equality conditions).
        """
        if (
            self.op == "="
            and isinstance(self.left, Col)
            and isinstance(self.right, Col)
        ):
            return (self.left.name, self.right.name)
        return None

    def __repr__(self) -> str:
        return "(%r %s %r)" % (self.left, self.op, self.right)


class And(Expr):
    """Conjunction of one or more boolean expressions."""

    __slots__ = ("terms",)

    def __init__(self, *terms: Expr):
        if not terms:
            raise PlanError("And requires at least one term")
        self.terms: Tuple[Expr, ...] = tuple(terms)

    def columns(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for t in self.terms:
            out |= t.columns()
        return out

    def result_type(self, schema: Schema) -> str:
        return INT

    def conjuncts(self) -> List[Expr]:
        """Flatten nested conjunctions into a conjunct list."""
        out: List[Expr] = []
        for t in self.terms:
            if isinstance(t, And):
                out.extend(t.conjuncts())
            else:
                out.append(t)
        return out

    def __repr__(self) -> str:
        return "And(%s)" % ", ".join(repr(t) for t in self.terms)


class Or(Expr):
    """Disjunction of one or more boolean expressions."""

    __slots__ = ("terms",)

    def __init__(self, *terms: Expr):
        if not terms:
            raise PlanError("Or requires at least one term")
        self.terms: Tuple[Expr, ...] = tuple(terms)

    def columns(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for t in self.terms:
            out |= t.columns()
        return out

    def result_type(self, schema: Schema) -> str:
        return INT

    def __repr__(self) -> str:
        return "Or(%s)" % ", ".join(repr(t) for t in self.terms)


class Not(Expr):
    """Boolean negation."""

    __slots__ = ("term",)

    def __init__(self, term: Expr):
        self.term = term

    def columns(self) -> FrozenSet[str]:
        return self.term.columns()

    def result_type(self, schema: Schema) -> str:
        return INT

    def __repr__(self) -> str:
        return "Not(%r)" % self.term


class Like(Expr):
    """SQL ``LIKE`` with ``%`` (any run) and ``_`` (any char) wildcards."""

    __slots__ = ("term", "pattern")

    def __init__(self, term: Expr, pattern: str):
        self.term = term
        self.pattern = pattern

    def columns(self) -> FrozenSet[str]:
        return self.term.columns()

    def result_type(self, schema: Schema) -> str:
        return INT

    def __repr__(self) -> str:
        return "Like(%r, %r)" % (self.term, self.pattern)


#: Scalar functions available to :class:`Func`.
_FUNCTIONS = {
    "year": lambda s: int(s[:4]),   # ISO date string -> year
    "abs": abs,
    "round2": lambda x: round(x, 2),
}

_FUNCTION_TYPES = {"year": INT, "abs": FLOAT, "round2": FLOAT}


class Func(Expr):
    """Call of a named scalar function over argument expressions."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, *args: Expr):
        if name not in _FUNCTIONS:
            raise PlanError("unknown function %r" % name)
        self.name = name
        self.args: Tuple[Expr, ...] = tuple(args)

    @property
    def fn(self):
        return _FUNCTIONS[self.name]

    def columns(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for a in self.args:
            out |= a.columns()
        return out

    def result_type(self, schema: Schema) -> str:
        return _FUNCTION_TYPES[self.name]

    def __repr__(self) -> str:
        return "Func(%r, %s)" % (self.name, ", ".join(repr(a) for a in self.args))


def col(name: str) -> Col:
    """Shorthand constructor for a column reference."""
    return Col(name)


def lit(value: Union[int, float, str]) -> Lit:
    """Shorthand constructor for a literal."""
    return Lit(value)


def conjuncts_of(expr: Optional[Expr]) -> List[Expr]:
    """Flatten an optional predicate into a list of conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, And):
        return expr.conjuncts()
    return [expr]
