"""Distributed query simulation (Section V-B / VI-C of the paper).

The paper's distributed experiments run Tukwila instances on several
nodes: the "master" runs the AIP Manager and the global plan; remote
sites serve relations over (simulated here) Ethernet; AIP filters are
shipped to remote sites to cut transfer volume — an adaptive Bloomjoin.
"""

from repro.distributed.network import NetworkModel
from repro.distributed.site import Site, Placement
from repro.distributed.coordinator import DistributedQuery

__all__ = ["NetworkModel", "Site", "Placement", "DistributedQuery"]
