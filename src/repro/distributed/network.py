"""Network model for the distributed simulation.

Links are point-to-point between the master and each remote site.  The
paper uses two figures worth noting: data is fetched "across a 100Mb
Ethernet" (Section VI-C), while "our cost estimates for transmitting
Bloom filters assume 10Mbps data transfer rates" (Section VI) — i.e.
the *cost model* may deliberately be more pessimistic than the wire.
Both knobs exist here.
"""

from __future__ import annotations

from typing import Dict

from repro.common.errors import NetworkError

MBPS = 1e6 / 8.0  # bytes per second per Mbps


class Link:
    """One directional link's parameters."""

    __slots__ = ("bandwidth", "latency")

    def __init__(self, bandwidth: float, latency: float):
        if bandwidth <= 0:
            raise NetworkError("bandwidth must be positive")
        if latency < 0:
            raise NetworkError("latency must be non-negative")
        self.bandwidth = bandwidth
        self.latency = latency

    def transfer_time(self, n_bytes: int) -> float:
        return self.latency + n_bytes / self.bandwidth


class NetworkModel:
    """Named links between the master node and remote sites."""

    def __init__(
        self,
        default_bandwidth: float = 100 * MBPS,
        default_latency: float = 1.0e-3,
        estimate_bandwidth: float = 10 * MBPS,
    ):
        self._default = Link(default_bandwidth, default_latency)
        self._links: Dict[str, Link] = {}
        #: Bandwidth the optimizer *assumes* when costing filter
        #: shipment (paper: 10 Mbps) — may differ from actual links.
        self.estimate_bandwidth = estimate_bandwidth

    def set_link(self, site: str, bandwidth: float, latency: float) -> None:
        self._links[site] = Link(bandwidth, latency)

    def link_to(self, site: str) -> Link:
        return self._links.get(site, self._default)

    def transfer_time(self, site: str, n_bytes: int) -> float:
        return self.link_to(site).transfer_time(n_bytes)

    def estimated_ship_cost(self, n_bytes: int) -> float:
        """Cost-model view of shipping ``n_bytes`` (Section V-B: "we
        simply estimate the cost of shipping n bytes")."""
        return n_bytes / self.estimate_bandwidth
