"""Distributed query coordination.

Wires a logical plan, a table placement and a network model into the
single-clock simulation:

* scans of remotely placed tables are marked with their site and get
  remote arrival models paced by the site's link;
* the cost-based AIP Manager (running at the master, as in the paper)
  ships beneficial filters to remote scans, paying polling staleness
  plus transfer time before they activate at the source.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.distributed.network import NetworkModel
from repro.distributed.site import Placement
from repro.exec.arrival import ArrivalModel
from repro.exec.context import ExecutionContext, ExecutionStrategy
from repro.exec.engine import QueryResult, execute_plan
from repro.expr.compiler import compile_predicate
from repro.plan.logical import Filter, LogicalNode, Scan


def mark_remote_scans(plan: LogicalNode, placement: Placement) -> None:
    """Stamp each scan with its owning site (None = master-local), so
    translation applies the remote link model.  Shared by the
    coordinator and the service layer's plan builder."""
    for node in plan.walk():
        if isinstance(node, Scan):
            node.site = placement.site_of(node.table_name)


def remote_arrival_resolver(
    network: NetworkModel, pushed=None
) -> Callable[[Scan], Optional[ArrivalModel]]:
    """Arrival resolver pacing remote scans on ``network``'s links,
    optionally installing pushed predicates (``{scan node_id:
    [predicates]}``) at the source.  Shared by the coordinator and the
    service layer so both paths cost distributed scans identically."""
    pushed = pushed or {}

    def resolver(node: Scan) -> Optional[ArrivalModel]:
        if node.site is None:
            return None  # default local streaming
        link = network.link_to(node.site)
        model = ArrivalModel.remote(
            bandwidth=link.bandwidth,
            row_bytes=node.schema.row_byte_size(),
            latency=link.latency,
        )
        for predicate in pushed.get(node.node_id, ()):
            model.install_predicate(
                compile_predicate(predicate, node.schema)
            )
        return model

    return resolver


class DistributedQuery:
    """One query over placed tables, runnable under any strategy.

    ``push_predicates=True`` relocates filter predicates sitting
    directly above remote scans to the owning site (Section V-A:
    Tukwila "considers plans that 'push' portions of the query from the
    'master' query node to the remote source"), so rejected rows never
    consume link bandwidth.
    """

    def __init__(
        self,
        plan: LogicalNode,
        placement: Placement,
        network: Optional[NetworkModel] = None,
        push_predicates: bool = False,
    ):
        self.plan = plan
        self.placement = placement
        self.network = network or NetworkModel()
        self.push_predicates = push_predicates
        self._mark_scans(plan)
        self._pushed = self._collect_pushable() if push_predicates else {}

    def _mark_scans(self, plan: LogicalNode) -> None:
        mark_remote_scans(plan, self.placement)

    def _collect_pushable(self):
        """Map remote-scan node ids to the predicates of Filter chains
        directly above them (evaluated at the source as well; the
        master-side filter then passes trivially)."""
        pushed = {}
        seen_predicates = set()
        for node in self.plan.walk():
            if not isinstance(node, Filter):
                continue
            # Walk down through stacked filters to the scan, gathering
            # every predicate on the way (dedup: inner filters of a
            # chain are themselves visited by the walk).
            chain = [node.predicate]
            child = node.child
            while isinstance(child, Filter):
                chain.append(child.predicate)
                child = child.child
            if isinstance(child, Scan) and child.site is not None:
                for predicate in chain:
                    if id(predicate) not in seen_predicates:
                        seen_predicates.add(id(predicate))
                        pushed.setdefault(child.node_id, []).append(predicate)
        return pushed

    def arrival_resolver(self) -> Callable[[Scan], Optional[ArrivalModel]]:
        return remote_arrival_resolver(self.network, self._pushed)

    def execute(
        self,
        ctx: ExecutionContext,
    ) -> QueryResult:
        """Run under the context's strategy with remote arrival pacing."""
        # Align the context's network cost constants with the actual
        # links so strategy-side shipping estimates stay coherent.
        default_link = self.network.link_to("__default__")
        ctx.cost_model.network_bandwidth = default_link.bandwidth
        ctx.cost_model.network_latency = default_link.latency
        return execute_plan(self.plan, ctx, self.arrival_resolver())

    def bytes_fetched(self, result: QueryResult) -> int:
        """Bytes actually moved from remote sites in a finished run."""
        return result.metrics.network_bytes
