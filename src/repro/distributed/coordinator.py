"""Distributed query coordination.

Wires a logical plan, a table placement and a network model into the
single-clock simulation:

* scans of remotely placed tables are marked with their site and get
  remote arrival models paced by the site's link;
* scans of *partitioned* tables are marked with their partition spec;
  translation fans each out into one per-partition remote scan, all
  merged under the single virtual clock, so N partitions on N links
  stream in parallel;
* joins over partitioned tables are costed by the co-partitioning
  analysis: a join whose two sides are partitioned on the join key with
  aligned specs runs partition-local (no cross-site traffic beyond the
  normal partition streams), otherwise the smaller partitioned side is
  broadcast — each of its rows pays the wire once per destination
  partition of the other side;
* the cost-based AIP Manager (running at the master, as in the paper)
  ships beneficial filters to remote scans — every partition of a
  partitioned source — paying polling staleness plus per-partition
  transfer time before they activate at each source.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.data.catalog import Catalog
from repro.distributed.network import NetworkModel
from repro.distributed.site import Placement
from repro.exec.arrival import ArrivalModel
from repro.exec.context import ExecutionContext
from repro.exec.engine import QueryResult, execute_plan
from repro.expr.compiler import compile_predicate
from repro.plan.logical import Filter, Join, LogicalNode, Scan


def mark_remote_scans(plan: LogicalNode, placement: Placement) -> None:
    """Stamp each scan with its owning site (None = master-local) or,
    for partitioned tables, its partition spec, so translation applies
    the remote link model / fans the scan out.  Shared by the
    coordinator and the service layer's plan builder."""
    from repro.service.fingerprint import invalidate_signatures

    for node in plan.walk():
        if isinstance(node, Scan):
            node.site = placement.site_of(node.table_name)
            node.partition = placement.partitioning_of(node.table_name)
    # Site stamping changes scan signatures (and, transitively, every
    # ancestor's); drop any memoised renderings of the pre-stamped plan.
    invalidate_signatures(plan)


def _partitioned_scans(side: LogicalNode) -> List[Scan]:
    """All partitioned base scans feeding one join side."""
    return [
        node for node in side.walk()
        if isinstance(node, Scan) and node.partition is not None
    ]


def _pick_broadcast_scan(
    side: LogicalNode, keys, scans: List[Scan]
) -> Scan:
    """The scan whose partitions a broadcast of this side touches:
    prefer one partitioned on a join-key origin (the stream is
    partitioned by inheritance), else the side's first partitioned
    scan."""
    key_origins = {side.column_origins.get(k) for k in keys} - {None}
    for node in scans:
        if (node.table_name, node.partition.key) in key_origins:
            return node
    return scans[0]


def apply_broadcast_fanouts(plan: LogicalNode, catalog: Catalog) -> None:
    """Co-partitioning analysis (run after :func:`mark_remote_scans`).

    A join is **co-partitioned** when some join-key *pair* traces back
    (via ``column_origins``) to the partition keys of partitioned scans
    on both sides with aligned specs — equal join keys then land on the
    same partition index at the same site, and the join runs
    partition-local with no extra wire cost.  Otherwise, if both sides
    read partitioned tables, the smaller side (by catalog row counts)
    must be broadcast to every partition of the larger: its rows each
    cross the wire once per destination partition, recorded as
    ``broadcast_fanout`` on the logical scan and charged by the
    partition arrival models.  A scan feeding several such joins pays
    the largest fan-out it needs.
    """
    for node in plan.walk():
        if isinstance(node, Scan):
            node.broadcast_fanout = 1
    for node in plan.walk():
        if not isinstance(node, Join):
            continue
        left_scans = _partitioned_scans(node.left)
        right_scans = _partitioned_scans(node.right)
        if not left_scans or not right_scans:
            continue  # at most one partitioned side: fetch to master
        by_table_left = {s.table_name: s for s in left_scans}
        by_table_right = {s.table_name: s for s in right_scans}
        co_partitioned = False
        for left_key, right_key in node.key_pairs():
            left_origin = node.left.column_origins.get(left_key)
            right_origin = node.right.column_origins.get(right_key)
            if left_origin is None or right_origin is None:
                continue
            left_scan = by_table_left.get(left_origin[0])
            right_scan = by_table_right.get(right_origin[0])
            if (
                left_scan is not None
                and right_scan is not None
                and left_origin[1] == left_scan.partition.key
                and right_origin[1] == right_scan.partition.key
                and left_scan.partition.aligned_with(right_scan.partition)
            ):
                co_partitioned = True
                break
        if co_partitioned:
            continue  # partition-local join
        left_scan = _pick_broadcast_scan(node.left, node.left_keys, left_scans)
        right_scan = _pick_broadcast_scan(
            node.right, node.right_keys, right_scans
        )
        left_rows = catalog.stats(left_scan.table_name).row_count
        right_rows = catalog.stats(right_scan.table_name).row_count
        if left_rows <= right_rows:
            smaller, other = left_scan, right_scan
        else:
            smaller, other = right_scan, left_scan
        smaller.broadcast_fanout = max(
            smaller.broadcast_fanout, other.partition.n_partitions
        )


def remote_arrival_resolver(
    network: NetworkModel, pushed=None
) -> Callable[..., Optional[ArrivalModel]]:
    """Arrival resolver pacing remote scans on ``network``'s links,
    optionally installing pushed predicates (``{scan node_id:
    [predicates]}``) at the source.  Shared by the coordinator and the
    service layer so both paths cost distributed scans identically.

    The resolver ``accepts_site``: translation calls it once per
    partition of a fanned-out scan, so every partition paces on its own
    site's link and evaluates the pushed predicates at its source.
    """
    pushed = pushed or {}

    def resolver(node: Scan, site: Optional[str] = None) -> Optional[ArrivalModel]:
        target_site = site if site is not None else node.site
        if target_site is None:
            return None  # default local streaming
        link = network.link_to(target_site)
        model = ArrivalModel.remote(
            bandwidth=link.bandwidth,
            row_bytes=node.schema.row_byte_size(),
            latency=link.latency,
        )
        for predicate in pushed.get(node.node_id, ()):
            model.install_predicate(
                compile_predicate(predicate, node.schema)
            )
        return model

    resolver.accepts_site = True
    return resolver


class DistributedQuery:
    """One query over placed tables, runnable under any strategy.

    ``push_predicates=True`` relocates filter predicates sitting
    directly above remote scans to the owning site (Section V-A:
    Tukwila "considers plans that 'push' portions of the query from the
    'master' query node to the remote source"), so rejected rows never
    consume link bandwidth.  For a partitioned table the predicates are
    installed at every partition's source.
    """

    def __init__(
        self,
        plan: LogicalNode,
        placement: Placement,
        network: Optional[NetworkModel] = None,
        push_predicates: bool = False,
    ):
        self.plan = plan
        self.placement = placement
        self.network = network or NetworkModel()
        self.push_predicates = push_predicates
        self._mark_scans(plan)
        self._pushed = self._collect_pushable() if push_predicates else {}

    def _mark_scans(self, plan: LogicalNode) -> None:
        mark_remote_scans(plan, self.placement)

    def _collect_pushable(self):
        """Map remote-scan node ids to the predicates of Filter chains
        directly above them (evaluated at the source as well; the
        master-side filter then passes trivially)."""
        pushed = {}
        seen_predicates = set()
        for node in self.plan.walk():
            if not isinstance(node, Filter):
                continue
            # Walk down through stacked filters to the scan, gathering
            # every predicate on the way (dedup: inner filters of a
            # chain are themselves visited by the walk).
            chain = [node.predicate]
            child = node.child
            while isinstance(child, Filter):
                chain.append(child.predicate)
                child = child.child
            if isinstance(child, Scan) and (
                child.site is not None or child.partition is not None
            ):
                for predicate in chain:
                    if id(predicate) not in seen_predicates:
                        seen_predicates.add(id(predicate))
                        pushed.setdefault(child.node_id, []).append(predicate)
        return pushed

    def arrival_resolver(self) -> Callable[..., Optional[ArrivalModel]]:
        return remote_arrival_resolver(self.network, self._pushed)

    def execute(
        self,
        ctx: ExecutionContext,
    ) -> QueryResult:
        """Run under the context's strategy with remote arrival pacing."""
        # Align the context's network cost constants with the actual
        # links so strategy-side shipping estimates stay coherent, and
        # attach the network itself for per-site link accounting.
        default_link = self.network.link_to("__default__")
        ctx.cost_model.network_bandwidth = default_link.bandwidth
        ctx.cost_model.network_latency = default_link.latency
        ctx.network = self.network
        apply_broadcast_fanouts(self.plan, ctx.catalog)
        return execute_plan(self.plan, ctx, self.arrival_resolver())

    def bytes_fetched(self, result: QueryResult) -> int:
        """Bytes actually moved from remote sites in a finished run."""
        return result.metrics.network_bytes
