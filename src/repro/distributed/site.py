"""Sites, table placement, and horizontal partitioning.

A table is either *master-local* (the default), placed **whole** at one
remote site, or **partitioned** across several sites.  Partitioned
tables are the substrate of partition-parallel execution: the
coordinator fans a logical scan out into one per-partition remote scan,
each paced by its own link, all merged under the single virtual clock —
and the cost-based AIP manager ships beneficial filters to *every*
partition of the table.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.common.errors import NetworkError
from repro.common.hashing import stable_key

MASTER = "master"

#: Supported partitioning schemes.
HASH = "hash"
RANGE = "range"


class Site:
    """A named query node holding some relations."""

    __slots__ = ("name", "tables")

    def __init__(self, name: str, tables: Iterable[str] = ()):
        if not name:
            raise NetworkError("site needs a name")
        self.name = name
        self.tables: Set[str] = set(tables)

    def __repr__(self) -> str:
        return "Site(%r, tables=%s)" % (self.name, sorted(self.tables))


class PartitionSpec:
    """How one table is split across sites.

    ``scheme`` is ``"hash"`` (bucket ``i = stable_hash(key) % n``; the
    same process-stable hashing the summaries use, so partition
    assignment is deterministic across runs and machines) or
    ``"range"`` (``bounds`` is a sorted list of ``n - 1`` upper-bound
    split points; partition ``i`` holds keys in ``(bounds[i-1],
    bounds[i]]``-style half-open ranges via ``bisect``).

    Two specs *align* for a join when they would send equal keys to the
    same partition index **and** partition indices live on the same
    sites — that is what lets a co-partitioned join run partition-local
    with no data crossing between sites.
    """

    __slots__ = ("table", "key", "sites", "scheme", "bounds")

    def __init__(
        self,
        table: str,
        key: str,
        sites: Sequence[str],
        scheme: str = HASH,
        bounds: Optional[Sequence] = None,
    ):
        if not sites:
            raise NetworkError("partitioning %r needs at least one site" % table)
        if scheme not in (HASH, RANGE):
            raise NetworkError("unknown partitioning scheme %r" % scheme)
        if scheme == RANGE:
            bounds = list(bounds or ())
            if len(bounds) != len(sites) - 1:
                raise NetworkError(
                    "range partitioning over %d sites needs %d bounds, got %d"
                    % (len(sites), len(sites) - 1, len(bounds))
                )
            if bounds != sorted(bounds):
                raise NetworkError("range bounds must be sorted")
        elif bounds is not None:
            raise NetworkError("bounds only apply to range partitioning")
        for name in sites:
            if name == MASTER:
                raise NetworkError("partitions cannot live at the master")
            if not name:
                raise NetworkError("site needs a name")
        self.table = table
        self.key = key
        self.sites: Tuple[str, ...] = tuple(sites)
        self.scheme = scheme
        self.bounds = list(bounds) if bounds is not None else None

    @property
    def n_partitions(self) -> int:
        return len(self.sites)

    def partition_index(self, value) -> int:
        """The partition a key value belongs to (deterministic)."""
        if self.scheme == RANGE:
            return bisect_left(self.bounds, value)
        return hash(stable_key(value)) % len(self.sites)

    def split(self, rows: Sequence, key_index: int) -> List[List]:
        """Partition ``rows`` by the key at ``key_index``, preserving
        within-partition row order.  Partitions may come back empty —
        callers must treat an empty partition as a valid, immediately
        exhausted source."""
        parts: List[List] = [[] for _ in self.sites]
        index_of = self.partition_index
        for row in rows:
            parts[index_of(row[key_index])].append(row)
        return parts

    def aligned_with(self, other: "PartitionSpec") -> bool:
        """True when equal keys land on the same partition index *and*
        site under both specs — the co-partitioned join condition."""
        if self.scheme != other.scheme or self.sites != other.sites:
            return False
        if self.scheme == RANGE:
            return self.bounds == other.bounds
        return True  # same stable hash, same modulus, same site list

    def __repr__(self) -> str:
        return "PartitionSpec(%s by %s over %s, %s)" % (
            self.table, self.key, list(self.sites), self.scheme,
        )


class Placement:
    """Maps tables to the site(s) that own them; everything else is
    local to the master node."""

    def __init__(self, sites: Iterable[Site] = ()):
        self._site_of: Dict[str, str] = {}
        self._sites: Dict[str, Site] = {}
        self._partition_of: Dict[str, PartitionSpec] = {}
        for site in sites:
            self.add_site(site)

    def add_site(self, site: Site) -> None:
        if site.name == MASTER:
            raise NetworkError("the master site is implicit")
        if site.name in self._sites:
            raise NetworkError("duplicate site %r" % site.name)
        self._sites[site.name] = site
        for table in site.tables:
            if table in self._site_of:
                raise NetworkError(
                    "table %r is already placed at %r"
                    % (table, self._site_of[table])
                )
            if table in self._partition_of:
                raise NetworkError(
                    "table %r is already partitioned" % table
                )
            self._site_of[table] = site.name

    def partition_table(
        self,
        table: str,
        key: str,
        sites: Sequence[str],
        scheme: str = HASH,
        bounds: Optional[Sequence] = None,
    ) -> PartitionSpec:
        """Hash/range partition ``table`` across ``sites`` (names; sites
        are created on first use).  Returns the registered spec."""
        if table in self._site_of:
            raise NetworkError(
                "table %r is already placed whole at %r"
                % (table, self._site_of[table])
            )
        if table in self._partition_of:
            raise NetworkError("table %r is already partitioned" % table)
        spec = PartitionSpec(table, key, sites, scheme=scheme, bounds=bounds)
        for name in spec.sites:
            site = self._sites.get(name)
            if site is None:
                site = Site(name)
                self._sites[name] = site
            site.tables.add(table)
        self._partition_of[table] = spec
        return spec

    def site_of(self, table: str) -> Optional[str]:
        """Owning site name for a whole-placed table, or None when the
        table is master-local or partitioned."""
        return self._site_of.get(table)

    def partitioning_of(self, table: str) -> Optional[PartitionSpec]:
        """The partition spec of ``table``, or None when it is
        master-local or placed whole."""
        return self._partition_of.get(table)

    def site(self, name: str) -> Site:
        """Site lookup by name; unknown sites are an error, not a
        silently empty default."""
        try:
            return self._sites[name]
        except KeyError:
            raise NetworkError("unknown site %r" % name) from None

    def remote_tables(self) -> List[str]:
        return sorted(set(self._site_of) | set(self._partition_of))

    def sites(self) -> List[Site]:
        return [self._sites[name] for name in sorted(self._sites)]
