"""Sites and table placement."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.common.errors import NetworkError

MASTER = "master"


class Site:
    """A named query node holding some relations."""

    __slots__ = ("name", "tables")

    def __init__(self, name: str, tables: Iterable[str] = ()):
        if not name:
            raise NetworkError("site needs a name")
        self.name = name
        self.tables: Set[str] = set(tables)

    def __repr__(self) -> str:
        return "Site(%r, tables=%s)" % (self.name, sorted(self.tables))


class Placement:
    """Maps tables to the site that owns them; everything else is local
    to the master node."""

    def __init__(self, sites: Iterable[Site] = ()):
        self._site_of: Dict[str, str] = {}
        self._sites: Dict[str, Site] = {}
        for site in sites:
            self.add_site(site)

    def add_site(self, site: Site) -> None:
        if site.name == MASTER:
            raise NetworkError("the master site is implicit")
        if site.name in self._sites:
            raise NetworkError("duplicate site %r" % site.name)
        self._sites[site.name] = site
        for table in site.tables:
            if table in self._site_of:
                raise NetworkError(
                    "table %r is already placed at %r"
                    % (table, self._site_of[table])
                )
            self._site_of[table] = site.name

    def site_of(self, table: str) -> Optional[str]:
        """Owning site name, or None when the table is master-local."""
        return self._site_of.get(table)

    def remote_tables(self) -> List[str]:
        return sorted(self._site_of)

    def sites(self) -> List[Site]:
        return [self._sites[name] for name in sorted(self._sites)]
