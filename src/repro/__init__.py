"""repro — a reproduction of "Sideways Information Passing for
Push-Style Query Processing" (Ives & Taylor, ICDE 2008).

The package implements, from scratch, everything the paper's system
needs: a TPC-H data generator with Zipf skew, a deterministic
virtual-time push engine built on pipelined (symmetric) hash joins and
hash aggregation, a Tukwila-style optimizer layer (cardinality
estimation from keys/FKs, cost model, source-predicate graph), the
pipelined magic-sets baseline, the two Adaptive Information Passing
algorithms (greedy Feed-Forward and the Cost-Based AIP Manager with
distributed filter shipping), the full Table I workload, and a harness
that regenerates every figure of the evaluation section.

On top of the engine sits a multi-query service layer
(:mod:`repro.service`): a :class:`~repro.service.QueryService` runs a
*stream* of queries on one virtual clock with admission control,
pluggable schedulers, a result cache, and a cross-query AIP-set cache
that re-injects completed AIP sets into later queries — inter-query
sideways information passing.  See ``examples/query_service.py`` for a
runnable mixed Q1/Q17 stream demonstrating cross-query reuse.

Beneath the engine sits a paged storage layer (:mod:`repro.storage`):
a buffer manager streams base tables as evictable column pages, and a
:class:`~repro.storage.MemoryGovernor` enforces a process-wide state
budget — stateful operators spill hash partitions to disk Grace-style
and replay them on completion, with spill I/O charged to the virtual
clock.  Pass ``memory_budget=`` to ``run_workload_query`` /
``QueryService`` (or ``repro run --memory-budget``) to turn it on;
without it, execution is bit-identical to the storage-free engine.
DESIGN.md section 8 has the full protocol.

The service also has a network front door (:mod:`repro.net`): ``repro
serve`` listens on a TCP socket speaking a versioned length-prefixed
JSON protocol, ``repro.connect()`` returns a socket client, and
:class:`~repro.client.InProcessClient` is its embedded twin — both
hand back the same :class:`~repro.service.result.QueryResult`
bit-identically, with per-tenant hard quotas shedding over-cap
queries with retry hints.  DESIGN.md section 12 has the protocol.

Quickstart::

    from repro import (
        cached_tpch, scan, col, ExecutionContext, execute_plan,
        FeedForwardStrategy,
    )

    catalog = cached_tpch(scale_factor=0.01)
    plan = (
        scan(catalog, "part").filter(col("p_size").eq(1))
        .join(scan(catalog, "partsupp"), on=[("p_partkey", "ps_partkey")])
        .build()
    )
    result = execute_plan(
        plan, ExecutionContext(catalog, strategy=FeedForwardStrategy())
    )
    print(len(result), result.metrics.summary())
"""

from repro.data.catalog import Catalog
from repro.data.tpch import TpchConfig, cached_tpch, generate_tpch
from repro.expr.aggregates import AVG, COUNT, MAX, MIN, SUM, AggregateSpec
from repro.expr.expressions import And, Func, Like, Not, Or, col, lit
from repro.plan.builder import PlanBuilder, scan
from repro.plan.validate import validate_plan
from repro.exec.arrival import ArrivalModel
from repro.exec.context import ExecutionContext, ExecutionStrategy
from repro.exec.costs import CostModel
from repro.exec.engine import EngineResult, execute_plan
from repro.aip.feedforward import FeedForwardStrategy
from repro.aip.manager import CostBasedStrategy
from repro.optimizer.magic import apply_magic, magic_filter_set
from repro.distributed.coordinator import DistributedQuery
from repro.distributed.network import NetworkModel
from repro.distributed.site import Placement, Site
from repro.harness.runner import run_workload_query
from repro.harness.concurrent import CompositeStrategy, run_concurrent
from repro.storage.governor import MemoryGovernor
from repro.optimizer.explain import explain
from repro.optimizer.planner import ConjunctiveQuery, plan_query
from repro.sql import parse as parse_sql, sql_to_plan
from repro.service import (
    AdmissionController, AIPSetCache, QueryResult, QueryService,
    ResultCache, ServiceConfig, ServiceReport, TenantQuota, WorkloadItem,
    parse_workload, plan_signature,
)
from repro.client import Client, InProcessClient, connect
from repro.workloads.registry import QUERIES, get_query

__version__ = "1.2.0"

__all__ = [
    "Catalog", "TpchConfig", "cached_tpch", "generate_tpch",
    "AggregateSpec", "SUM", "MIN", "MAX", "AVG", "COUNT",
    "col", "lit", "And", "Or", "Not", "Like", "Func",
    "PlanBuilder", "scan", "validate_plan",
    "ArrivalModel", "ExecutionContext", "ExecutionStrategy", "CostModel",
    "EngineResult", "execute_plan",
    "FeedForwardStrategy", "CostBasedStrategy",
    "apply_magic", "magic_filter_set",
    "DistributedQuery", "NetworkModel", "Placement", "Site",
    "run_workload_query", "QUERIES", "get_query",
    "run_concurrent", "CompositeStrategy", "MemoryGovernor",
    "explain", "ConjunctiveQuery", "plan_query",
    "parse_sql", "sql_to_plan",
    "QueryService", "ServiceReport", "AdmissionController",
    "AIPSetCache", "ResultCache", "WorkloadItem", "parse_workload",
    "plan_signature",
    "QueryResult", "ServiceConfig", "TenantQuota",
    "Client", "InProcessClient", "connect",
]
