"""Memory governor: leases, reclaim policy, edge-case budgets."""

import os

import pytest

from repro.storage.governor import MemoryGovernor
from repro.storage.spill import Spool


class TestLeases:
    def test_grow_shrink_close(self):
        g = MemoryGovernor(budget=None)
        lease = g.lease("op")
        lease.grow(100)
        assert g.resident_bytes == 100
        assert g.peak_resident_bytes == 100
        lease.shrink(40)
        assert g.resident_bytes == 60
        lease.close()
        assert g.resident_bytes == 0
        assert g.peak_resident_bytes == 100
        g.close()

    def test_negative_grow_releases(self):
        g = MemoryGovernor(budget=None)
        lease = g.lease("op")
        g.request(lease, 100)
        g.request(lease, -30)
        assert lease.nbytes == 70
        g.close()

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            MemoryGovernor(budget=-1)


class _FakeSpillable:
    def __init__(self, nbytes):
        self.nbytes = nbytes
        self.asked = []

    def spillable_nbytes(self):
        return self.nbytes

    def spill(self, need, ctx):
        self.asked.append(need)
        freed = min(self.nbytes, need)
        self.nbytes -= freed
        return freed


class TestReclaim:
    def test_buffer_evicted_before_operators_spill(self):
        g = MemoryGovernor(budget=1000)
        g.buffer.add("page", 600)
        handler = _FakeSpillable(600)
        g.register_spillable(handler)
        lease = g.lease("op")
        lease.grow(600)
        # 600 page + 600 grow > 1000: the page eviction alone covers it.
        assert not handler.asked
        assert g.resident_bytes == 600
        assert g.peak_resident_bytes <= 1000
        g.close()

    def test_largest_spillable_asked_first(self):
        g = MemoryGovernor(budget=100)
        small = _FakeSpillable(40)
        big = _FakeSpillable(90)
        g.register_spillable(small)
        g.register_spillable(big)
        lease = g.lease("op")
        lease.grow(40)
        lease.grow(40)
        lease.grow(40)  # 120 > 100: needs 20; big spills first
        assert big.asked and not small.asked
        g.close()

    def test_over_budget_recorded_when_nothing_reclaimable(self):
        g = MemoryGovernor(budget=10)
        lease = g.lease("op")
        lease.grow(100)
        assert g.resident_bytes == 100  # correctness over enforcement
        assert g.over_budget_events == 1
        g.close()


class TestEdgeBudgets:
    def test_zero_budget_still_functions(self):
        g = MemoryGovernor(budget=0)
        lease = g.lease("op")
        lease.grow(10)
        lease.shrink(10)
        assert g.over_budget_events == 1
        assert g.resident_bytes == 0
        g.close()

    def test_page_records_shrink_with_small_budgets(self):
        wide_row = 200
        unbounded = MemoryGovernor(budget=None)
        tiny = MemoryGovernor(budget=8192)
        try:
            assert unbounded.page_records_for(wide_row) > \
                tiny.page_records_for(wide_row)
            assert tiny.page_records_for(wide_row) >= 1
            # Even absurd record sizes yield a usable page.
            assert tiny.page_records_for(10**9) == 1
        finally:
            unbounded.close()
            tiny.close()

    def test_window_peak_resets(self):
        g = MemoryGovernor(budget=None)
        lease = g.lease("op")
        lease.grow(500)
        lease.shrink(500)
        assert g.take_window_peak() == 500
        lease.grow(100)
        lease.shrink(100)
        assert g.take_window_peak() == 100
        g.close()


class TestSpoolReclaim:
    def test_tail_pages_flush_under_pressure(self):
        g = MemoryGovernor(budget=100)
        spool = Spool(None, g, record_nbytes=10, label="t")
        for i in range(8):
            spool.append(i)
        assert spool.resident_nbytes == 80
        lease = g.lease("op")
        lease.grow(60)  # 80 + 60 > 100: the tail must flush out
        assert spool.resident_nbytes == 0
        assert g.peak_resident_bytes <= 100
        lease.close()
        assert list(spool.records()) == list(range(8))
        spool.discard()
        g.close()

    def test_records_stream_repeatedly(self):
        g = MemoryGovernor(budget=None)
        spool = Spool(None, g, record_nbytes=8, label="t")
        for i in range(5):
            spool.append(i)
        spool.flush()
        assert list(spool.records()) == list(spool.records())
        spool.discard()
        assert list(spool.records()) == []
        g.close()


class TestCleanup:
    def test_close_removes_spill_dir(self):
        g = MemoryGovernor(budget=None)
        g.buffer.add("data", 10)
        g.buffer.evict_until(10)
        path = g.backend.path
        assert path is not None and os.path.isdir(path)
        g.close()
        assert not os.path.exists(path)

    def test_close_without_spills_is_clean(self):
        g = MemoryGovernor(budget=None)
        assert g.backend.path is None
        g.close()
