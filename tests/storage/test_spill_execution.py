"""End-to-end spilling: governed runs must reproduce un-governed rows.

The memory governor may reorder *when* results surface (deferred
partitions emit at completion), but never *what* surfaces — and the
state exposed to the AIP layer must stay complete across spills, or
injected filters would prune rows that still have matches on disk.
"""

import os

import pytest

from repro.data.tpch import cached_tpch
from repro.exec.context import ExecutionContext
from repro.exec.engine import execute_plan
from repro.expr.expressions import col
from repro.harness.concurrent import run_concurrent
from repro.harness.runner import run_workload_query
from repro.plan.builder import scan
from repro.storage.governor import MemoryGovernor

from tests.helpers import rows_equal

SCALE = 0.002


@pytest.fixture(scope="module")
def catalog():
    return cached_tpch(scale_factor=SCALE)


def _governed_plan_rows(catalog, plan, budget, batch_execution=True):
    governor = MemoryGovernor(budget)
    ctx = ExecutionContext(
        catalog, governor=governor, batch_execution=batch_execution,
    )
    try:
        result = execute_plan(plan, ctx)
        return result.rows, governor
    finally:
        governor.close()


class TestOperatorSpills:
    """Each stateful operator forced through its spill path."""

    def _plan_join(self, catalog):
        return (
            scan(catalog, "partsupp")
            .join(scan(catalog, "supplier"), on=[("ps_suppkey", "s_suppkey")])
            .build()
        )

    def _plan_distinct(self, catalog):
        return (
            scan(catalog, "partsupp")
            .project(["ps_suppkey", "ps_availqty"])
            .distinct()
            .build()
        )

    def _plan_semijoin(self, catalog):
        return (
            scan(catalog, "partsupp")
            .semijoin(
                scan(catalog, "part").filter(col("p_size").le(20)),
                on=[("ps_partkey", "p_partkey")],
            )
            .build()
        )

    def _plan_groupby(self, catalog):
        from repro.expr.aggregates import AggregateSpec
        return (
            scan(catalog, "partsupp")
            .group_by(
                ["ps_partkey"],
                [AggregateSpec("min", col("ps_supplycost"), "min_cost")],
            )
            .build()
        )

    @pytest.mark.parametrize(
        "builder", ["_plan_join", "_plan_distinct", "_plan_semijoin",
                    "_plan_groupby"],
    )
    def test_spilled_rows_match_unbounded(self, catalog, builder):
        plan = getattr(self, builder)(catalog)
        baseline = execute_plan(plan, ExecutionContext(catalog)).rows
        # A budget far below the operator state forces real spills.
        rows, governor = _governed_plan_rows(catalog, plan, budget=60_000)
        assert governor.backend.pages_written > 0, "no spill was forced"
        assert governor.peak_resident_bytes <= 60_000
        assert rows_equal(rows, baseline)

    @pytest.mark.parametrize(
        "builder", ["_plan_join", "_plan_distinct", "_plan_semijoin",
                    "_plan_groupby"],
    )
    def test_batch_and_tuple_paths_agree_under_spill(self, catalog, builder):
        plan = getattr(self, builder)(catalog)
        batch_rows, _ = _governed_plan_rows(
            catalog, plan, budget=60_000, batch_execution=True,
        )
        tuple_rows, _ = _governed_plan_rows(
            catalog, plan, budget=60_000, batch_execution=False,
        )
        assert rows_equal(batch_rows, tuple_rows)
        assert len(batch_rows) == len(tuple_rows)

    def test_short_circuit_with_spill(self, catalog):
        """Short-circuiting releases one side mid-stream; the spilled
        runs must still produce the full join."""
        plan = self._plan_join(catalog)
        baseline = execute_plan(
            plan, ExecutionContext(catalog, short_circuit=True)
        ).rows
        governor = MemoryGovernor(60_000)
        ctx = ExecutionContext(catalog, governor=governor, short_circuit=True)
        try:
            rows = execute_plan(plan, ctx).rows
        finally:
            governor.close()
        assert rows_equal(rows, baseline)


class TestAIPStateStreaming:
    def test_state_values_stream_spilled_partitions(self, catalog):
        """Summaries built from spilled state must cover every stored
        row — a partial summary would prune rows with real matches."""
        from repro.exec.translate import translate

        governor = MemoryGovernor(60_000)
        ctx = ExecutionContext(catalog, governor=governor)
        try:
            plan = (
                scan(catalog, "partsupp")
                .join(scan(catalog, "supplier"),
                      on=[("ps_suppkey", "s_suppkey")])
                .build()
            )
            physical = translate(plan, ctx)
            join = physical.by_node_id[plan.node_id]
            # Drive the big side directly: ~100 KB of inserts against a
            # 60 KB budget must spill partitions.
            partsupp = list(catalog.table("partsupp").rows)
            key_idx = catalog.table("partsupp").schema.index_of("ps_partkey")
            for row in partsupp:
                join.push(row, 0)
            assert join._spilled, "budget did not force a join spill"
            got = sorted(join.state_values(0, "ps_partkey"))
            expected = sorted(row[key_idx] for row in partsupp)
            assert got == expected
            assert join.stored_count(0) == len(partsupp)
        finally:
            governor.close()

    def test_costbased_with_budget_matches_unbounded(self):
        record = run_workload_query(
            "Q2A", "costbased", scale_factor=SCALE,
        )
        governed = run_workload_query(
            "Q2A", "costbased", scale_factor=SCALE,
            memory_budget=record.result.metrics.peak_state_bytes // 4,
        )
        assert rows_equal(governed.result.rows, record.result.rows)
        assert governed.storage["spilled_bytes"] > 0


class TestConcurrentGovernor:
    def test_queries_race_for_the_last_lease(self, catalog):
        """Two concurrent plans share one tight governor: reclaim must
        interleave across both queries' operators without corrupting
        either result."""
        plans = [
            scan(catalog, "partsupp")
            .join(scan(catalog, "supplier"), on=[("ps_suppkey", "s_suppkey")])
            .build(),
            scan(catalog, "partsupp")
            .project(["ps_suppkey", "ps_availqty"])
            .distinct()
            .build(),
        ]
        solo = [
            execute_plan(p, ExecutionContext(catalog)).rows for p in plans
        ]
        governor = MemoryGovernor(80_000)
        ctx = ExecutionContext(catalog, governor=governor)
        try:
            results = run_concurrent(plans, ctx)
            assert governor.backend.pages_written > 0
            assert governor.peak_resident_bytes <= 80_000
            for result, expected in zip(results, solo):
                assert rows_equal(result.rows, expected)
        finally:
            governor.close()


class TestErrorCleanup:
    def test_spill_dir_removed_on_engine_error(self, monkeypatch):
        """An engine error mid-run must not strand the spill
        directory."""
        import repro.storage.governor as governor_module

        created = []
        real_governor = governor_module.MemoryGovernor

        class Tracking(real_governor):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                created.append(self)

        monkeypatch.setattr(governor_module, "MemoryGovernor", Tracking)

        from repro.exec import engine as engine_module

        dirs = []

        def explode(self, plan):
            # Touch the spill path first so there is a directory to
            # leak, then die the way a buggy operator would.
            created[0].buffer.add("page", 10)
            created[0].buffer.evict_until(10)
            dirs.append(created[0].backend.path)
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(engine_module.Engine, "run", explode)
        with pytest.raises(RuntimeError, match="engine exploded"):
            run_workload_query(
                "Q1A", "baseline", scale_factor=SCALE, memory_budget=10_000,
            )
        assert created, "governor was never constructed"
        assert dirs and dirs[0] is not None
        assert not os.path.exists(dirs[0])
        assert created[0].backend.path is None  # close() ran

    def test_service_close_removes_spill_dir(self):
        from repro.service.service import QueryService

        catalog = cached_tpch(scale_factor=SCALE)
        with QueryService(
            catalog, strategy="baseline", aip_cache=False,
            result_cache=False, memory_budget=100_000,
        ) as service:
            service.submit("Q2A")
            service.run()
            path = service.governor.backend.path
            assert path is not None and os.path.isdir(path)
        assert not os.path.exists(path)
