"""Column pages: build, reconstruct, byte accounting."""

import pytest

from repro.common.sizing import rows_nbytes
from repro.data.schema import Schema
from repro.storage.page import ColumnPage, build_pages


@pytest.fixture
def schema():
    return Schema.of(("a", "int"), ("b", "str"), ("c", "float"))


def _rows(n):
    return [(i, "s%d" % i, i * 0.5) for i in range(n)]


class TestColumnPage:
    def test_roundtrip(self, schema):
        rows = _rows(10)
        page = ColumnPage(rows, schema)
        assert page.rows() == rows
        assert page.row(3) == rows[3]
        assert len(page) == 10

    def test_nbytes_matches_sizing(self, schema):
        rows = _rows(7)
        page = ColumnPage(rows, schema)
        assert page.nbytes == rows_nbytes(schema, 7)

    def test_empty_page(self, schema):
        page = ColumnPage([], schema)
        assert page.rows() == []
        assert page.nbytes == 0


class TestBuildPages:
    def test_splits_at_capacity(self, schema):
        pages = list(build_pages(_rows(10), schema, page_rows=4))
        assert [len(p) for p in pages] == [4, 4, 2]
        rebuilt = [row for p in pages for row in p.rows()]
        assert rebuilt == _rows(10)

    def test_rejects_bad_capacity(self, schema):
        with pytest.raises(ValueError):
            list(build_pages(_rows(3), schema, page_rows=0))
