"""Buffer manager: pin/unpin, LRU eviction, reload fidelity."""

import os

import pytest

from repro.storage.governor import MemoryGovernor


@pytest.fixture
def governor():
    g = MemoryGovernor(budget=None)
    yield g
    g.close()


class TestFrames:
    def test_add_is_resident(self, governor):
        frame = governor.buffer.add(["payload"], 100)
        assert frame.resident
        assert governor.buffer.resident_bytes == 100

    def test_evict_writes_then_reload_reads_back(self, governor):
        buffer = governor.buffer
        frame = buffer.add({"k": [1, 2, 3]}, 100)
        freed = buffer.evict_until(50)
        assert freed == 100
        assert not frame.resident
        assert frame.page_id is not None
        assert buffer.resident_bytes == 0
        payload = buffer.pin(frame)
        assert payload == {"k": [1, 2, 3]}
        buffer.unpin(frame)
        assert buffer.reloads == 1
        assert buffer.resident_bytes == 100

    def test_pinned_frames_survive_eviction(self, governor):
        buffer = governor.buffer
        pinned = buffer.add("hot", 100)
        cold = buffer.add("cold", 100)
        buffer.pin(pinned)
        freed = buffer.evict_until(1000)
        assert freed == 100
        assert pinned.resident
        assert not cold.resident
        buffer.unpin(pinned)

    def test_lru_order(self, governor):
        buffer = governor.buffer
        first = buffer.add("first", 10)
        second = buffer.add("second", 10)
        # Touch `first` so `second` becomes the LRU victim.
        buffer.pin(first)
        buffer.unpin(first)
        buffer.evict_until(10)
        assert first.resident
        assert not second.resident

    def test_release_deletes_spilled_copy(self, governor):
        buffer = governor.buffer
        frame = buffer.add("data", 10)
        buffer.evict_until(10)
        path = governor.backend.path
        assert path is not None and os.listdir(path)
        buffer.release(frame)
        assert not os.listdir(path)

    def test_unpin_without_pin_raises(self, governor):
        frame = governor.buffer.add("x", 1)
        with pytest.raises(RuntimeError):
            governor.buffer.unpin(frame)
