"""Tests for process-stable hashing."""

import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.hashing import stable_key, stable_label_seed


class TestStableKey:
    def test_ints_pass_through(self):
        assert stable_key(42) == 42
        assert stable_key(-1) == -1

    def test_floats_pass_through(self):
        assert stable_key(1.5) == 1.5

    def test_strings_become_ints(self):
        assert isinstance(stable_key("FRANCE"), int)
        assert stable_key("FRANCE") == stable_key("FRANCE")
        assert stable_key("FRANCE") != stable_key("GERMANY")

    def test_bytes(self):
        assert stable_key(b"abc") == stable_key(b"abc")

    def test_tuples_recursive(self):
        assert stable_key((1, "a")) == (1, stable_key("a"))

    def test_cross_process_stability(self):
        """The whole point: identical values across PYTHONHASHSEEDs."""
        script = (
            "from repro.common.hashing import stable_key, stable_label_seed;"
            "print(stable_key('partsupp'), stable_label_seed(7, 'lineitem'))"
        )
        outputs = set()
        for seed in ("1", "2"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True,
                env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
            )
            if result.returncode != 0:  # interpreter env too minimal
                return
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1


class TestStableLabelSeed:
    def test_deterministic(self):
        assert stable_label_seed(7, "x") == stable_label_seed(7, "x")

    def test_label_sensitivity(self):
        assert stable_label_seed(7, "x") != stable_label_seed(7, "y")

    def test_seed_sensitivity(self):
        assert stable_label_seed(7, "x") != stable_label_seed(8, "x")

    def test_non_negative(self):
        assert stable_label_seed(0, "") >= 0

    @given(st.integers(0, 2**31), st.text(max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_in_range_property(self, seed, label):
        value = stable_label_seed(seed, label)
        assert 0 <= value < 2**63
