"""Tests for deterministic RNG and Zipf sampling."""

import pytest

from repro.common.rng import DeterministicRng, ZipfSampler


class TestDeterministicRng:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_different_seeds_diverge(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.randint(0, 10**9) for _ in range(5)] != [
            b.randint(0, 10**9) for _ in range(5)
        ]

    def test_fork_is_deterministic(self):
        a = DeterministicRng(9).fork("lineitem")
        b = DeterministicRng(9).fork("lineitem")
        assert a.randint(0, 10**9) == b.randint(0, 10**9)

    def test_fork_independent_of_consumption(self):
        a = DeterministicRng(9)
        a.randint(0, 100)  # consume some state
        b = DeterministicRng(9)
        assert a.fork("x").randint(0, 10**9) == b.fork("x").randint(0, 10**9)

    def test_forks_with_different_labels_differ(self):
        root = DeterministicRng(9)
        assert root.fork("a").randint(0, 10**9) != root.fork("b").randint(0, 10**9)

    def test_randint_bounds(self):
        rng = DeterministicRng(3)
        values = [rng.randint(5, 7) for _ in range(200)]
        assert set(values) == {5, 6, 7}

    def test_choice_and_sample(self):
        rng = DeterministicRng(3)
        items = ["a", "b", "c"]
        assert rng.choice(items) in items
        assert sorted(rng.sample(items, 2))[0] in items


class TestZipfSampler:
    def test_rejects_bad_parameters(self):
        rng = DeterministicRng(1)
        with pytest.raises(ValueError):
            ZipfSampler(0, 0.5, rng)
        with pytest.raises(ValueError):
            ZipfSampler(10, -1.0, rng)

    def test_range(self):
        rng = DeterministicRng(1)
        z = ZipfSampler(10, 0.5, rng)
        draws = [z.sample() for _ in range(1000)]
        assert min(draws) >= 1
        assert max(draws) <= 10

    def test_zero_exponent_is_roughly_uniform(self):
        rng = DeterministicRng(1)
        z = ZipfSampler(4, 0.0, rng)
        draws = [z.sample() for _ in range(4000)]
        for k in range(1, 5):
            frac = draws.count(k) / len(draws)
            assert 0.18 < frac < 0.32

    def test_skew_prefers_low_ranks(self):
        rng = DeterministicRng(1)
        z = ZipfSampler(100, 1.0, rng)
        draws = [z.sample() for _ in range(5000)]
        assert draws.count(1) > draws.count(50) * 3

    def test_single_element_domain(self):
        rng = DeterministicRng(1)
        z = ZipfSampler(1, 0.5, rng)
        assert all(z.sample() == 1 for _ in range(10))
