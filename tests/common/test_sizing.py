"""The single byte-size authority: every layer must agree with it."""

from repro.common import sizing
from repro.data.schema import Schema


class TestSizing:
    def test_row_nbytes_matches_schema(self):
        schema = Schema.of(
            ("a", "int"), ("b", "float"), ("c", "str"), ("d", "date"),
        )
        expected = sizing.TUPLE_OVERHEAD_NBYTES + 8 + 8 + 24 + 12
        assert sizing.row_nbytes(schema) == expected
        # Schema delegates to sizing, so the two can never diverge.
        assert schema.row_byte_size() == sizing.row_nbytes(schema)

    def test_rows_nbytes_scales(self):
        schema = Schema.of(("a", "int"))
        assert sizing.rows_nbytes(schema, 10) == 10 * sizing.row_nbytes(schema)
        # Optimizer estimates pass float cardinalities.
        assert sizing.rows_nbytes(schema, 2.5) == 2.5 * sizing.row_nbytes(schema)

    def test_key_and_group_overheads(self):
        assert sizing.key_nbytes(3) == 3 * sizing.KEY_COMPONENT_NBYTES
        assert sizing.group_overhead_nbytes(2) == (
            sizing.GROUP_OVERHEAD_NBYTES + 2 * sizing.KEY_COMPONENT_NBYTES
        )

    def test_consumers_share_the_authority(self):
        """Admission estimates, the result cache and column pages all
        weigh the same rows identically."""
        from repro.service.result_cache import CachedResult
        from repro.storage.page import ColumnPage

        schema = Schema.of(("a", "int"), ("b", "str"))
        rows = [(i, "x") for i in range(5)]
        assert (
            CachedResult(rows, schema, 0.0).byte_size()
            == ColumnPage(rows, schema).nbytes
            == sizing.rows_nbytes(schema, 5)
        )
