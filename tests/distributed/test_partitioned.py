"""Partition-parallel distributed execution: placement, fan-out,
broadcast costing, multi-destination AIP shipping, and edge cases."""

import pytest

from repro.aip.manager import CostBasedStrategy
from repro.common.errors import NetworkError
from repro.data.tpch import cached_tpch
from repro.distributed.coordinator import (
    DistributedQuery, apply_broadcast_fanouts, mark_remote_scans,
)
from repro.distributed.network import MBPS, NetworkModel
from repro.distributed.site import HASH, Placement, PartitionSpec, Site
from repro.exec.context import ExecutionContext
from repro.exec.operators.merge import PMerge
from repro.expr.expressions import col
from repro.plan.builder import scan
from repro.plan.logical import Scan

from tests.helpers import reference_execute, rows_equal


@pytest.fixture(scope="module")
def catalog():
    return cached_tpch(scale_factor=0.002)


def remote_join_plan(catalog):
    """PART is selective and local; PARTSUPP is fetched remotely (the
    Q1C/Q3C shape)."""
    return (
        scan(catalog, "part")
        .filter(col("p_size").le(5))
        .join(scan(catalog, "partsupp"), on=[("p_partkey", "ps_partkey")])
        .build()
    )


def partitioned_placement(n, table="partsupp", key="ps_partkey"):
    placement = Placement()
    placement.partition_table(table, key, ["s-%d" % i for i in range(n)])
    return placement


class TestPartitionSpec:
    def test_hash_split_is_deterministic_and_total(self):
        spec = PartitionSpec("t", "k", ["a", "b", "c"])
        rows = [(i, "v%d" % i) for i in range(100)]
        parts = spec.split(rows, 0)
        assert sum(len(p) for p in parts) == 100
        assert parts == spec.split(rows, 0)
        # Within-partition order is input order.
        for part in parts:
            assert part == sorted(part, key=lambda r: r[0])

    def test_range_split_respects_bounds(self):
        spec = PartitionSpec(
            "t", "k", ["a", "b", "c"], scheme="range", bounds=[10, 20],
        )
        rows = [(5,), (10,), (11,), (20,), (21,)]
        parts = spec.split(rows, 0)
        assert parts == [[(5,), (10,)], [(11,), (20,)], [(21,)]]

    def test_range_needs_sorted_matching_bounds(self):
        with pytest.raises(NetworkError):
            PartitionSpec("t", "k", ["a", "b"], scheme="range", bounds=[])
        with pytest.raises(NetworkError):
            PartitionSpec(
                "t", "k", ["a", "b", "c"], scheme="range", bounds=[20, 10],
            )

    def test_bounds_rejected_for_hash(self):
        with pytest.raises(NetworkError):
            PartitionSpec("t", "k", ["a"], scheme=HASH, bounds=[1])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(NetworkError):
            PartitionSpec("t", "k", ["a"], scheme="round-robin")

    def test_master_partition_rejected(self):
        with pytest.raises(NetworkError):
            PartitionSpec("t", "k", ["a", "master"])

    def test_alignment(self):
        a = PartitionSpec("t", "k", ["a", "b"])
        b = PartitionSpec("u", "j", ["a", "b"])
        assert a.aligned_with(b)
        assert not a.aligned_with(PartitionSpec("u", "j", ["a", "c"]))
        assert not a.aligned_with(PartitionSpec("u", "j", ["a"]))
        r1 = PartitionSpec("t", "k", ["a", "b"], scheme="range", bounds=[5])
        r2 = PartitionSpec("u", "j", ["a", "b"], scheme="range", bounds=[5])
        r3 = PartitionSpec("u", "j", ["a", "b"], scheme="range", bounds=[9])
        assert not a.aligned_with(r1)  # hash vs range
        assert r1.aligned_with(r2)
        assert not r1.aligned_with(r3)  # different split points


class TestPlacementEdges:
    def test_unknown_site_lookup_raises(self):
        placement = Placement([Site("s1", ["partsupp"])])
        assert placement.site("s1").name == "s1"
        with pytest.raises(NetworkError):
            placement.site("nowhere")

    def test_table_placed_at_two_sites_rejected(self):
        with pytest.raises(NetworkError):
            Placement([Site("a", ["t"]), Site("b", ["t"])])

    def test_partitioned_and_whole_placement_conflict(self):
        placement = Placement([Site("a", ["t"])])
        with pytest.raises(NetworkError):
            placement.partition_table("t", "k", ["b", "c"])
        other = Placement()
        other.partition_table("t", "k", ["b", "c"])
        with pytest.raises(NetworkError):
            other.add_site(Site("d", ["t"]))
        with pytest.raises(NetworkError):
            other.partition_table("t", "k", ["d"])

    def test_partition_sites_registered(self):
        placement = partitioned_placement(3)
        assert [s.name for s in placement.sites()] == ["s-0", "s-1", "s-2"]
        assert placement.site("s-1").tables == {"partsupp"}
        assert placement.site_of("partsupp") is None
        assert placement.partitioning_of("partsupp").n_partitions == 3
        assert placement.remote_tables() == ["partsupp"]

    def test_zero_and_negative_bandwidth_links_rejected(self):
        net = NetworkModel()
        with pytest.raises(NetworkError):
            net.set_link("s1", bandwidth=0, latency=0.01)
        with pytest.raises(NetworkError):
            net.set_link("s1", bandwidth=-5.0, latency=0.01)
        with pytest.raises(NetworkError):
            net.set_link("s1", bandwidth=1.0, latency=-0.01)
        with pytest.raises(NetworkError):
            NetworkModel(default_bandwidth=-1)


class TestPartitionedExecution:
    def test_scan_fans_out_and_merges(self, catalog):
        plan = remote_join_plan(catalog)
        dq = DistributedQuery(plan, partitioned_placement(3))
        ctx = ExecutionContext(catalog)
        from repro.exec.translate import translate
        physical = translate(plan, ctx, dq.arrival_resolver())
        partitioned = [
            s for s in physical.scans if s.partition_index is not None
        ]
        assert len(partitioned) == 3
        assert {s.site for s in partitioned} == {"s-0", "s-1", "s-2"}
        ps_scan_node = next(
            n for n in plan.walk()
            if isinstance(n, Scan) and n.table_name == "partsupp"
        )
        merge = physical.by_node_id[ps_scan_node.node_id]
        assert isinstance(merge, PMerge)
        assert merge.partitions == partitioned
        # Partition scans are addressable by their own fresh ids too.
        for s in partitioned:
            assert physical.by_node_id[s.op_id] is s

    def test_partitioned_rows_match_reference(self, catalog):
        for n in (1, 2, 4):
            plan = remote_join_plan(catalog)
            dq = DistributedQuery(plan, partitioned_placement(n))
            result = dq.execute(ExecutionContext(catalog))
            assert rows_equal(result.rows, reference_execute(plan, catalog))
            assert result.metrics.network_bytes > 0

    def test_more_partitions_stream_faster(self, catalog):
        slow = lambda: NetworkModel(default_bandwidth=1 * MBPS)  # noqa: E731
        times = {}
        for n in (1, 4):
            plan = remote_join_plan(catalog)
            dq = DistributedQuery(plan, partitioned_placement(n), slow())
            times[n] = dq.execute(ExecutionContext(catalog)).metrics.clock
        assert times[4] < times[1] / 2.0

    def test_empty_partitions_return_clean_empty_results(self, catalog):
        # Range-partition so every row lands in partition 0; the other
        # partitions are valid, immediately exhausted sources.
        placement = Placement()
        placement.partition_table(
            "partsupp", "ps_partkey", ["a", "b", "c"],
            scheme="range", bounds=[10 ** 9, 2 * 10 ** 9],
        )
        plan = remote_join_plan(catalog)
        dq = DistributedQuery(plan, placement)
        result = dq.execute(ExecutionContext(catalog))
        assert rows_equal(result.rows, reference_execute(plan, catalog))

    def test_more_partitions_than_rows(self, catalog):
        placement = Placement()
        placement.partition_table(
            "region", "r_regionkey", ["s-%d" % i for i in range(8)],
        )
        plan = scan(catalog, "region").build()
        dq = DistributedQuery(plan, placement)
        result = dq.execute(ExecutionContext(catalog))
        assert rows_equal(result.rows, list(catalog.table("region").rows))

    def test_pushed_predicates_reach_every_partition(self, catalog):
        def run(push):
            plan = (
                scan(catalog, "partsupp")
                .filter(col("ps_availqty").le(100))
                .build()
            )
            dq = DistributedQuery(
                plan, partitioned_placement(3), push_predicates=push,
            )
            result = dq.execute(ExecutionContext(catalog))
            assert rows_equal(result.rows, reference_execute(plan, catalog))
            return result

        unpushed = run(False)
        pushed = run(True)
        # Rejected rows were dropped at each source, before the wire.
        assert pushed.metrics.network_bytes < unpushed.metrics.network_bytes


class TestBroadcastCosting:
    def _two_sided_plan(self, catalog):
        return (
            scan(catalog, "partsupp")
            .join(
                scan(catalog, "lineitem",
                     renames={"l_partkey": "lp", "l_suppkey": "ls"}),
                on=[("ps_partkey", "lp"), ("ps_suppkey", "ls")],
            )
            .build()
        )

    def _fanouts(self, plan):
        return {
            n.table_name: n.broadcast_fanout
            for n in plan.walk() if isinstance(n, Scan)
        }

    def test_co_partitioned_join_has_no_broadcast(self, catalog):
        plan = self._two_sided_plan(catalog)
        placement = Placement()
        sites = ["s-%d" % i for i in range(4)]
        placement.partition_table("partsupp", "ps_partkey", sites)
        placement.partition_table("lineitem", "l_partkey", sites)
        mark_remote_scans(plan, placement)
        apply_broadcast_fanouts(plan, catalog)
        assert self._fanouts(plan) == {"partsupp": 1, "lineitem": 1}

    def test_mispartitioned_join_broadcasts_smaller_side(self, catalog):
        plan = self._two_sided_plan(catalog)
        placement = Placement()
        sites = ["s-%d" % i for i in range(4)]
        # Partition keys on *different* join-key pairs: not co-located.
        placement.partition_table("partsupp", "ps_suppkey", sites)
        placement.partition_table("lineitem", "l_partkey", sites)
        mark_remote_scans(plan, placement)
        apply_broadcast_fanouts(plan, catalog)
        # partsupp (1600 rows) < lineitem (~6000): broadcast partsupp to
        # lineitem's 4 partitions.
        assert self._fanouts(plan) == {"partsupp": 4, "lineitem": 1}

    def test_broadcast_charges_wire_time_and_bytes(self, catalog):
        def run(partsupp_key):
            plan = self._two_sided_plan(catalog)
            placement = Placement()
            sites = ["s-%d" % i for i in range(4)]
            placement.partition_table("partsupp", partsupp_key, sites)
            placement.partition_table("lineitem", "l_partkey", sites)
            dq = DistributedQuery(plan, placement)
            return dq.execute(ExecutionContext(catalog))

        local = run("ps_partkey")     # co-partitioned
        broadcast = run("ps_suppkey")  # mis-partitioned
        assert rows_equal(local.rows, broadcast.rows)
        assert broadcast.metrics.network_bytes > local.metrics.network_bytes
        assert broadcast.metrics.clock > local.metrics.clock

    def test_single_partitioned_side_is_free_of_broadcast(self, catalog):
        plan = remote_join_plan(catalog)  # part is master-local
        mark_remote_scans(plan, partitioned_placement(4))
        apply_broadcast_fanouts(plan, catalog)
        assert self._fanouts(plan) == {"part": 1, "partsupp": 1}


class TestDistributedAIPMultiShip:
    def test_filter_ships_to_every_partition(self, catalog):
        n = 3
        net = NetworkModel(default_bandwidth=2 * MBPS)

        baseline = DistributedQuery(
            remote_join_plan(catalog), partitioned_placement(n), net,
        ).execute(ExecutionContext(catalog))

        cb_ctx = ExecutionContext(
            catalog, strategy=CostBasedStrategy(poll_interval=0.01),
        )
        cb = DistributedQuery(
            remote_join_plan(catalog), partitioned_placement(n), net,
        ).execute(cb_ctx)

        assert rows_equal(baseline.rows, cb.rows)
        # One filter copy per partition crossed the wire...
        single_ctx = ExecutionContext(
            catalog, strategy=CostBasedStrategy(poll_interval=0.01),
        )
        single = DistributedQuery(
            remote_join_plan(catalog), partitioned_placement(1), net,
        ).execute(single_ctx)
        assert cb.metrics.aip_bytes_shipped == (
            n * single.metrics.aip_bytes_shipped
        )
        # ...and every partition's source holds an active filter that
        # pruned rows before they consumed link bandwidth.
        assert cb.metrics.network_bytes < baseline.metrics.network_bytes
        assert cb.metrics.clock < baseline.metrics.clock

    def test_per_site_links_pace_activation(self, catalog):
        """A partition behind a slower link activates its filter later
        (per-partition staleness/transfer accounting)."""
        net = NetworkModel(default_bandwidth=2 * MBPS)
        net.set_link("s-1", bandwidth=0.5 * MBPS, latency=0.05)
        ctx = ExecutionContext(
            catalog, strategy=CostBasedStrategy(poll_interval=0.01),
        )
        plan = remote_join_plan(catalog)
        dq = DistributedQuery(plan, partitioned_placement(2), net)
        from repro.exec.translate import translate
        from repro.exec.engine import Engine
        physical = translate(plan, ctx, dq.arrival_resolver())
        ctx.cost_model.network_bandwidth = net.link_to("__x__").bandwidth
        ctx.cost_model.network_latency = net.link_to("__x__").latency
        ctx.network = net
        ctx.strategy.attach(ctx, physical)
        Engine(ctx).run(physical)
        activations = {}
        for scan_op in physical.scans:
            if scan_op.partition_index is None:
                continue
            shipped = [
                f for f in scan_op.arrival.filters
                if type(f).__name__ == "SourceFilter"
            ]
            assert shipped, "partition %s got no filter" % scan_op.site
            activations[scan_op.site] = shipped[0].activation_time
        assert activations["s-1"] > activations["s-0"]
