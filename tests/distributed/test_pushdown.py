"""Tests for predicate pushdown to remote sites (Section V-A)."""

import pytest

from repro.data.tpch import cached_tpch
from repro.distributed.coordinator import DistributedQuery
from repro.distributed.network import MBPS, NetworkModel
from repro.distributed.site import Placement, Site
from repro.exec.context import ExecutionContext
from repro.expr.expressions import col
from repro.plan.builder import scan

from tests.helpers import reference_execute, rows_equal


@pytest.fixture(scope="module")
def catalog():
    return cached_tpch(scale_factor=0.002)


def filtered_remote_plan(catalog):
    """The PARTSUPP filter sits directly over the remote scan."""
    ps = (
        scan(catalog, "partsupp")
        .filter(col("ps_availqty").le(1000))
        .filter(col("ps_supplycost").le(500.0))
    )
    return (
        scan(catalog, "part")
        .join(ps, on=[("p_partkey", "ps_partkey")])
        .build()
    )


class TestPredicatePushdown:
    def _placement(self):
        return Placement([Site("s1", ["partsupp"])])

    def test_results_unchanged(self, catalog):
        plan = filtered_remote_plan(catalog)
        dq = DistributedQuery(plan, self._placement(), push_predicates=True)
        result = dq.execute(ExecutionContext(catalog))
        assert rows_equal(result.rows, reference_execute(plan, catalog))

    def test_pushdown_saves_bandwidth(self, catalog):
        network = NetworkModel(default_bandwidth=10 * MBPS)
        normal = DistributedQuery(
            filtered_remote_plan(catalog), self._placement(), network,
        ).execute(ExecutionContext(catalog))
        pushed = DistributedQuery(
            filtered_remote_plan(catalog), self._placement(), network,
            push_predicates=True,
        ).execute(ExecutionContext(catalog))
        assert rows_equal(normal.rows, pushed.rows)
        assert pushed.metrics.network_bytes < normal.metrics.network_bytes
        assert pushed.metrics.clock < normal.metrics.clock

    def test_stacked_filters_all_pushed(self, catalog):
        plan = filtered_remote_plan(catalog)
        dq = DistributedQuery(plan, self._placement(), push_predicates=True)
        (pushed_predicates,) = dq._pushed.values()
        assert len(pushed_predicates) == 2

    def test_local_filters_not_pushed(self, catalog):
        plan = (
            scan(catalog, "part")
            .filter(col("p_size").le(10))  # PART is local
            .join(scan(catalog, "partsupp"), on=[("p_partkey", "ps_partkey")])
            .build()
        )
        dq = DistributedQuery(plan, self._placement(), push_predicates=True)
        assert not dq._pushed

    def test_pushdown_composes_with_shipped_filters(self, catalog):
        from repro.aip.manager import CostBasedStrategy

        network = NetworkModel(default_bandwidth=5 * MBPS)
        plan = filtered_remote_plan(catalog)
        dq = DistributedQuery(
            plan, self._placement(), network, push_predicates=True,
        )
        ctx = ExecutionContext(
            catalog, strategy=CostBasedStrategy(poll_interval=0.01)
        )
        result = dq.execute(ctx)
        assert rows_equal(result.rows, reference_execute(plan, catalog))
