"""Partition-equivalence acceptance suite.

Every Table I workload × strategy must produce identical result rows
under (single-site) vs (N=1 partition), and row-set-identical results
for N ∈ {2, 4} — partitioning is a *physical* placement choice and
must never change answers.  For the natively distributed variants
(Q1C/Q3C) the N=1 check is strengthened to bit-identical virtual
clock, peak state and network bytes: one partition at one site over
the same default link IS the whole-table remote placement.

Service and concurrent paths run the same invariant end-to-end.
"""

import pytest

from repro.data.tpch import cached_tpch
from repro.distributed.site import Placement
from repro.exec.context import ExecutionContext
from repro.harness.concurrent import run_concurrent
from repro.harness.runner import (
    partitioned_placement, run_workload_query,
)
from repro.harness.strategies import make_strategy
from repro.service import QueryService
from repro.workloads.registry import QUERIES, get_query

SCALE = 0.002
STRATEGIES = ("baseline", "feedforward", "costbased", "magic")


def _cells():
    for qid in sorted(QUERIES):
        for strategy in STRATEGIES:
            if strategy == "magic" and not QUERIES[qid].has_magic:
                continue
            yield qid, strategy


def sorted_rows(record):
    return record.result.sorted_rows()


@pytest.mark.parametrize("qid,strategy", list(_cells()))
def test_partitioned_rows_identical(qid, strategy):
    base = run_workload_query(qid, strategy, scale_factor=SCALE)
    expected = sorted_rows(base)
    for n in (1, 2, 4):
        part = run_workload_query(
            qid, strategy, scale_factor=SCALE, partitions=n,
        )
        assert sorted_rows(part) == expected, (
            "%s/%s diverged at %d partitions" % (qid, strategy, n)
        )
        if n == 1 and get_query(qid).is_distributed:
            # Same rows at the same times over the same link: N=1 is
            # bit-identical to the whole-table remote placement.
            assert part.result.metrics.clock == base.result.metrics.clock
            assert (
                part.result.metrics.peak_state_bytes
                == base.result.metrics.peak_state_bytes
            )
            assert (
                part.result.metrics.network_bytes
                == base.result.metrics.network_bytes
            )


@pytest.mark.parametrize("strategy", ["baseline", "feedforward", "costbased"])
def test_concurrent_partitioned_rows_identical(strategy):
    catalog = cached_tpch(scale_factor=SCALE)
    qids = ["Q2A", "Q1A"]

    def run(placement):
        plans = []
        for qid in qids:
            plan = get_query(qid).build_baseline(catalog)
            if placement is not None:
                from repro.distributed.coordinator import (
                    apply_broadcast_fanouts, mark_remote_scans,
                )
                mark_remote_scans(plan, placement)
                apply_broadcast_fanouts(plan, catalog)
            plans.append(plan)
        ctx = ExecutionContext(catalog)
        resolver = None
        if placement is not None:
            from repro.distributed.coordinator import (
                remote_arrival_resolver,
            )
            from repro.distributed.network import NetworkModel
            resolver = remote_arrival_resolver(NetworkModel())
        strategies = [make_strategy(strategy) for _ in plans]
        return run_concurrent(
            plans, ctx, strategies=strategies, arrival_resolver=resolver,
        )

    placement = Placement()
    placement.partition_table("lineitem", "l_partkey",
                              ["shard-0", "shard-1"])
    placement.partition_table("partsupp", "ps_partkey",
                              ["shard-0", "shard-1"])
    for base, part in zip(run(None), run(placement)):
        assert base.sorted_rows() == part.sorted_rows()


@pytest.mark.parametrize("strategy", ["feedforward", "costbased"])
def test_service_partitioned_rows_identical(strategy):
    catalog = cached_tpch(scale_factor=SCALE)
    placement = Placement()
    placement.partition_table("lineitem", "l_partkey",
                              ["shard-0", "shard-1", "shard-2"])
    placement.partition_table("partsupp", "ps_partkey",
                              ["shard-0", "shard-1", "shard-2"])

    def run(**kwargs):
        service = QueryService(
            catalog, strategy=strategy, result_cache=False, **kwargs
        )
        for qid in ("Q2A", "Q1A", "Q1C"):
            service.submit(qid)
        report = service.run()
        assert [o.status for o in report.outcomes] == ["ok"] * 3
        return [o.result.sorted_rows() for o in report.outcomes]

    assert run() == run(placement=placement)


def test_partitioned_service_moves_bytes():
    catalog = cached_tpch(scale_factor=SCALE)
    placement = partitioned_placement(get_query("Q2A"), 2)
    service = QueryService(catalog, strategy="baseline",
                           placement=placement)
    result = service.execute("Q2A")
    assert result.metrics.network_bytes > 0


def test_batch_and_tuple_paths_identical_when_partitioned():
    for strategy in ("baseline", "costbased"):
        batch = run_workload_query(
            "Q2A", strategy, scale_factor=SCALE, partitions=4,
            batch_execution=True,
        )
        tup = run_workload_query(
            "Q2A", strategy, scale_factor=SCALE, partitions=4,
            batch_execution=False,
        )
        assert batch.result.rows == tup.result.rows
        assert batch.result.metrics.clock == tup.result.metrics.clock
        assert (
            batch.result.metrics.peak_state_bytes
            == tup.result.metrics.peak_state_bytes
        )
