"""Tests for the distributed simulation layer."""

import pytest

from repro.aip.manager import CostBasedStrategy
from repro.common.errors import NetworkError
from repro.data.tpch import cached_tpch
from repro.distributed.network import MBPS, NetworkModel
from repro.distributed.site import Placement, Site
from repro.distributed.coordinator import DistributedQuery
from repro.exec.context import ExecutionContext
from repro.expr.expressions import col
from repro.plan.builder import scan

from tests.helpers import reference_execute, rows_equal


@pytest.fixture(scope="module")
def catalog():
    return cached_tpch(scale_factor=0.002)


def remote_join_plan(catalog):
    """PART is selective and local; PARTSUPP is fetched from a remote
    site (the Q1C/Q3C shape)."""
    return (
        scan(catalog, "part")
        .filter(col("p_size").le(5))
        .join(scan(catalog, "partsupp"), on=[("p_partkey", "ps_partkey")])
        .build()
    )


class TestNetworkModel:
    def test_link_parameters(self):
        net = NetworkModel()
        net.set_link("s1", bandwidth=10 * MBPS, latency=0.01)
        assert net.link_to("s1").bandwidth == 10 * MBPS
        assert net.transfer_time("s1", 10 * MBPS) == pytest.approx(1.01)

    def test_default_link(self):
        net = NetworkModel(default_bandwidth=100 * MBPS)
        assert net.link_to("unknown").bandwidth == 100 * MBPS

    def test_estimate_bandwidth_is_pessimistic(self):
        net = NetworkModel()
        # Paper: estimates assume 10 Mbps even on a 100 Mb wire.
        assert net.estimated_ship_cost(10 * MBPS) == pytest.approx(1.0)

    def test_invalid_link_rejected(self):
        with pytest.raises(NetworkError):
            NetworkModel(default_bandwidth=0)


class TestPlacement:
    def test_site_of(self):
        placement = Placement([Site("s1", ["partsupp"])])
        assert placement.site_of("partsupp") == "s1"
        assert placement.site_of("part") is None

    def test_duplicate_placement_rejected(self):
        with pytest.raises(NetworkError):
            Placement([Site("a", ["t"]), Site("b", ["t"])])

    def test_master_site_reserved(self):
        with pytest.raises(NetworkError):
            Placement([Site("master", ["t"])])


class TestDistributedExecution:
    def test_remote_scan_marked_and_correct(self, catalog):
        plan = remote_join_plan(catalog)
        dq = DistributedQuery(plan, Placement([Site("s1", ["partsupp"])]))
        result = dq.execute(ExecutionContext(catalog))
        assert rows_equal(result.rows, reference_execute(plan, catalog))
        assert result.metrics.network_bytes > 0

    def test_remote_fetch_dominates_time(self, catalog):
        slow = NetworkModel(default_bandwidth=1 * MBPS)
        plan = remote_join_plan(catalog)
        dq = DistributedQuery(plan, Placement([Site("s1", ["partsupp"])]), slow)
        result = dq.execute(ExecutionContext(catalog))
        # 1600 partsupp rows * ~90B at 1Mbps ≈ 1.1s of wire time.
        assert result.metrics.idle_time > result.metrics.cpu_time

    def test_costbased_ships_filter_and_saves_bytes(self, catalog):
        placement = Placement([Site("s1", ["partsupp"])])
        # Slowish link so the filter arrives while many rows remain.
        net = NetworkModel(default_bandwidth=2 * MBPS)

        baseline = DistributedQuery(
            remote_join_plan(catalog), placement, net
        ).execute(ExecutionContext(catalog))

        cb_ctx = ExecutionContext(
            catalog, strategy=CostBasedStrategy(poll_interval=0.01)
        )
        cb = DistributedQuery(
            remote_join_plan(catalog), placement, net
        ).execute(cb_ctx)

        assert rows_equal(baseline.rows, cb.rows)
        assert cb.metrics.aip_bytes_shipped > 0
        assert cb.metrics.network_bytes < baseline.metrics.network_bytes
        assert cb.metrics.clock < baseline.metrics.clock

    def test_local_tables_unaffected(self, catalog):
        plan = remote_join_plan(catalog)
        DistributedQuery(plan, Placement([Site("s1", ["partsupp"])]))
        scans = {
            n.table_name: n.site
            for n in plan.walk()
            if type(n).__name__ == "Scan"
        }
        assert scans["part"] is None
        assert scans["partsupp"] == "s1"
