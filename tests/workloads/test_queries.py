"""Tests for the Table I workload queries.

For every variant: the plan validates, executes, matches the reference
evaluator, magic preserves results, and all strategies agree.
"""

import pytest

from repro.aip.feedforward import FeedForwardStrategy
from repro.aip.manager import CostBasedStrategy
from repro.data.tpch import cached_tpch
from repro.exec.context import ExecutionContext
from repro.exec.engine import execute_plan
from repro.plan.validate import validate_plan
from repro.workloads.registry import (
    FIG5_QUERIES, FIG6_QUERIES, FIG13_QUERIES, QUERIES, get_query,
)

from tests.helpers import reference_execute, rows_equal

SF = 0.005
ALL_QIDS = sorted(QUERIES)


def catalog_for(query):
    return cached_tpch(scale_factor=SF, skew=query.skew)


class TestRegistry:
    def test_all_19_variants_present(self):
        # 5 (Q1) + 5 (Q2) + 5 (Q3) + 2 (Q4) + 2 (Q5)
        assert len(QUERIES) == 19
        assert set(FIG5_QUERIES) <= set(QUERIES)
        assert set(FIG6_QUERIES) <= set(QUERIES)
        assert set(FIG13_QUERIES) <= set(QUERIES)

    def test_get_query_unknown(self):
        with pytest.raises(KeyError):
            get_query("Q9Z")

    def test_figure_lists_match_paper(self):
        assert FIG5_QUERIES == ["Q3A", "Q3B", "Q3D", "Q3E",
                                "Q1A", "Q1B", "Q1D", "Q1E"]
        assert FIG6_QUERIES == ["Q2A", "Q2B", "Q2C", "Q2D", "Q2E"]
        assert FIG13_QUERIES == ["Q4A", "Q5A", "Q4B", "Q5B", "Q3C", "Q1C"]

    def test_nested_queries_have_magic(self):
        for qid in FIG5_QUERIES + FIG6_QUERIES:
            assert get_query(qid).has_magic
        for qid in ("Q4A", "Q4B", "Q5A", "Q5B"):
            assert not get_query(qid).has_magic

    def test_remote_variants(self):
        assert get_query("Q1C").is_distributed
        assert get_query("Q3C").is_distributed
        assert not get_query("Q1A").is_distributed


class TestPlansValid:
    @pytest.mark.parametrize("qid", ALL_QIDS)
    def test_baseline_plan_validates(self, qid):
        query = get_query(qid)
        catalog = catalog_for(query)
        validate_plan(query.build_baseline(catalog), catalog)

    @pytest.mark.parametrize(
        "qid", [q for q in ALL_QIDS if QUERIES[q].has_magic]
    )
    def test_magic_plan_validates(self, qid):
        query = get_query(qid)
        catalog = catalog_for(query)
        validate_plan(query.build_magic(catalog), catalog)


class TestResults:
    @pytest.mark.parametrize("qid", ALL_QIDS)
    def test_baseline_matches_reference(self, qid):
        query = get_query(qid)
        catalog = catalog_for(query)
        plan = query.build_baseline(catalog)
        result = execute_plan(plan, ExecutionContext(catalog))
        assert rows_equal(result.rows, reference_execute(plan, catalog))

    @pytest.mark.parametrize(
        "qid", [q for q in ALL_QIDS if QUERIES[q].has_magic]
    )
    def test_magic_matches_baseline(self, qid):
        query = get_query(qid)
        catalog = catalog_for(query)
        base = execute_plan(query.build_baseline(catalog), ExecutionContext(catalog))
        magic = execute_plan(query.build_magic(catalog), ExecutionContext(catalog))
        assert rows_equal(base.rows, magic.rows)

    @pytest.mark.parametrize("qid", ALL_QIDS)
    def test_aip_strategies_match_baseline(self, qid):
        query = get_query(qid)
        catalog = catalog_for(query)
        base = execute_plan(query.build_baseline(catalog), ExecutionContext(catalog))
        ff = execute_plan(
            query.build_baseline(catalog),
            ExecutionContext(catalog, strategy=FeedForwardStrategy()),
        )
        cb = execute_plan(
            query.build_baseline(catalog),
            ExecutionContext(catalog, strategy=CostBasedStrategy()),
        )
        assert rows_equal(base.rows, ff.rows)
        assert rows_equal(base.rows, cb.rows)


class TestSelectivities:
    """The predicates must keep roughly their paper selectivities."""

    def test_q1_parent_is_selective(self):
        query = get_query("Q1A")
        catalog = catalog_for(query)
        result = execute_plan(query.build_baseline(catalog), ExecutionContext(catalog))
        n_parts = len(catalog.table("part"))
        assert 0 < len(result) < n_parts * 0.2

    def test_q1e_weaker_than_q1a(self):
        qa, qe = get_query("Q1A"), get_query("Q1E")
        catalog = catalog_for(qa)
        ra = execute_plan(qa.build_baseline(catalog), ExecutionContext(catalog))
        re_ = execute_plan(qe.build_baseline(catalog), ExecutionContext(catalog))
        assert len(re_) >= len(ra)

    def test_q2_returns_single_row(self):
        query = get_query("Q2A")
        catalog = catalog_for(query)
        result = execute_plan(query.build_baseline(catalog), ExecutionContext(catalog))
        assert len(result) == 1

    def test_q4_groups_by_middle_east_nations(self):
        query = get_query("Q4A")
        catalog = catalog_for(query)
        result = execute_plan(query.build_baseline(catalog), ExecutionContext(catalog))
        names = {r[0] for r in result.rows}
        middle_east = {"EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"}
        assert names <= middle_east
        assert len(names) > 0

    def test_q5_years_in_range(self):
        query = get_query("Q5A")
        catalog = catalog_for(query)
        result = execute_plan(query.build_baseline(catalog), ExecutionContext(catalog))
        years = {r[1] for r in result.rows}
        assert years <= set(range(1992, 1999))
        assert len(result) > 0
