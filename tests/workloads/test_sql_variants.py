"""Cross-validation: the Table I SQL texts, parsed and bound through the
SQL front end, must return exactly the rows of the hand-built plans."""

import pytest

from repro.data.tpch import cached_tpch
from repro.exec.context import ExecutionContext
from repro.exec.engine import execute_plan
from repro.plan.validate import validate_plan
from repro.sql import sql_to_plan
from repro.workloads.registry import QUERIES, get_query
from repro.workloads.sql_variants import sql_for

from tests.helpers import rows_equal

SF = 0.002
ALL_QIDS = sorted(QUERIES)


def catalog_for(query):
    return cached_tpch(scale_factor=SF, skew=query.skew)


class TestSqlVariants:
    def test_every_variant_has_sql(self):
        catalog = cached_tpch(scale_factor=SF)
        for qid in ALL_QIDS:
            assert sql_for(qid, catalog).strip().lower().startswith("select")

    def test_unknown_qid(self):
        with pytest.raises(KeyError):
            sql_for("Q9Z", cached_tpch(scale_factor=SF))

    @pytest.mark.parametrize("qid", ALL_QIDS)
    def test_sql_matches_hand_built_plan(self, qid):
        query = get_query(qid)
        catalog = catalog_for(query)

        hand_plan = query.build_baseline(catalog)
        hand = execute_plan(hand_plan, ExecutionContext(catalog))

        sql_plan = sql_to_plan(catalog, sql_for(qid, catalog))
        validate_plan(sql_plan, catalog)
        sql = execute_plan(sql_plan, ExecutionContext(catalog))

        assert rows_equal(hand.rows, sql.rows), (
            "SQL and hand-built plans disagree for %s" % qid
        )

    @pytest.mark.parametrize("qid", ["Q1A", "Q2A", "Q3A"])
    def test_sql_plans_work_with_aip(self, qid):
        from repro.aip.feedforward import FeedForwardStrategy

        query = get_query(qid)
        catalog = catalog_for(query)
        baseline = execute_plan(
            sql_to_plan(catalog, sql_for(qid, catalog)),
            ExecutionContext(catalog),
        )
        aip = execute_plan(
            sql_to_plan(catalog, sql_for(qid, catalog)),
            ExecutionContext(catalog, strategy=FeedForwardStrategy()),
        )
        assert rows_equal(baseline.rows, aip.rows)
