"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "Q1A"])
        assert args.strategy == "all"
        assert args.scale == 0.01
        assert not args.delayed


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Q1A" in out
        assert "Q5B" in out
        assert "remote:partsupp" in out

    def test_tables(self, capsys):
        assert main(["tables", "--scale", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "lineitem" in out
        assert "total" in out

    def test_run_single_strategy(self, capsys):
        assert main([
            "run", "Q3A", "--strategy", "feedforward", "--scale", "0.002",
        ]) == 0
        out = capsys.readouterr().out
        assert "feedforward" in out
        assert "Q3A" in out

    def test_run_all_strategies(self, capsys):
        assert main(["run", "Q3A", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        for name in ("baseline", "magic", "feedforward", "costbased"):
            assert name in out

    def test_run_join_query_skips_magic(self, capsys):
        assert main(["run", "Q4A", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "magic" not in out

    def test_run_unknown_query(self, capsys):
        assert main(["run", "Q9Z", "--scale", "0.002"]) == 2

    def test_explain(self, capsys):
        assert main(["explain", "Q1A", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "GroupBy" in out
        assert "total estimated cost" in out

    def test_explain_magic(self, capsys):
        assert main(["explain", "Q1A", "--scale", "0.002", "--magic"]) == 0
        out = capsys.readouterr().out
        assert "SemiJoin" in out


class TestSqlCommand:
    def test_sql_run(self, capsys):
        assert main([
            "sql",
            "select count(*) as n from part",
            "--scale", "0.002",
        ]) == 0
        out = capsys.readouterr().out
        assert "1 rows" in out

    def test_sql_with_strategy(self, capsys):
        assert main([
            "sql",
            "select p_partkey from part, partsupp "
            "where p_partkey = ps_partkey and p_size = 1",
            "--scale", "0.002", "--strategy", "feedforward",
        ]) == 0
        out = capsys.readouterr().out
        assert "rows;" in out

    def test_sql_explain(self, capsys):
        assert main([
            "sql", "select p_partkey from part", "--scale", "0.002",
            "--explain",
        ]) == 0
        out = capsys.readouterr().out
        assert "total estimated cost" in out
