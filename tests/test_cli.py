"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.harness.runner import run_workload_query


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "Q1A"])
        assert args.strategy == "all"
        assert args.scale == 0.01
        assert not args.delayed


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Q1A" in out
        assert "Q5B" in out
        assert "remote:partsupp" in out

    def test_tables(self, capsys):
        assert main(["tables", "--scale", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "lineitem" in out
        assert "total" in out

    def test_run_single_strategy(self, capsys):
        assert main([
            "run", "Q3A", "--strategy", "feedforward", "--scale", "0.002",
        ]) == 0
        out = capsys.readouterr().out
        assert "feedforward" in out
        assert "Q3A" in out

    def test_run_all_strategies(self, capsys):
        assert main(["run", "Q3A", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        for name in ("baseline", "magic", "feedforward", "costbased"):
            assert name in out

    def test_run_partitioned(self, capsys):
        assert main([
            "run", "Q2A", "--strategy", "costbased", "--scale", "0.002",
            "--partitions", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 partitions" in out
        # Same answer as the local run, from the partitioned placement.
        local = run_workload_query("Q2A", "costbased", scale_factor=0.002)
        row_line = next(
            ln for ln in out.splitlines() if ln.startswith("costbased")
        )
        assert int(row_line.split()[1]) == len(local.result.rows)

    def test_run_join_query_skips_magic(self, capsys):
        assert main(["run", "Q4A", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "magic" not in out

    def test_run_unknown_query(self, capsys):
        assert main(["run", "Q9Z", "--scale", "0.002"]) == 2

    def test_explain(self, capsys):
        assert main(["explain", "Q1A", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "GroupBy" in out
        assert "total estimated cost" in out

    def test_explain_magic(self, capsys):
        assert main(["explain", "Q1A", "--scale", "0.002", "--magic"]) == 0
        out = capsys.readouterr().out
        assert "SemiJoin" in out


class TestObservabilityFlags:
    def _load(self, path):
        import json

        with open(path) as fh:
            return json.load(fh)

    def test_run_trace_out(self, capsys, tmp_path):
        from repro.obs.trace import validate_chrome_trace

        trace = tmp_path / "trace.json"
        assert main([
            "run", "Q2A", "--strategy", "costbased", "--scale", "0.002",
            "--trace-out", str(trace),
        ]) == 0
        assert "events written" in capsys.readouterr().out
        assert validate_chrome_trace(self._load(trace)) == []

    def test_run_trace_out_needs_one_strategy(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        assert main([
            "run", "Q2A", "--scale", "0.002", "--trace-out", str(trace),
        ]) == 2
        assert "single --strategy" in capsys.readouterr().err
        assert not trace.exists()

    def test_explain_analyze(self, capsys):
        assert main([
            "explain", "Q2A", "--analyze", "--strategy", "costbased",
            "--scale", "0.002",
        ]) == 0
        out = capsys.readouterr().out
        assert "est. rows" in out
        assert "actual" in out
        assert "strategy costbased" in out

    def test_explain_analyze_magic_strategy_uses_magic_plan(self, capsys):
        assert main([
            "explain", "Q1A", "--analyze", "--strategy", "magic",
            "--scale", "0.002",
        ]) == 0
        assert "(shared)" in capsys.readouterr().out

    def test_explain_analyze_magic_unavailable(self, capsys):
        assert main([
            "explain", "Q4A", "--analyze", "--strategy", "magic",
            "--scale", "0.002",
        ]) == 2
        assert "no magic-sets plan" in capsys.readouterr().err

    def test_explain_analyze_trace_out(self, capsys, tmp_path):
        from repro.obs.trace import validate_chrome_trace

        trace = tmp_path / "trace.json"
        assert main([
            "explain", "Q1A", "--analyze", "--scale", "0.002",
            "--trace-out", str(trace),
        ]) == 0
        assert validate_chrome_trace(self._load(trace)) == []

    def test_workload_trace_and_metrics_out(self, capsys, tmp_path):
        from repro.obs.trace import validate_chrome_trace

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert main([
            "workload", "Q2A*2,Q1A", "--scale", "0.002",
            "--trace-out", str(trace), "--metrics-out", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert "feedback records written" in out
        assert validate_chrome_trace(self._load(trace)) == []
        payload = self._load(metrics)
        assert payload["feedback"], "metrics export has no feedback records"
        assert "queries.completed" in payload["registry"]
        assert "latency_p99" in payload["summary"]

    def test_workload_summary_surfaces_engine_lines(self, capsys):
        assert main(["workload", "Q2A*2,Q1A", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "latency p50" in out
        assert "tuples pruned" in out
        assert "AIP sets built" in out

    def test_workload_governed_summary_surfaces_spill(self, capsys):
        assert main([
            "workload", "Q2A", "--scale", "0.002",
            "--memory-budget", "64k", "--no-result-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "governor: peak resident" in out
        assert "spill bytes" in out


class TestWorkloadCommand:
    def test_inline_stream(self, capsys):
        assert main([
            "workload", "Q2A*2,Q1A", "--scale", "0.002",
        ]) == 0
        out = capsys.readouterr().out
        assert "wait (vs)" in out
        assert "latency" in out
        assert "peak aggregate state" in out
        assert "result cache" in out
        assert "AIP cache" in out
        assert "cached" in out  # the repeated Q2A hits the result cache

    def test_script_file(self, capsys, tmp_path):
        script = tmp_path / "stream.txt"
        script.write_text(
            "# demo stream\nQ1A\n@0.01 Q3A\n"
            "select count(*) as n from part\n"
        )
        assert main([
            "workload", str(script), "--scale", "0.002",
            "--scheduler", "sjf", "--no-result-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "3 queries (3 completed, 0 shed)" in out

    def test_budget_sheds(self, capsys):
        assert main([
            "workload", "Q2A", "--scale", "0.002", "--budget-mb", "0.000001",
        ]) == 0
        out = capsys.readouterr().out
        assert "shed" in out
        assert "1 shed" in out

    def test_skewed_stream_uses_skewed_catalog(self, capsys):
        # Q1B rows must match `repro run Q1B`, which builds Zipf data.
        assert main(["workload", "Q1B", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        from repro.data.tpch import cached_tpch
        from repro.exec.context import ExecutionContext
        from repro.exec.engine import execute_plan
        from repro.workloads.registry import get_query
        catalog = cached_tpch(scale_factor=0.002, skew=0.5)
        plan = get_query("Q1B").build_baseline(catalog)
        solo = execute_plan(plan, ExecutionContext(catalog))
        row_line = next(ln for ln in out.splitlines() if "Q1B" in ln)
        assert int(row_line.split()[3]) == len(solo.rows)

    def test_mixed_skew_stream_rejected(self, capsys):
        assert main(["workload", "Q1A,Q1B", "--scale", "0.002"]) == 2
        assert "mixes data skews" in capsys.readouterr().err

    def test_repeat_shifts_arrivals_by_span(self, capsys, tmp_path):
        script = tmp_path / "stream.txt"
        script.write_text("Q1A\n@0.05 Q1A\n")
        assert main([
            "workload", str(script), "--scale", "0.002", "--repeat", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "4 queries (4 completed" in out

    def test_missing_script_path_reported(self, capsys):
        assert main(["workload", "no/such/stream.txt"]) == 2
        assert "no such workload script" in capsys.readouterr().err

    def test_unknown_qid_reported_not_sql_error(self, capsys):
        assert main(["workload", "Q9Z"]) == 2
        err = capsys.readouterr().err
        assert "no such workload script or query id: Q9Z" in err

    def test_sql_with_division_is_not_mistaken_for_path(self, capsys):
        assert main([
            "workload",
            "select count(*) as n from part where p_size = 8/2",
            "--scale", "0.002",
        ]) == 0
        assert "1 queries (1 completed" in capsys.readouterr().out

    def test_defaults(self):
        args = build_parser().parse_args(["workload", "Q1A"])
        assert args.strategy == "feedforward"
        assert args.scheduler == "fifo"
        assert args.max_concurrent == 4
        assert not args.no_aip_cache


class TestServeCommand:
    def test_serve_session(self, capsys, monkeypatch):
        import io
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(
                "# comment\nselect count(*) as n from part\nQ1A\nquit\n"
            ),
        )
        assert main(["serve", "--stdin", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "query service" in out
        assert "latency" in out
        assert "served" in out

    def test_serve_reports_errors_and_continues(self, capsys, monkeypatch):
        import io
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("select nonsense(\nQ1A\n"),
        )
        assert main(["serve", "--stdin", "--scale", "0.002"]) == 0
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "latency" in captured.out


class TestSqlCommand:
    def test_sql_run(self, capsys):
        assert main([
            "sql",
            "select count(*) as n from part",
            "--scale", "0.002",
        ]) == 0
        out = capsys.readouterr().out
        assert "1 rows" in out

    def test_sql_with_strategy(self, capsys):
        assert main([
            "sql",
            "select p_partkey from part, partsupp "
            "where p_partkey = ps_partkey and p_size = 1",
            "--scale", "0.002", "--strategy", "feedforward",
        ]) == 0
        out = capsys.readouterr().out
        assert "rows;" in out

    def test_sql_explain(self, capsys):
        assert main([
            "sql", "select p_partkey from part", "--scale", "0.002",
            "--explain",
        ]) == 0
        out = capsys.readouterr().out
        assert "total estimated cost" in out


class TestAdminCommands:
    """``repro stats`` / ``repro top`` against a live server."""

    @pytest.fixture()
    def server(self):
        from repro.data.tpch import cached_tpch
        from repro.net.server import ReproServer
        from repro.service import QueryService, ServiceConfig

        catalog = cached_tpch(scale_factor=0.002)
        service = QueryService(catalog, ServiceConfig())
        with ReproServer(service).start() as server:
            from repro.client import connect
            with connect(port=server.port, tenant="cli") as client:
                client.query("Q1A")
            yield server

    def test_parser_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.port == 7734 and not args.prom
        args = build_parser().parse_args(["top", "--iterations", "3"])
        assert args.interval == 2.0 and args.iterations == 3

    def test_stats_json(self, server, capsys):
        assert main(["stats", "--port", str(server.port)]) == 0
        out = capsys.readouterr().out
        import json
        stats = json.loads(out)
        assert stats["server"]["served_queries"] == 1
        assert "queries.completed" in stats["registry"]

    def test_stats_prom(self, server, capsys):
        assert main(["stats", "--port", str(server.port), "--prom"]) == 0
        out = capsys.readouterr().out
        from repro.obs.export import validate_prometheus
        assert validate_prometheus(out) == []

    def test_top_bounded_iterations(self, server, capsys):
        assert main([
            "top", "--port", str(server.port),
            "--iterations", "2", "--interval", "0.05", "--plain",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("repro top —") == 2
        assert "queries: 1 served" in out

    def test_unreachable_server_is_a_clean_error(self, capsys):
        assert main(["stats", "--port", "1"]) == 2
        assert main(["top", "--port", "1", "--iterations", "1"]) == 2
        err = capsys.readouterr().err
        assert "cannot reach" in err
