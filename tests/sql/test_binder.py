"""End-to-end SQL tests: text -> plan -> execution vs reference."""

import pytest

from repro.aip.feedforward import FeedForwardStrategy
from repro.common.errors import PlanError
from repro.data.tpch import cached_tpch
from repro.exec.context import ExecutionContext
from repro.exec.engine import execute_plan
from repro.plan.validate import validate_plan
from repro.sql import sql_to_plan

from tests.helpers import reference_execute, rows_equal


@pytest.fixture(scope="module")
def catalog():
    return cached_tpch(scale_factor=0.002)


def run_sql(catalog, sql, strategy=None):
    plan = sql_to_plan(catalog, sql)
    validate_plan(plan, catalog)
    ctx = ExecutionContext(catalog, strategy=strategy)
    return plan, execute_plan(plan, ctx)


class TestSimpleQueries:
    def test_projection(self, catalog):
        plan, result = run_sql(
            catalog, "select p_partkey, p_name from part where p_size = 1"
        )
        assert rows_equal(result.rows, reference_execute(plan, catalog))
        assert result.schema.names == ["p_partkey", "p_name"]

    def test_join(self, catalog):
        plan, result = run_sql(
            catalog,
            "select p_partkey, ps_supplycost from part, partsupp "
            "where p_partkey = ps_partkey and p_size <= 10",
        )
        assert rows_equal(result.rows, reference_execute(plan, catalog))
        assert len(result) > 0

    def test_like_and_arithmetic(self, catalog):
        plan, result = run_sql(
            catalog,
            "select p_partkey from part, partsupp "
            "where p_partkey = ps_partkey and p_type like '%TIN' "
            "and 2 * ps_supplycost < p_retailprice",
        )
        assert rows_equal(result.rows, reference_execute(plan, catalog))

    def test_distinct(self, catalog):
        plan, result = run_sql(
            catalog,
            "select distinct ps_partkey from partsupp",
        )
        expected = len(set(catalog.table("partsupp").column("ps_partkey")))
        assert len(result) == expected

    def test_table_alias_self_join(self, catalog):
        plan, result = run_sql(
            catalog,
            "select a.ps_partkey from partsupp a, partsupp b "
            "where a.ps_partkey = b.ps_partkey "
            "and a.ps_suppkey = b.ps_suppkey",
        )
        assert len(result) == len(catalog.table("partsupp"))


class TestAggregates:
    def test_group_by(self, catalog):
        plan, result = run_sql(
            catalog,
            "select ps_partkey, sum(ps_availqty) as avail "
            "from partsupp group by ps_partkey",
        )
        assert rows_equal(result.rows, reference_execute(plan, catalog))
        assert result.schema.names == ["ps_partkey", "avail"]

    def test_keyless_aggregate_with_arithmetic(self, catalog):
        plan, result = run_sql(
            catalog,
            "select sum(ps_availqty) / 7.0 as avg_yearly from partsupp",
        )
        assert len(result) == 1
        expected = sum(catalog.table("partsupp").column("ps_availqty")) / 7.0
        assert result.rows[0][0] == pytest.approx(expected)

    def test_count_star(self, catalog):
        plan, result = run_sql(
            catalog, "select count(*) as n from part",
        )
        assert result.rows[0][0] == len(catalog.table("part"))

    def test_group_by_join(self, catalog):
        plan, result = run_sql(
            catalog,
            "select n_name, sum(s_acctbal) as total "
            "from supplier, nation "
            "where s_nationkey = n_nationkey group by n_name",
        )
        assert rows_equal(result.rows, reference_execute(plan, catalog))


class TestScalarSubqueries:
    MIN_COST_SQL = (
        "select distinct p_partkey from part, partsupp "
        "where p_partkey = ps_partkey and p_size <= 25 "
        "and ps_supplycost = (select min(ps_supplycost) from partsupp "
        "where p_partkey = ps_partkey)"
    )

    def test_min_cost_decorrelation(self, catalog):
        plan, result = run_sql(catalog, self.MIN_COST_SQL)
        assert rows_equal(result.rows, reference_execute(plan, catalog))
        assert len(result) > 0

    def test_matches_manual_semantics(self, catalog):
        """Cross-check the decorrelated plan against a direct Python
        evaluation of the correlated SQL."""
        _, result = run_sql(catalog, self.MIN_COST_SQL)
        part = catalog.table("part")
        ps = catalog.table("partsupp")
        size_idx = part.schema.index_of("p_size")
        pk_idx = part.schema.index_of("p_partkey")
        small = {r[pk_idx] for r in part if r[size_idx] <= 25}
        min_cost = {}
        for row in ps:
            k, cost = row[0], row[3]
            if k not in min_cost or cost < min_cost[k]:
                min_cost[k] = cost
        expected = set()
        for row in ps:
            k, cost = row[0], row[3]
            if k in small and cost == min_cost[k]:
                expected.add((k,))
        assert set(result.rows) == expected

    def test_avg_quantity_subquery(self, catalog):
        sql = (
            "select sum(l_extendedprice) / 7.0 as avg_yearly "
            "from lineitem, part "
            "where p_partkey = l_partkey and p_size = 1 "
            "and l_quantity < (select 0.2 * avg(l_quantity) from lineitem "
            "where l_partkey = p_partkey)"
        )
        plan, result = run_sql(catalog, sql)
        assert rows_equal(result.rows, reference_execute(plan, catalog))
        assert len(result) == 1

    def test_aip_on_sql_plan(self, catalog):
        plan1, baseline = run_sql(catalog, self.MIN_COST_SQL)
        plan2, aip = run_sql(
            catalog, self.MIN_COST_SQL, strategy=FeedForwardStrategy()
        )
        assert rows_equal(baseline.rows, aip.rows)


class TestBinderErrors:
    def test_unknown_column(self, catalog):
        with pytest.raises(PlanError):
            sql_to_plan(catalog, "select nope from part")

    def test_ambiguous_column(self, catalog):
        with pytest.raises(PlanError):
            sql_to_plan(
                catalog,
                "select ps_partkey from partsupp a, partsupp b "
                "where a.ps_partkey = b.ps_partkey",
            )

    def test_uncorrelated_subquery_rejected(self, catalog):
        with pytest.raises(PlanError):
            sql_to_plan(
                catalog,
                "select p_partkey from part "
                "where p_retailprice < (select min(ps_supplycost) "
                "from partsupp)",
            )

    def test_non_grouped_select_item_rejected(self, catalog):
        with pytest.raises(PlanError):
            sql_to_plan(
                catalog,
                "select p_brand, sum(p_size) from part",
            )

    def test_bare_aggregate_in_where_rejected(self, catalog):
        with pytest.raises(PlanError):
            sql_to_plan(
                catalog,
                "select p_partkey from part where sum(p_size) = 1",
            )
