"""Tests for the SQL tokenizer."""

import pytest

from repro.sql.tokens import SqlSyntaxError, tokenize


class TestTokenize:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT foo FROM bar")
        assert [t.kind for t in tokens] == ["KEYWORD", "NAME", "KEYWORD", "NAME"]
        assert tokens[0].value == "select"

    def test_strings_with_escapes(self):
        (token,) = tokenize("'O''Brien'")
        assert token.kind == "STRING"
        assert token.value == "O'Brien"

    def test_numbers(self):
        tokens = tokenize("42 0.2")
        assert [(t.kind, t.value) for t in tokens] == [
            ("NUMBER", "42"), ("NUMBER", "0.2"),
        ]

    def test_operators(self):
        values = [t.value for t in tokenize("= != <> < <= > >= + - * /")]
        assert values == ["=", "!=", "<>", "<", "<=", ">", ">=",
                          "+", "-", "*", "/"]

    def test_punctuation(self):
        kinds = [t.kind for t in tokenize("(a, b.c)")]
        assert kinds == ["LPAREN", "NAME", "COMMA", "NAME", "DOT",
                         "NAME", "RPAREN"]

    def test_junk_rejected(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select #comment")

    def test_positions_recorded(self):
        tokens = tokenize("a  b")
        assert tokens[0].position == 0
        assert tokens[1].position == 3
