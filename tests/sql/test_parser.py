"""Tests for the SQL parser."""

import pytest

from repro.sql import ast
from repro.sql.parser import parse
from repro.sql.tokens import SqlSyntaxError


class TestBasics:
    def test_simple_select(self):
        stmt = parse("select p_partkey from part")
        assert len(stmt.items) == 1
        assert stmt.tables[0].table == "part"
        assert not stmt.distinct

    def test_distinct_and_alias(self):
        stmt = parse("select distinct p_partkey as k from part p")
        assert stmt.distinct
        assert stmt.items[0].alias == "k"
        assert stmt.tables[0].alias == "p"

    def test_multiple_tables_and_conjuncts(self):
        stmt = parse(
            "select p_partkey from part, partsupp "
            "where p_partkey = ps_partkey and p_size = 1"
        )
        assert len(stmt.tables) == 2
        assert len(stmt.where) == 2

    def test_group_by(self):
        stmt = parse(
            "select n_name, sum(s_acctbal) from supplier group by n_name"
        )
        assert [c.name for c in stmt.group_by] == ["n_name"]
        agg = stmt.items[1].expr
        assert isinstance(agg, ast.AggCall)
        assert agg.func == "sum"

    def test_qualified_columns(self):
        stmt = parse("select p.p_partkey from part p where p.p_size = 1")
        item = stmt.items[0].expr
        assert isinstance(item, ast.ColumnRef)
        assert item.qualifier == "p"


class TestExpressions:
    def test_arithmetic_precedence(self):
        stmt = parse("select a + b * c from t")
        expr = stmt.items[0].expr
        assert isinstance(expr, ast.BinaryOp)
        assert expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp)
        assert expr.right.op == "*"

    def test_parentheses(self):
        stmt = parse("select (a + b) * c from t")
        expr = stmt.items[0].expr
        assert expr.op == "*"
        assert isinstance(expr.left, ast.BinaryOp)

    def test_function_call(self):
        stmt = parse("select year(o_orderdate) from orders")
        expr = stmt.items[0].expr
        assert isinstance(expr, ast.FuncCall)
        assert expr.name == "year"

    def test_count_star(self):
        stmt = parse("select count(*) from part")
        expr = stmt.items[0].expr
        assert isinstance(expr, ast.AggCall)
        assert expr.arg is None

    def test_like(self):
        stmt = parse("select a from t where p_type like '%TIN'")
        pred = stmt.where[0]
        assert isinstance(pred, ast.LikePredicate)
        assert pred.pattern == "%TIN"


class TestSubqueries:
    def test_scalar_subquery(self):
        stmt = parse(
            "select p_partkey from part, partsupp "
            "where p_partkey = ps_partkey "
            "and ps_supplycost = (select min(ps_supplycost) from partsupp "
            "where p_partkey = ps_partkey)"
        )
        comparison = stmt.where[1]
        assert isinstance(comparison.right, ast.Subquery)
        inner = comparison.right.query
        assert isinstance(inner.items[0].expr, ast.AggCall)
        assert inner.items[0].expr.func == "min"

    def test_subquery_with_arithmetic(self):
        stmt = parse(
            "select l_quantity from lineitem "
            "where l_quantity < (select 0.2 * avg(l_quantity) from lineitem)"
        )
        inner = stmt.where[0].right.query
        assert isinstance(inner.items[0].expr, ast.BinaryOp)


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(SqlSyntaxError):
            parse("select a")

    def test_trailing_garbage(self):
        # Note: "from t extra" would parse as a table alias; use tokens
        # that cannot continue the statement.
        with pytest.raises(SqlSyntaxError):
            parse("select a from t where a = 1 1")

    def test_bad_comparison(self):
        with pytest.raises(SqlSyntaxError):
            parse("select a from t where a + b")

    def test_unclosed_paren(self):
        with pytest.raises(SqlSyntaxError):
            parse("select (a from t")
