"""Soundness property tests for AIP.

These hunt for the class of bugs where a filter is injected somewhere
it doesn't dominate, producing *missing* rows.  The invariant is strict
equality of result multisets across strategies, over randomised data,
plan shapes and arrival timings.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aip.feedforward import FeedForwardStrategy
from repro.aip.manager import CostBasedStrategy
from repro.data.tpch import TpchConfig, generate_tpch
from repro.exec.arrival import ArrivalModel
from repro.exec.context import ExecutionContext
from repro.exec.engine import execute_plan
from repro.expr.aggregates import MIN, SUM, AggregateSpec
from repro.expr.expressions import col, lit
from repro.optimizer.predicate_graph import SourcePredicateGraph
from repro.plan.builder import scan

from tests.helpers import rows_equal

_CATALOGS = {}


def small_catalog(seed: int, skew: float):
    key = (seed, skew)
    if key not in _CATALOGS:
        _CATALOGS[key] = generate_tpch(
            TpchConfig(scale_factor=0.001, skew=skew, seed=seed)
        )
    return _CATALOGS[key]


def correlated_plan(catalog, size_cut, date_cut, use_distinct):
    parent = (
        scan(catalog, "part")
        .filter(col("p_size").le(size_cut))
        .join(
            scan(catalog, "partsupp", prefix="ps1_"),
            on=[("p_partkey", "ps1_ps_partkey")],
        )
    )
    sub = (
        scan(catalog, "lineitem")
        .filter(col("l_shipdate").gt(date_cut))
        .group_by(
            ["l_partkey"],
            [AggregateSpec(SUM, col("l_quantity"), "numsold")],
        )
    )
    joined = parent.join(sub, on=[("p_partkey", "l_partkey")])
    if use_distinct:
        return joined.project(["p_partkey"]).distinct().build()
    return joined.build()


def min_plan(catalog, size_cut):
    sub = scan(catalog, "partsupp", prefix="m_").group_by(
        ["m_ps_partkey"],
        [AggregateSpec(MIN, col("m_ps_supplycost"), "min_cost")],
    )
    return (
        scan(catalog, "part")
        .filter(col("p_size").le(size_cut))
        .join(scan(catalog, "partsupp"), on=[("p_partkey", "ps_partkey")])
        .join(
            sub,
            on=[("ps_partkey", "m_ps_partkey")],
            residual=col("ps_supplycost").eq(col("min_cost")),
        )
        .build()
    )


class TestAggregateBoundaryInvariant:
    def test_aggregate_input_not_equated_to_output(self):
        """``min_cost = MIN(m_ps_supplycost)`` must NOT put the
        aggregate's input attribute into the output's equivalence class:
        filtering the subquery's supply costs by the parent's would
        corrupt the MIN."""
        catalog = small_catalog(1, 0.0)
        plan = min_plan(catalog, 50)
        graph = SourcePredicateGraph.from_plan(plan)
        assert graph.are_equated("ps_supplycost", "min_cost")
        assert not graph.are_equated("m_ps_supplycost", "min_cost")
        assert not graph.are_equated("m_ps_supplycost", "ps_supplycost")


class TestRandomisedConsistency:
    @given(
        seed=st.integers(0, 6),
        skew=st.sampled_from([0.0, 0.5]),
        size_cut=st.integers(1, 50),
        date_cut=st.sampled_from(["1993-01-01", "1996-01-01", "1998-01-01"]),
        use_distinct=st.booleans(),
        delayed_table=st.sampled_from(
            [None, "part", "partsupp", "lineitem"]
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_strategies_agree_on_correlated_plan(
        self, seed, skew, size_cut, date_cut, use_distinct, delayed_table
    ):
        catalog = small_catalog(seed, skew)

        def resolver(node):
            if delayed_table and node.table_name == delayed_table:
                return ArrivalModel.delayed(initial_delay=0.005)
            return None

        results = []
        for strategy in (None, FeedForwardStrategy(), CostBasedStrategy()):
            plan = correlated_plan(catalog, size_cut, date_cut, use_distinct)
            ctx = ExecutionContext(catalog, strategy=strategy)
            results.append(execute_plan(plan, ctx, arrival_resolver=resolver))
        assert rows_equal(results[0].rows, results[1].rows)
        assert rows_equal(results[0].rows, results[2].rows)

    @given(
        seed=st.integers(0, 6),
        size_cut=st.integers(1, 50),
        fast_table=st.sampled_from(["part", "partsupp"]),
    )
    @settings(max_examples=15, deadline=None)
    def test_strategies_agree_on_min_plan(self, seed, size_cut, fast_table):
        catalog = small_catalog(seed, 0.0)

        def resolver(node):
            # Vary completion order aggressively.
            if node.table_name == fast_table:
                return ArrivalModel.streaming(per_tuple=1e-8)
            return ArrivalModel.streaming(per_tuple=1e-5)

        results = []
        for strategy in (None, FeedForwardStrategy(), CostBasedStrategy()):
            plan = min_plan(catalog, size_cut)
            ctx = ExecutionContext(catalog, strategy=strategy)
            results.append(execute_plan(plan, ctx, arrival_resolver=resolver))
        assert rows_equal(results[0].rows, results[1].rows)
        assert rows_equal(results[0].rows, results[2].rows)
