"""Tests for the paper-flagged AIP extensions: memory-bounded AIP sets
(Section V) and range-condition information passing (Section III-C)."""

import pytest

from repro.aip.feedforward import FeedForwardStrategy
from repro.aip.sets import HASHSET
from repro.data.tpch import cached_tpch
from repro.exec.arrival import ArrivalModel
from repro.exec.context import ExecutionContext
from repro.exec.engine import execute_plan
from repro.expr.aggregates import AVG, AggregateSpec
from repro.expr.expressions import col, lit
from repro.plan.builder import scan

from tests.aip.conftest import subquery_plan
from tests.helpers import rows_equal


@pytest.fixture(scope="module")
def catalog():
    return cached_tpch(scale_factor=0.002)


def range_plan(catalog):
    """A Q2-like plan whose final join carries the residual inequality
    ``l_quantity < qty_limit`` — the range-AIP opportunity."""
    parent = (
        scan(catalog, "part")
        .filter(col("p_size").le(10))
        .join(scan(catalog, "lineitem"), on=[("p_partkey", "l_partkey")])
    )
    sub = (
        scan(catalog, "lineitem", prefix="i_")
        .group_by(
            ["i_l_partkey"],
            [AggregateSpec(AVG, col("i_l_quantity"), "avg_qty")],
        )
        .project([
            "i_l_partkey",
            ("qty_limit", lit(0.4) * col("avg_qty")),
        ])
    )
    return parent.join(
        sub,
        on=[("l_partkey", "i_l_partkey")],
        residual=col("l_quantity").lt(col("qty_limit")),
    ).build()


class TestMemoryBudget:
    def test_budget_forces_discards_and_preserves_results(self, catalog):
        baseline = execute_plan(subquery_plan(catalog), ExecutionContext(catalog))
        strategy = FeedForwardStrategy(memory_budget=4096)
        bounded = execute_plan(
            subquery_plan(catalog),
            ExecutionContext(catalog, strategy=strategy),
        )
        assert rows_equal(baseline.rows, bounded.rows)
        assert strategy.working_sets_discarded > 0

    def test_budget_bounds_aip_state(self, catalog):
        budget = 4096
        strategy = FeedForwardStrategy(memory_budget=budget)
        ctx = ExecutionContext(catalog, strategy=strategy)
        execute_plan(subquery_plan(catalog), ctx)
        # Working-set state never exceeds the budget by more than one
        # set's size between enforcement rounds; at end it is released.
        assert ctx.metrics.state_bytes_of(strategy._state_owner) == 0

    def test_hashset_budget_shrinks_buckets(self, catalog):
        baseline = execute_plan(subquery_plan(catalog), ExecutionContext(catalog))
        strategy = FeedForwardStrategy(
            summary_kind=HASHSET, memory_budget=8192
        )
        bounded = execute_plan(
            subquery_plan(catalog),
            ExecutionContext(catalog, strategy=strategy),
        )
        assert rows_equal(baseline.rows, bounded.rows)

    def test_unbounded_discards_nothing(self, catalog):
        strategy = FeedForwardStrategy()
        execute_plan(
            subquery_plan(catalog), ExecutionContext(catalog, strategy=strategy)
        )
        assert strategy.working_sets_discarded == 0


class TestRangeFilters:
    def test_results_preserved(self, catalog):
        baseline = execute_plan(range_plan(catalog), ExecutionContext(catalog))
        ranged = execute_plan(
            range_plan(catalog),
            ExecutionContext(
                catalog,
                strategy=FeedForwardStrategy(enable_range_filters=True),
            ),
        )
        assert rows_equal(baseline.rows, ranged.rows)
        assert len(baseline) > 0

    def test_range_filter_prunes_more(self, catalog):
        # Delay the parent LINEITEM so the subquery side (and its
        # qty_limit bounds) completes first.
        def resolver(node):
            if node.table_name == "lineitem" and not node.renames:
                return ArrivalModel.delayed(initial_delay=0.01)
            return None

        plain = FeedForwardStrategy()
        ranged = FeedForwardStrategy(enable_range_filters=True)
        r_plain = execute_plan(
            range_plan(catalog),
            ExecutionContext(catalog, strategy=plain),
            arrival_resolver=resolver,
        )
        r_ranged = execute_plan(
            range_plan(catalog),
            ExecutionContext(catalog, strategy=ranged),
            arrival_resolver=resolver,
        )
        assert rows_equal(r_plain.rows, r_ranged.rows)
        assert (
            r_ranged.metrics.total_pruned > r_plain.metrics.total_pruned
        )

    def test_range_opportunities_indexed(self, catalog):
        strategy = FeedForwardStrategy(enable_range_filters=True)
        execute_plan(
            range_plan(catalog), ExecutionContext(catalog, strategy=strategy)
        )
        assert strategy._range_opps  # the residual inequality was found

    def test_no_opportunities_on_pure_equijoin(self, catalog):
        strategy = FeedForwardStrategy(enable_range_filters=True)
        plan = (
            scan(catalog, "part")
            .join(scan(catalog, "partsupp"), on=[("p_partkey", "ps_partkey")])
            .build()
        )
        execute_plan(plan, ExecutionContext(catalog, strategy=strategy))
        assert not strategy._range_opps
