"""Unit tests for AIPCANDIDATES (Figure 3 of the paper)."""

import pytest

from repro.aip.candidates import aip_candidates
from repro.data.tpch import cached_tpch
from repro.exec.context import ExecutionContext
from repro.exec.translate import translate
from repro.expr.aggregates import MIN, AggregateSpec
from repro.expr.expressions import col
from repro.optimizer.predicate_graph import SourcePredicateGraph
from repro.plan.builder import scan


@pytest.fixture(scope="module")
def catalog():
    return cached_tpch(scale_factor=0.001)


def build(catalog):
    sub = scan(catalog, "partsupp", prefix="m_").group_by(
        ["m_ps_partkey"],
        [AggregateSpec(MIN, col("m_ps_supplycost"), "min_cost")],
    )
    plan = (
        scan(catalog, "part")
        .join(scan(catalog, "partsupp"), on=[("p_partkey", "ps_partkey")])
        .join(
            sub,
            on=[("ps_partkey", "m_ps_partkey")],
            residual=col("ps_supplycost").eq(col("min_cost")),
        )
        .build()
    )
    ctx = ExecutionContext(catalog)
    physical = translate(plan, ctx)
    graph = SourcePredicateGraph.from_plan(plan)
    return plan, physical, graph, aip_candidates(physical, graph)


class TestCandidates:
    def test_sources_cover_correlated_attrs(self, catalog):
        _, _, _, index = build(catalog)
        assert "p_partkey" in index.sources
        assert "ps_partkey" in index.sources
        # Aggregate output participates via the residual equality.
        assert "min_cost" in index.sources

    def test_uncorrelated_attr_not_a_source(self, catalog):
        _, _, _, index = build(catalog)
        assert "p_brand" not in index.sources
        # The aggregate *input* must not leak into the eq class.
        assert "m_ps_supplycost" not in index.sources

    def test_groupby_producible_restricted_to_keys_and_outputs(self, catalog):
        plan, physical, graph, index = build(catalog)
        from repro.plan.logical import GroupBy
        gb = next(n for n in plan.walk() if isinstance(n, GroupBy))
        producible = index.producible.get((gb.node_id, 0), [])
        assert "m_ps_partkey" in producible
        assert "min_cost" in producible
        assert "m_ps_supplycost" not in producible

    def test_interested_includes_scans(self, catalog):
        plan, physical, graph, index = build(catalog)
        from repro.plan.logical import Scan
        scan_ids = {
            n.node_id for n in plan.walk()
            if isinstance(n, Scan) and n.table_name == "partsupp"
        }
        interested = index.interested_in(graph, "p_partkey")
        interested_ids = {node_id for node_id, _ in interested}
        assert scan_ids & interested_ids

    def test_party_attr_resolution(self, catalog):
        plan, physical, graph, index = build(catalog)
        for party in index.interested_in(graph, "p_partkey"):
            attr = index.attr_at(graph, party, "p_partkey")
            assert attr is not None
            assert graph.are_equated(attr, "p_partkey")
