"""Tests for AIP sets and the AIP Registry."""

import pytest

from repro.aip.registry import AIPRegistry
from repro.aip.sets import HASHSET, AIPSet, AIPSetSpec
from repro.data.tpch import cached_tpch
from repro.optimizer.predicate_graph import SourcePredicateGraph
from repro.plan.builder import scan


@pytest.fixture(scope="module")
def graph():
    catalog = cached_tpch(scale_factor=0.001)
    plan = (
        scan(catalog, "part")
        .join(scan(catalog, "partsupp"), on=[("p_partkey", "ps_partkey")])
        .build()
    )
    return SourcePredicateGraph.from_plan(plan)


class TestAIPSet:
    def test_incremental_and_from_values(self):
        spec = AIPSetSpec("k", 100)
        working = AIPSet("k", spec, "test")
        for v in range(50):
            working.add(v)
        assert all(v in working for v in range(50))
        built = AIPSet.from_values("k", spec, "test2", range(50))
        assert built.complete
        assert all(v in built for v in range(50))

    def test_same_spec_sets_intersect(self):
        spec = AIPSetSpec("k", 100)
        a = AIPSet.from_values("k", spec, "a", range(0, 60))
        b = AIPSet.from_values("k", spec, "b", range(40, 100))
        merged = a.try_intersect(b)
        assert merged is not None
        assert all(v in merged for v in range(40, 60))

    def test_different_spec_sets_do_not_merge(self):
        a = AIPSet.from_values("k", AIPSetSpec("k", 100), "a", range(10))
        b = AIPSet.from_values("j", AIPSetSpec("j", 100), "b", range(10))
        assert a.try_intersect(b) is None

    def test_hashset_kind(self):
        spec = AIPSetSpec("k", 100, kind=HASHSET)
        s = AIPSet.from_values("k", spec, "x", range(20))
        assert 5 in s
        assert 99 not in s
        # Hash sets don't bitwise-merge.
        other = AIPSet.from_values("k", spec, "y", range(20))
        assert s.try_intersect(other) is None

    def test_byte_size_positive(self):
        s = AIPSet("k", AIPSetSpec("k", 1000), "x")
        assert s.byte_size() > 0


class TestRegistry:
    def _parties(self):
        return (1, 0), (2, 0), (3, 1)

    def test_candidate_elimination(self, graph):
        reg = AIPRegistry(graph)
        p1, p2, _ = self._parties()
        reg.register_candidate("p_partkey", p1)
        # Nobody else is interested: candidate dies.
        reg.register_interest("p_partkey", p1)
        surviving = reg.eliminate_unwanted_candidates()
        assert not surviving
        assert not reg.is_wanted("p_partkey")

    def test_candidate_survives_with_other_interest(self, graph):
        reg = AIPRegistry(graph)
        p1, p2, _ = self._parties()
        reg.register_candidate("p_partkey", p1)
        # Interest via the equated attribute from a different party.
        reg.register_interest("ps_partkey", p2)
        surviving = reg.eliminate_unwanted_candidates()
        assert len(surviving) == 1
        assert reg.is_wanted("p_partkey")
        assert reg.is_wanted("ps_partkey")  # same class

    def test_publish_and_vector(self, graph):
        reg = AIPRegistry(graph)
        spec = AIPSetSpec(reg.root_of("p_partkey"), 100)
        reg.set_spec(reg.root_of("p_partkey"), spec)
        s = AIPSet.from_values("p_partkey", spec, "x", range(10))
        reg.publish(s)
        # Vector reachable through any attribute of the class.
        assert len(reg.vector("ps_partkey")) == 1

    def test_publish_merges_compatible(self, graph):
        reg = AIPRegistry(graph)
        spec = AIPSetSpec(reg.root_of("p_partkey"), 100)
        events = []
        reg.subscribe(lambda root, s, replaced: events.append(replaced))
        reg.publish(AIPSet.from_values("p_partkey", spec, "a", range(0, 20)))
        reg.publish(AIPSet.from_values("ps_partkey", spec, "b", range(10, 30)))
        assert len(reg.vector("p_partkey")) == 1  # merged by intersection
        assert events == [False, True]
        merged = reg.vector("p_partkey")[0]
        assert all(v in merged for v in range(10, 20))

    def test_interest_refcounting(self, graph):
        reg = AIPRegistry(graph)
        p1, p2, _ = self._parties()
        reg.register_interest("p_partkey", p1)
        reg.register_interest("ps_partkey", p2)
        assert reg.has_interest("p_partkey")
        assert reg.drop_interest(p1) == set()
        emptied = reg.drop_interest(p2)
        assert len(emptied) == 1
        assert not reg.has_interest("p_partkey")
