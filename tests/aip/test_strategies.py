"""End-to-end AIP strategy tests: correctness and effectiveness.

The overriding invariant (paper Section V): AIP is a *performance*
optimisation — every strategy must return exactly the same result set
as the baseline.
"""

import pytest

from repro.aip.feedforward import FeedForwardStrategy
from repro.aip.manager import CostBasedStrategy
from repro.exec.arrival import ArrivalModel
from repro.exec.context import ExecutionContext
from repro.exec.engine import execute_plan

from tests.aip.conftest import join_only_plan, min_cost_plan, subquery_plan
from tests.helpers import rows_equal


def run(plan, catalog, strategy=None, resolver=None):
    ctx = ExecutionContext(catalog, strategy=strategy)
    return execute_plan(plan, ctx, arrival_resolver=resolver)


PLAN_BUILDERS = [subquery_plan, min_cost_plan, join_only_plan]


class TestCorrectness:
    @pytest.mark.parametrize("builder", PLAN_BUILDERS)
    def test_feedforward_preserves_results(self, catalog, builder):
        baseline = run(builder(catalog), catalog)
        ff = run(builder(catalog), catalog, FeedForwardStrategy())
        assert rows_equal(baseline.rows, ff.rows)
        assert len(baseline) > 0

    @pytest.mark.parametrize("builder", PLAN_BUILDERS)
    def test_costbased_preserves_results(self, catalog, builder):
        baseline = run(builder(catalog), catalog)
        cb = run(builder(catalog), catalog, CostBasedStrategy())
        assert rows_equal(baseline.rows, cb.rows)

    @pytest.mark.parametrize("builder", PLAN_BUILDERS)
    def test_feedforward_with_delays_preserves_results(self, catalog, builder):
        def resolver(node):
            if node.table_name == "partsupp":
                return ArrivalModel.delayed(initial_delay=0.01)
            return None

        baseline = run(builder(catalog), catalog, resolver=resolver)
        ff = run(builder(catalog), catalog, FeedForwardStrategy(), resolver)
        assert rows_equal(baseline.rows, ff.rows)

    @pytest.mark.parametrize("builder", PLAN_BUILDERS)
    def test_costbased_with_delays_preserves_results(self, catalog, builder):
        def resolver(node):
            if node.table_name == "lineitem":
                return ArrivalModel.delayed(initial_delay=0.01)
            return None

        baseline = run(builder(catalog), catalog, resolver=resolver)
        cb = run(builder(catalog), catalog, CostBasedStrategy(), resolver)
        assert rows_equal(baseline.rows, cb.rows)

    def test_hashset_kind_preserves_results(self, catalog):
        from repro.aip.sets import HASHSET
        baseline = run(subquery_plan(catalog), catalog)
        ff = run(
            subquery_plan(catalog), catalog,
            FeedForwardStrategy(summary_kind=HASHSET),
        )
        assert rows_equal(baseline.rows, ff.rows)


class TestEffectiveness:
    def test_feedforward_prunes(self, catalog):
        ff = run(subquery_plan(catalog), catalog, FeedForwardStrategy())
        assert ff.metrics.total_pruned > 0
        assert ff.metrics.aip_sets_created > 0

    def test_feedforward_reduces_state(self, catalog):
        baseline = run(subquery_plan(catalog), catalog)
        ff = run(subquery_plan(catalog), catalog, FeedForwardStrategy())
        assert ff.metrics.peak_state_bytes < baseline.metrics.peak_state_bytes

    def test_costbased_creates_or_declines(self, catalog):
        cb = run(subquery_plan(catalog), catalog, CostBasedStrategy())
        m = cb.metrics
        assert m.aip_sets_created + m.aip_sets_declined > 0

    def test_costbased_reduces_state_on_selective_query(self, catalog):
        baseline = run(min_cost_plan(catalog), catalog)
        cb = run(min_cost_plan(catalog), catalog, CostBasedStrategy())
        assert cb.metrics.peak_state_bytes <= baseline.metrics.peak_state_bytes

    def test_feedforward_min_cost_pruning(self, catalog):
        """The MIN-cost completion set must prune parent PARTSUPP rows."""
        baseline = run(min_cost_plan(catalog), catalog)
        ff = run(min_cost_plan(catalog), catalog, FeedForwardStrategy())
        assert rows_equal(baseline.rows, ff.rows)
        assert ff.metrics.total_pruned > 0

    def test_costbased_declines_when_no_opportunity(self, catalog):
        """On a plan with a single join and no selective predicates the
        manager should mostly decline (safety: low overhead)."""
        from repro.plan.builder import scan
        plan = (
            scan(catalog, "part")
            .join(scan(catalog, "partsupp"), on=[("p_partkey", "ps_partkey")])
            .build()
        )
        baseline = run(plan, catalog)
        plan2 = (
            scan(catalog, "part")
            .join(scan(catalog, "partsupp"), on=[("p_partkey", "ps_partkey")])
            .build()
        )
        cb = run(plan2, catalog, CostBasedStrategy())
        assert rows_equal(baseline.rows, cb.rows)
        # Overhead within a few percent of baseline (paper: ~4% worst).
        assert cb.metrics.clock < baseline.metrics.clock * 1.15


class TestStrategyInternals:
    def test_ff_interest_drop_discards_working_sets(self, catalog):
        strategy = FeedForwardStrategy()
        run(subquery_plan(catalog), catalog, strategy)
        # After the query every working set has been published or dropped.
        assert not strategy._working

    def test_ff_ablation_knobs(self, catalog):
        baseline = run(subquery_plan(catalog), catalog)
        no_scan = run(
            subquery_plan(catalog), catalog,
            FeedForwardStrategy(inject_at_scans=False),
        )
        no_prune = run(
            subquery_plan(catalog), catalog,
            FeedForwardStrategy(prune_uninterested=False),
        )
        assert rows_equal(baseline.rows, no_scan.rows)
        assert rows_equal(baseline.rows, no_prune.rows)

    def test_cb_benefit_margin(self, catalog):
        """A prohibitive margin should turn cost-based AIP into baseline."""
        strict = run(
            min_cost_plan(catalog), catalog,
            CostBasedStrategy(benefit_margin=1e9),
        )
        assert strict.metrics.aip_sets_created == 0

    def test_cb_state_complete_guard(self, catalog):
        """Cost-based AIP must not summarise short-circuited state; with
        the guard active, results stay correct under aggressive timing."""
        def resolver(node):
            if node.table_name == "part":
                return ArrivalModel.streaming(per_tuple=1e-7)
            return None

        baseline = run(min_cost_plan(catalog), catalog, resolver=resolver)
        cb = run(min_cost_plan(catalog), catalog, CostBasedStrategy(), resolver)
        assert rows_equal(baseline.rows, cb.rows)
