"""Shared fixtures and plan builders for AIP tests."""

import pytest

from repro.data.tpch import cached_tpch
from repro.expr.aggregates import MIN, SUM, AggregateSpec
from repro.expr.expressions import col, lit
from repro.plan.builder import scan


@pytest.fixture(scope="session")
def catalog():
    return cached_tpch(scale_factor=0.002)


def subquery_plan(catalog):
    """A Figure-1-shaped plan: selective parent block joined with two
    aggregate subqueries correlated on PARTKEY."""
    parent = (
        scan(catalog, "part")
        .filter(col("p_type").like("%TIN"))
        .join(
            scan(catalog, "partsupp", prefix="ps1_"),
            on=[("p_partkey", "ps1_ps_partkey")],
            residual=(lit(2) * col("ps1_ps_supplycost")).lt(col("p_retailprice")),
        )
    )
    avail = (
        scan(catalog, "partsupp", prefix="ps2_")
        .group_by(
            ["ps2_ps_partkey"],
            [AggregateSpec(SUM, col("ps2_ps_availqty"), "avail")],
        )
    )
    sold = (
        scan(catalog, "lineitem")
        .filter(col("l_receiptdate").gt("1995-01-01"))
        .group_by(
            ["l_partkey"],
            [AggregateSpec(SUM, col("l_quantity"), "numsold")],
        )
    )
    right = avail.join(sold, on=[("ps2_ps_partkey", "l_partkey")])
    return (
        parent
        .join(right, on=[("p_partkey", "ps2_ps_partkey")])
        .project(["p_partkey"])
        .distinct()
        .build()
    )


def min_cost_plan(catalog):
    """A Q1/Q3-shaped plan: parent partsupp row must match the per-part
    MIN supply cost computed in a subquery."""
    sub = (
        scan(catalog, "partsupp", prefix="m_")
        .group_by(
            ["m_ps_partkey"],
            [AggregateSpec(MIN, col("m_ps_supplycost"), "min_cost")],
        )
    )
    return (
        scan(catalog, "part")
        .filter(col("p_size").eq(1))
        .join(scan(catalog, "partsupp"), on=[("p_partkey", "ps_partkey")])
        .join(
            sub,
            on=[("ps_partkey", "m_ps_partkey")],
            residual=col("ps_supplycost").eq(col("min_cost")),
        )
        .build()
    )


def join_only_plan(catalog):
    """A single-block join query (the Section VI-C experiments)."""
    supp = scan(catalog, "supplier").join(
        scan(catalog, "nation"), on=[("s_nationkey", "n_nationkey")]
    ).filter(col("n_name").eq("FRANCE"))
    return (
        scan(catalog, "part")
        .filter(col("p_size").le(10))
        .join(scan(catalog, "partsupp"), on=[("p_partkey", "ps_partkey")])
        .join(supp, on=[("ps_suppkey", "s_suppkey")])
        .build()
    )
