"""Tests for logical -> physical translation."""

import pytest

from repro.common.errors import PlanError
from repro.data.tpch import cached_tpch
from repro.exec.context import ExecutionContext
from repro.exec.operators.groupby import PGroupBy
from repro.exec.operators.scan import PScan
from repro.exec.translate import translate
from repro.expr.aggregates import SUM, AggregateSpec
from repro.expr.expressions import col
from repro.plan.builder import scan


@pytest.fixture(scope="module")
def catalog():
    return cached_tpch(scale_factor=0.001)


class TestTranslate:
    def test_node_ids_preserved(self, catalog):
        plan = (
            scan(catalog, "part")
            .join(scan(catalog, "partsupp"), on=[("p_partkey", "ps_partkey")])
            .build()
        )
        physical = translate(plan, ExecutionContext(catalog))
        for node in plan.walk():
            op = physical.operator_for(node.node_id)
            assert op.op_id == node.node_id
            assert op.logical is node

    def test_operator_kinds(self, catalog):
        plan = (
            scan(catalog, "partsupp")
            .group_by(
                ["ps_partkey"],
                [AggregateSpec(SUM, col("ps_availqty"), "avail")],
            )
            .build()
        )
        physical = translate(plan, ExecutionContext(catalog))
        kinds = {type(op).__name__ for op in physical.sink.walk()}
        assert {"POutput", "PGroupBy", "PScan"} <= kinds

    def test_shared_node_translated_once(self, catalog):
        from repro.plan.logical import Join, Project
        from repro.expr.expressions import Col

        shared = scan(catalog, "part").build()
        left = Project(shared, [("l", Col("p_partkey"))])
        right = Project(shared, [("r", Col("p_partkey"))])
        dag = Join(left, right, ["l"], ["r"])
        physical = translate(dag, ExecutionContext(catalog))
        scans = [op for op in physical.sink.walk() if isinstance(op, PScan)]
        assert len(scans) == 1
        assert len(scans[0].parents) == 2

    def test_unknown_operator_rejected(self, catalog):
        class Strange:
            node_id = -1
            children = ()

        with pytest.raises((PlanError, AttributeError)):
            translate(Strange(), ExecutionContext(catalog))

    def test_remote_site_gets_remote_arrival(self, catalog):
        plan = scan(catalog, "partsupp", site="s1").build()
        physical = translate(plan, ExecutionContext(catalog))
        scan_op = physical.scans[0]
        assert scan_op.arrival.bandwidth is not None

    def test_local_scan_streams(self, catalog):
        plan = scan(catalog, "partsupp").build()
        physical = translate(plan, ExecutionContext(catalog))
        assert physical.scans[0].arrival.bandwidth is None

    def test_operator_for_unknown_raises(self, catalog):
        plan = scan(catalog, "part").build()
        physical = translate(plan, ExecutionContext(catalog))
        with pytest.raises(PlanError):
            physical.operator_for(10**9)


class TestContext:
    def test_trace_log(self, catalog):
        ctx = ExecutionContext(catalog, trace=True)
        ctx.log("hello")
        assert any("hello" in line for line in ctx.trace_log)

    def test_trace_disabled_by_default(self, catalog):
        ctx = ExecutionContext(catalog)
        ctx.log("quiet")
        assert ctx.trace_log == []

    def test_charge_advances_clock(self, catalog):
        ctx = ExecutionContext(catalog)
        ctx.charge(1.5)
        assert ctx.metrics.clock == 1.5
        assert ctx.metrics.cpu_time == 1.5

    def test_default_strategy_describe(self, catalog):
        assert ExecutionContext(catalog).strategy.describe() == "baseline"
